"""Setuptools shim so the package can be installed in environments without wheel.

All metadata lives in pyproject.toml; this file only exists to support
``python setup.py develop`` / legacy editable installs in offline
environments where PEP 660 editable builds are unavailable.
"""
from setuptools import setup

setup()
