"""Benchmark E6 — Figure 6: WordNet Nouns, highest θ for k = 2 under Cov and Sim."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment
from repro.functions import coverage, similarity
from repro.datasets import wordnet_nouns_table


@pytest.mark.paper_artifact("figure 6")
def test_bench_wordnet_k2(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure6",
            n_subjects=15_000,
            sim_max_signatures=12,
            step=0.01,
            solver_time_limit=60.0,
            render_figures=True,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    whole = wordnet_nouns_table(n_subjects=15_000)
    cov_rows = [row for row in result.rows if row["rule"] == "Cov"]
    sim_rows = [row for row in result.rows if row["rule"] == "Sim"]

    # Figure 6a: k = 2 under Cov improves over the whole dataset (0.44) but
    # only modestly (paper reaches 0.55/0.56) — WordNet Nouns is dominated by
    # a few large signatures that k = 2 cannot take apart.
    assert all(row["Cov"] >= coverage(whole) - 1e-9 for row in cov_rows)
    assert all(row["Cov"] < 0.75 for row in cov_rows)

    # Figure 6b: the dataset is already highly structured under Sim (0.93);
    # both sorts stay above that level and the small sort is the one missing
    # gloss in the paper.
    assert all(row["Sim"] >= similarity(whole) - 0.02 for row in sim_rows)
    assert min(row["subjects"] for row in sim_rows) < max(row["subjects"] for row in sim_rows)
