"""Benchmark — closed-loop load against the async service tier.

Three phases, all against real HTTP sockets:

* **Determinism** — one mixed batch (evaluate / refine / mutate churn)
  through a 1-worker server and through an elastic 1→3-worker server;
  the result payloads must be bit-identical (the ``cached`` flag aside,
  which is worker-placement-dependent by design).
* **Load** — wrk-style closed-loop clients (threads, each firing its
  next request as soon as the previous response lands) drive mixed
  evaluate/refine/mutate traffic at the async front-end backed by the
  elastic pool; throughput and latency percentiles are recorded into
  ``BENCH_service_load.json`` via the ``bench_artifact`` fixture (and
  folded into the committed trajectory by ``scripts/collect_bench.py``).
* **Saturation** — a tiny admission queue over a deliberately slow
  executor: overflow must be refused with 429 + ``Retry-After`` while
  every admitted request still completes — saturation never stalls the
  client and never drops accepted work.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
import urllib.error
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service import InlineExecutor, make_async_server
from repro.service.executor import BatchExecutor, create_executor

NT = ('<http://l/a> <http://l/p> "1" .\n'
      '<http://l/a> <http://l/q> "1" .\n'
      '<http://l/b> <http://l/p> "1" .\n'
      '<http://l/c> <http://l/q> "1" .\n')
CHURN_DATASET = {"ntriples": NT, "name": "load-churn"}
EVAL_DATASET = {"builtin": "dbpedia-persons", "params": {"n_subjects": 200, "seed": 3}}


def _post(url, path, body, headers=None, timeout=60):
    request = urllib.request.Request(
        url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _churn_batch():
    """Mixed traffic with mutations: the determinism acceptance batch."""
    def ev(rule, dataset=CHURN_DATASET):
        return {"op": "evaluate", "dataset": dataset, "request": {"rule": rule}}

    def mut(i):
        return {"op": "mutate", "dataset": CHURN_DATASET,
                "add": [[f"http://l/s{i}", "http://l/p", '"1"']], "remove": []}

    return [
        ev("Cov"), ev("Sim"), mut(1), ev("Cov"),
        ev("Cov", EVAL_DATASET), mut(2), ev("Sim"), ev("Cov"),
        {"op": "refine", "dataset": CHURN_DATASET,
         "request": {"rule": "Cov", "k": 2, "step": "1/4"}},
        mut(3), ev("Cov"), ev("Sim"),
    ]


def _strip_cached(envelope):
    return {k: v for k, v in envelope.items() if k != "cached"}


@pytest.mark.paper_artifact("service load story (not in the paper)")
def test_bench_elastic_payloads_match_single_worker(benchmark):
    """1 worker vs N elastic workers under churn: bit-identical payloads."""
    batch = _churn_batch()
    single = make_async_server(
        executor=create_executor(workers=1, max_workers=1)
    ).start()
    try:
        _, single_payload, _ = _post(single.url, "/v1/batch", {"requests": batch})
    finally:
        single.close()

    def elastic_run():
        elastic = make_async_server(
            executor=create_executor(workers=1, max_workers=3)
        ).start()
        try:
            _, payload, _ = _post(elastic.url, "/v1/batch", {"requests": batch})
            return payload
        finally:
            elastic.close()

    elastic_payload = benchmark.pedantic(elastic_run, rounds=1, iterations=1)
    assert single_payload["ok"] and elastic_payload["ok"]
    singles = [_strip_cached(e) for e in single_payload["results"]]
    elastics = [_strip_cached(e) for e in elastic_payload["results"]]
    assert json.dumps(singles, sort_keys=True) == json.dumps(elastics, sort_keys=True)
    assert sum(1 for e in singles if e["ok"]) == len(batch)
    benchmark.extra_info["batch_size"] = len(batch)


@pytest.mark.paper_artifact("service load story (not in the paper)")
def test_bench_closed_loop_mixed_traffic(benchmark, bench_artifact, capsys):
    """Closed-loop clients over the elastic async tier; record percentiles."""
    clients = 4
    requests_per_client = 10
    server = make_async_server(
        executor=create_executor(workers=1, max_workers=3),
        pending_limit=64, concurrency=4,
    ).start()
    latencies_by_kind = {"evaluate": [], "refine": [], "mutate": []}
    lock = threading.Lock()
    failures = []

    def client_loop(client_id):
        for i in range(requests_per_client):
            slot = (client_id + i) % 8
            if slot < 5:
                kind, path, body = "evaluate", "/v1/evaluate", {
                    "dataset": EVAL_DATASET,
                    "request": {"rule": "Cov" if slot % 2 else "Sim"},
                }
            elif slot < 7:
                kind, path, body = "refine", "/v1/refine", {
                    "dataset": CHURN_DATASET,
                    "request": {"rule": "Cov", "k": 2, "step": "1/4"},
                }
            else:
                kind, path, body = "mutate", "/v1/mutate", {
                    "dataset": CHURN_DATASET,
                    "add": [[f"http://l/c{client_id}x{i}", "http://l/p", '"1"']],
                }
            started = time.perf_counter()
            status, payload, _ = _post(server.url, path, body)
            elapsed = time.perf_counter() - started
            with lock:
                if status != 200 or not payload.get("ok"):
                    failures.append((kind, status, payload.get("error")))
                else:
                    latencies_by_kind[kind].append(elapsed)

    def run_load():
        with ThreadPoolExecutor(max_workers=clients) as pool:
            list(pool.map(client_loop, range(clients)))

    started = time.perf_counter()
    benchmark.pedantic(run_load, rounds=1, iterations=1)
    wall = time.perf_counter() - started
    try:
        stats = json.loads(
            urllib.request.urlopen(server.url + "/v1/stats", timeout=10).read()
        )
        metrics = json.loads(
            urllib.request.urlopen(server.url + "/v1/metrics", timeout=10).read()
        )
    finally:
        server.close()

    assert not failures, failures
    total = sum(len(v) for v in latencies_by_kind.values())
    assert total == clients * requests_per_client

    def percentiles(values):
        ordered = sorted(values)
        if not ordered:
            return {}
        pick = lambda q: ordered[min(len(ordered) - 1, int(q * len(ordered)))]
        return {
            "p50_ms": round(pick(0.50) * 1000, 3),
            "p90_ms": round(pick(0.90) * 1000, 3),
            "p99_ms": round(pick(0.99) * 1000, 3),
            "mean_ms": round(statistics.fmean(ordered) * 1000, 3),
            "count": len(ordered),
        }

    payload = {
        "config": {
            "clients": clients,
            "requests_per_client": requests_per_client,
            "min_workers": 1,
            "max_workers": 3,
            "concurrency": 4,
            "pending_limit": 64,
        },
        "throughput_rps": round(total / wall, 2) if wall > 0 else None,
        "wall_seconds": round(wall, 3),
        "latency": {kind: percentiles(v) for kind, v in latencies_by_kind.items()},
        "admission": stats["admission"],
        "executor": metrics.get("executor", {}).get("counters", {}),
    }
    path = bench_artifact("service_load", payload)
    benchmark.extra_info["throughput_rps"] = payload["throughput_rps"]
    with capsys.disabled():
        print(f"\nservice load: {total} requests in {wall:.2f}s "
              f"({payload['throughput_rps']} req/s) -> {path.name}")


class _SlowExecutor(BatchExecutor):
    """Holds every request for a beat, so the admission queue can fill."""

    def execute(self, requests):
        time.sleep(0.4)
        return [{"ok": True, "result": {"slow": True}} for _ in requests]

    def execute_stream(self, requests):
        return iter(self.execute(list(requests)))

    def stats(self):
        return {"mode": "slow"}


@pytest.mark.paper_artifact("service load story (not in the paper)")
def test_bench_saturation_returns_429_without_dropping_accepted_work(benchmark):
    server = make_async_server(
        executor=_SlowExecutor(), pending_limit=2, concurrency=1, retry_after_s=2
    ).start()
    try:
        body = {"dataset": EVAL_DATASET, "request": {"rule": "Cov"}}

        def flood():
            with ThreadPoolExecutor(max_workers=8) as pool:
                return [
                    f.result()
                    for f in [
                        pool.submit(_post, server.url, "/v1/evaluate", body)
                        for _ in range(8)
                    ]
                ]

        results = benchmark.pedantic(flood, rounds=1, iterations=1)
        by_status = {}
        for status, payload, headers in results:
            by_status.setdefault(status, []).append((payload, headers))
        # Saturation is visible: the queue (depth 2) cannot admit 8
        # near-simultaneous requests, so some are refused immediately...
        assert 429 in by_status, sorted(by_status)
        for payload, headers in by_status[429]:
            assert payload["error"]["type"] == "ServiceOverloaded"
            assert headers["Retry-After"] == "2"
        # ... and every admitted request completes: accepted work is never
        # dropped, and nothing stalls (the flood returned within timeouts).
        assert 200 in by_status
        for payload, _ in by_status[200]:
            assert payload["ok"] is True
        stats = json.loads(
            urllib.request.urlopen(server.url + "/v1/stats", timeout=10).read()
        )["admission"]
        assert stats["accepted"] == len(by_status[200])
        assert stats["rejected"] == len(by_status[429])
        benchmark.extra_info["accepted"] = stats["accepted"]
        benchmark.extra_info["rejected"] = stats["rejected"]
    finally:
        server.close()
