"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
its rows (use ``pytest benchmarks/ --benchmark-only -s`` to see them).  The
parameters are scaled down so the full suite completes in minutes; see
EXPERIMENTS.md for a discussion of which quantities are expected to match
the paper (shapes, orderings, crossovers) and which are not (absolute
CPLEX runtimes, full-dataset subject counts).
"""

from __future__ import annotations

import json
import pathlib

import pytest

#: Where ``bench_artifact`` drops its ``BENCH_<name>.json`` files.  CI
#: uploads the whole directory so benchmark numbers survive the run.
ARTIFACT_DIR = pathlib.Path(__file__).resolve().parent / "artifacts"


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): the paper table/figure a benchmark regenerates"
    )


@pytest.fixture
def show_result(capsys):
    """Print an ExperimentResult outside of output capture, for the bench log."""

    def _show(result) -> None:
        with capsys.disabled():
            print()
            print(result.to_text())

    return _show


@pytest.fixture
def bench_artifact():
    """Persist a benchmark's measurements as ``benchmarks/artifacts/BENCH_<name>.json``.

    A benchmark calls ``bench_artifact(name, payload)`` with a JSON-serialisable
    payload (timings, speedups, configuration); the file survives the pytest
    run so CI can upload it and successive runs can be diffed.  Returns the
    written path.
    """

    def _write(name: str, payload: dict) -> pathlib.Path:
        ARTIFACT_DIR.mkdir(parents=True, exist_ok=True)
        path = ARTIFACT_DIR / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path

    return _write
