"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and prints
its rows (use ``pytest benchmarks/ --benchmark-only -s`` to see them).  The
parameters are scaled down so the full suite completes in minutes; see
EXPERIMENTS.md for a discussion of which quantities are expected to match
the paper (shapes, orderings, crossovers) and which are not (absolute
CPLEX runtimes, full-dataset subject counts).
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "paper_artifact(name): the paper table/figure a benchmark regenerates"
    )


@pytest.fixture
def show_result(capsys):
    """Print an ExperimentResult outside of output capture, for the bench log."""

    def _show(result) -> None:
        with capsys.disabled():
            print()
            print(result.to_text())

    return _show
