"""Benchmark E2 — Figure 4: DBpedia Persons, highest θ for k = 2 under Cov / Sim / SymDep."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("figure 4")
def test_bench_dbpedia_k2(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure4",
            n_subjects=20_000,
            sim_max_signatures=12,
            step=0.01,
            solver_time_limit=60.0,
            render_figures=True,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    cov_rows = [row for row in result.rows if row["rule"] == "Cov"]
    sim_rows = [row for row in result.rows if row["rule"] == "Sim"]
    symdep_rows = [row for row in result.rows if row["rule"].startswith("SymDep")]

    # Figure 4a: the Cov refinement contains an "alive people" sort — the
    # larger sort drops both death columns — and both sorts beat the whole
    # dataset's Cov = 0.54 (paper: 0.73 / 0.71).
    alive = [r for r in cov_rows if not r["uses deathDate"] and not r["uses deathPlace"]]
    assert alive, "Cov k=2 should rediscover the sort of people that are alive"
    assert alive[0]["subjects"] == max(r["subjects"] for r in cov_rows)
    assert all(row["Cov"] > 0.6 for row in cov_rows)

    # Figure 4b: the Sim refinement is more balanced than the Cov one and
    # keeps high Sim values on both sides (paper: 0.82 / 0.85).
    assert len(sim_rows) == 2
    assert all(row["Sim"] > 0.75 for row in sim_rows)
    sim_imbalance = max(r["subjects"] for r in sim_rows) / min(r["subjects"] for r in sim_rows)
    cov_imbalance = max(r["subjects"] for r in cov_rows) / min(r["subjects"] for r in cov_rows)
    assert sim_imbalance < cov_imbalance * 1.5

    # Figure 4c: one SymDep sort drops the deathPlace column entirely and is
    # trivially 1.0; the other keeps a high value (paper: 1.0 / 0.82).
    assert len(symdep_rows) == 2
    values = sorted(row["SymDep"] for row in symdep_rows)
    assert values[1] == pytest.approx(1.0)
    assert values[0] > 0.7
    assert any(not row["uses deathPlace"] for row in symdep_rows)
