"""Benchmark: incremental signature maintenance vs full rebuild.

The ISSUE-4 acceptance scenario: a 1% delta (500 of 50,000 subjects each
lose one triple and gain one with a brand-new property) applied to the
YAGO-scale synthetic sort used by ``test_bench_signature_table_build``.
Both paths start from the same mutated graph; the *incremental* path
patches the prebuilt ``PropertyMatrix``/``SignatureTable`` with
``apply_delta``, the *rebuild* path runs ``from_graph``/``from_matrix``
from scratch.  The patched artifacts must be bit-identical to the
rebuild, and incremental must win on wall-clock.
"""

from __future__ import annotations

import time

from repro.datasets.synthetic import graph_from_signature_table, random_signature_table
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable
from repro.rdf.terms import Literal, URI

N_SUBJECTS = 50_000
DELTA_FRACTION = 0.01
ROUNDS = 3


def _best_of(rounds, fn):
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_mutation_1pct_delta_incremental_vs_rebuild(capsys):
    reference = random_signature_table(
        n_properties=40, n_signatures=64, n_subjects=N_SUBJECTS, seed=7
    )
    graph = graph_from_signature_table(reference, "http://yago-knowledge.org/resource/T")
    matrix = PropertyMatrix.from_graph(graph)
    table = SignatureTable.from_matrix(matrix)

    # The 1% delta: every touched subject loses its first triple and gains
    # one with a property outside the current universe.
    n_touched = int(N_SUBJECTS * DELTA_FRACTION)
    stride = max(1, len(matrix.subjects) // n_touched)
    touched = matrix.subjects[::stride][:n_touched]
    remove, add = [], []
    for i, subject in enumerate(touched):
        remove.append(next(iter(graph.triples_for_subject(subject))))
        add.append((subject, URI("http://yago-knowledge.org/resource/extra"), Literal(f"x{i}")))

    # Mutate the graph in place once; both measured paths start from the
    # mutated graph, so the O(delta) graph update cost cancels out.
    delta = graph.remove_triples(remove).merge(graph.add_triples(add))
    assert delta.removed == len(remove) and delta.added == len(add)

    t_rebuild, (rebuilt_matrix, rebuilt_table) = _best_of(
        ROUNDS,
        lambda: (
            (m := PropertyMatrix.from_graph(graph)),
            SignatureTable.from_matrix(m),
        ),
    )
    t_incremental, (patched_matrix, patched_table) = _best_of(
        ROUNDS,
        lambda: (
            (m := matrix.apply_delta(graph, delta)),
            table.apply_delta(m, delta),
        ),
    )

    # Bit-identity first — a fast wrong answer is worthless.
    assert patched_matrix == rebuilt_matrix
    assert patched_table == rebuilt_table
    for signature in rebuilt_table.signatures:
        assert patched_table.members_of(signature) == rebuilt_table.members_of(signature)

    speedup = t_rebuild / t_incremental
    with capsys.disabled():
        print()
        print(
            f"mutation benchmark ({n_touched}/{N_SUBJECTS} subjects touched): "
            f"full rebuild {t_rebuild * 1e3:.1f} ms, "
            f"incremental {t_incremental * 1e3:.1f} ms, "
            f"speedup {speedup:.1f}x"
        )
    # The acceptance bar: incremental update beats the full rebuild.
    assert t_incremental < t_rebuild, (
        f"incremental update ({t_incremental:.3f}s) did not beat the "
        f"full rebuild ({t_rebuild:.3f}s)"
    )
