"""Benchmark E8 — Figure 8: scalability of the ILP solution over a YAGO-like sort sample."""

from __future__ import annotations

import math

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("figure 8")
def test_bench_yago_scalability(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure8",
            n_sorts=25,
            max_signatures=36,
            max_properties=18,
            step=0.05,
            max_probes=6,
            solver_time_limit=20.0,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    by_quantity = {row["quantity"]: row for row in result.rows}
    signature_fit = by_quantity["runtime vs #signatures (power-law exponent)"]
    property_fit = by_quantity["runtime vs #properties (exponential rate)"]
    subject_fit = by_quantity["runtime vs #subjects (power-law exponent, expect ~0)"]

    # Paper shape: runtime grows with the number of signatures (positive
    # power-law exponent; paper fits 2.53) and with the number of properties
    # (positive exponential rate; paper fits 0.28), and is essentially flat
    # in the number of subjects.  Absolute exponents depend on the backend
    # and sample scale, so only signs / rough magnitudes are asserted.
    assert signature_fit["measured"] > 0.3
    assert property_fit["measured"] > 0.0
    assert not math.isnan(subject_fit["measured"])
    assert abs(subject_fit["measured"]) < signature_fit["measured"]
    # The histograms (right panels of Figure 8) cover the whole sample.
    assert len(result.figures) == 2
