"""Benchmark E8 — Figure 8: scalability of the ILP solution over a YAGO-like sort sample.

Alongside the figure-8 regeneration this file benchmarks the two hot paths
the interned/columnar refactor targets:

* **signature-table build** — graph → `SignatureTable` through the
  vectorised ID pipeline (`test_bench_signature_table_build`);
* **lowest-k search** — the downward k-sweep with the incremental encoder
  and witness certification (`test_bench_lowest_k_sweep`).
"""

from __future__ import annotations

import math

import pytest

from repro.core.search import lowest_k_refinement
from repro.datasets import yago_sort_sample
from repro.datasets.synthetic import graph_from_signature_table, random_signature_table
from repro.experiments import run_experiment
from repro.matrix.signatures import SignatureTable
from repro.rules import coverage


@pytest.mark.paper_artifact("figure 8")
def test_bench_yago_scalability(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure8",
            n_sorts=25,
            max_signatures=36,
            max_properties=18,
            step=0.05,
            max_probes=6,
            solver_time_limit=20.0,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    by_quantity = {row["quantity"]: row for row in result.rows}
    signature_fit = by_quantity["runtime vs #signatures (power-law exponent)"]
    property_fit = by_quantity["runtime vs #properties (exponential rate)"]
    subject_fit = by_quantity["runtime vs #subjects (power-law exponent, expect ~0)"]

    # Paper shape: runtime grows with the number of signatures (positive
    # power-law exponent; paper fits 2.53) and with the number of properties
    # (positive exponential rate; paper fits 0.28), and is essentially flat
    # in the number of subjects.  Absolute exponents depend on the backend
    # and sample scale, so only signs / rough magnitudes are asserted.
    assert signature_fit["measured"] > 0.3
    assert property_fit["measured"] > 0.0
    assert not math.isnan(subject_fit["measured"])
    assert abs(subject_fit["measured"]) < signature_fit["measured"]
    # The histograms (right panels of Figure 8) cover the whole sample.
    assert len(result.figures) == 2


def test_bench_signature_table_build(benchmark):
    """Graph → signature table over a YAGO-scale synthetic sort (50k subjects)."""
    reference = random_signature_table(
        n_properties=40, n_signatures=64, n_subjects=50_000, seed=7
    )
    graph = graph_from_signature_table(reference, "http://yago-knowledge.org/resource/T")

    table = benchmark(SignatureTable.from_graph, graph)
    assert table.n_subjects == reference.n_subjects
    assert table.n_signatures == reference.n_signatures
    assert table.counts() == reference.counts()


def test_bench_lowest_k_sweep(benchmark):
    """Downward lowest-k sweeps (θ = 0.5, σCov) across a YAGO-like sample."""
    tables = yago_sort_sample(n_sorts=25, seed=23, max_signatures=36, max_properties=18)
    rule = coverage()

    def sweep():
        return [
            lowest_k_refinement(
                table, rule, theta=0.5, direction="down", solver_time_limit=20.0
            )
            for table in tables[:12]
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Structural assertions only: exact k values depend on MILP tie-breaking
    # and may legitimately move across solver versions.
    from repro.functions import coverage_function

    cov = coverage_function()
    for table, result in zip(tables, results):
        assert 1 <= result.k <= table.n_signatures
        assert result.refinement.min_structuredness(cov) >= 0.5 - 1e-9
