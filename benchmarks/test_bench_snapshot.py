"""Benchmark: cold parse + build vs snapshot warm start.

The ISSUE-5 acceptance scenario on the 50k-subject YAGO-scale synthetic
sort: the *cold* path parses N-Triples from disk and rebuilds the
graph → ``PropertyMatrix`` → ``SignatureTable`` chain from scratch; the
*warm* path reopens the persisted snapshot (``Dataset.load``,
memory-mapped segments).  The loaded artifacts must be bit-identical to
the cold build, and warm must win on wall-clock.  A second measurement
times a service worker's boot-to-first-answer with an N-Triples spec vs
a snapshot spec — the per-worker cost the pool pays.
"""

from __future__ import annotations

import time

from repro.api import Dataset
from repro.datasets.synthetic import graph_from_signature_table, random_signature_table
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable
from repro.rdf.ntriples import dumps_ntriples, load_ntriples
from repro.service.executor import InlineExecutor

N_SUBJECTS = 50_000
LOAD_ROUNDS = 3


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def _best_of(rounds, fn):
    best, result = float("inf"), None
    for _ in range(rounds):
        elapsed, result = _timed(fn)
        best = min(best, elapsed)
    return best, result


def test_bench_snapshot_cold_build_vs_warm_load(tmp_path, capsys):
    reference = random_signature_table(
        n_properties=40, n_signatures=64, n_subjects=N_SUBJECTS, seed=7
    )
    graph = graph_from_signature_table(reference, "http://yago-knowledge.org/resource/T")
    nt_path = tmp_path / "yago50k.nt"
    nt_path.write_text(dumps_ntriples(graph, sort=False), encoding="utf-8")

    # Cold: parse the file and build the whole chain, as every process did
    # before snapshots existed.
    def cold():
        parsed = load_ntriples(nt_path, name="yago50k")
        matrix = PropertyMatrix.from_graph(parsed)
        return matrix, SignatureTable.from_matrix(matrix)

    cold_time, (cold_matrix, cold_table) = _timed(cold)

    # Persist once (timed for the record; the cost is paid once, not per process).
    dataset = Dataset.from_graph(graph, name="yago50k")
    dataset._matrix, dataset._table = cold_matrix, cold_table
    save_time, info = _timed(lambda: dataset.save(tmp_path / "snap"))

    # Warm: reopen the persisted chain.
    def warm():
        loaded = Dataset.load(tmp_path / "snap")
        return loaded, loaded.table

    warm_time, (loaded, loaded_table) = _best_of(LOAD_ROUNDS, warm)
    # verify=False is the just-wrote-it fast path: skip segment hashing.
    unverified_time, _ = _best_of(
        LOAD_ROUNDS, lambda: Dataset.load(tmp_path / "snap", verify=False).table
    )

    assert loaded_table.packed_support_matrix().tobytes() == cold_table.packed_support_matrix().tobytes()
    assert loaded_table.count_vector().tobytes() == cold_table.count_vector().tobytes()
    assert loaded_table.signatures == cold_table.signatures
    assert loaded.matrix.data.tobytes() == cold_matrix.data.tobytes()
    assert loaded.matrix.subjects == cold_matrix.subjects
    speedup = cold_time / warm_time
    assert speedup > 1.0, f"snapshot load must beat the cold build ({speedup:.2f}x)"

    with capsys.disabled():
        print()
        print(f"[snapshot] {N_SUBJECTS} subjects, {cold_table.n_signatures} signatures, "
              f"{len(graph)} triples; payload {info.total_bytes / 1e6:.1f} MB")
        print(f"  cold parse+build      : {cold_time:.3f}s")
        print(f"  snapshot save         : {save_time:.3f}s")
        print(f"  warm load (verified)  : {warm_time:.3f}s   ({cold_time / warm_time:.1f}x)")
        print(f"  warm load (no verify) : {unverified_time:.3f}s   ({cold_time / unverified_time:.1f}x)")


def test_bench_snapshot_worker_boot_time(tmp_path, capsys):
    """Boot-to-first-answer for a worker: N-Triples spec vs snapshot spec."""
    reference = random_signature_table(
        n_properties=40, n_signatures=64, n_subjects=N_SUBJECTS, seed=7
    )
    graph = graph_from_signature_table(reference, "http://yago-knowledge.org/resource/T")
    nt_path = tmp_path / "yago50k.nt"
    nt_path.write_text(dumps_ntriples(graph, sort=False), encoding="utf-8")
    Dataset.from_graph(graph, name="yago50k").save(tmp_path / "snap")

    request = {"op": "evaluate", "request": {"rule": "Cov"}}

    def boot(spec):
        # A fresh InlineExecutor is exactly what a new pool worker holds.
        executor = InlineExecutor()
        [envelope] = executor.execute([dict(request, dataset=spec)])
        assert envelope["ok"]
        return envelope

    cold_boot, cold_envelope = _timed(
        lambda: boot({"path": str(nt_path), "name": "yago50k"})
    )
    warm_boot, warm_envelope = _timed(lambda: boot({"snapshot": str(tmp_path / "snap")}))
    assert warm_envelope["result"] == cold_envelope["result"]
    assert warm_boot < cold_boot, "snapshot-backed worker boot must beat re-parsing"

    with capsys.disabled():
        print()
        print(f"[worker boot] first answer over {N_SUBJECTS} subjects")
        print(f"  ntriples spec (parse+build) : {cold_boot:.3f}s")
        print(f"  snapshot spec (reopen)      : {warm_boot:.3f}s   ({cold_boot / warm_boot:.1f}x)")
