"""Benchmark E4 — Table 1: σDep over the birth/death properties of DBpedia Persons."""

from __future__ import annotations

import pytest

from repro.experiments import run_dependency_table
from repro.experiments.dependency_tables import PAPER_TABLE1


@pytest.mark.paper_artifact("table 1")
def test_bench_dependency_table(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_dependency_table(n_subjects=20_000), rounds=1, iterations=1
    )
    show_result(result)
    measured = {
        (row["p1"], column): row[column]
        for row in result.rows
        for column in ("deathPlace", "birthPlace", "deathDate", "birthDate")
    }
    # Shape check: every measured entry is within 0.2 of the paper's value and
    # the qualitative headline holds (deathPlace row uniformly high).
    for key, paper_value in PAPER_TABLE1.items():
        assert measured[key] == pytest.approx(paper_value, abs=0.2)
    assert min(
        measured[("deathPlace", p)] for p in ("birthPlace", "deathDate", "birthDate")
    ) > max(
        measured[(p, "deathPlace")] for p in ("birthPlace", "deathDate", "birthDate")
    )
