"""Benchmark E9 — Section 7.4: recovering Drug Companies vs Sultans from a mixed dataset."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("section 7.4")
def test_bench_semantic_correctness(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "semantic_correctness",
            n_drug_companies=450,
            n_sultans=400,
            seed=41,
            step=0.02,
            solver_time_limit=60.0,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    by_rule = {row["rule"]: row for row in result.rows}
    plain = by_rule["Cov"]
    modified = by_rule["Cov ignoring syntax properties"]

    # Paper shape (plain Cov: 74.6% accuracy, 61.4% precision, 100% recall;
    # modified Cov: 82.1% / 69.2% / 100%): recovery is good but imperfect
    # with the plain rule, recall stays (near) perfect, and ignoring the
    # RDF-syntax properties does not hurt — in the paper it helps.
    assert plain["recall"] >= 0.95
    assert plain["accuracy"] >= 0.6
    assert modified["recall"] >= 0.95
    assert modified["accuracy"] >= plain["accuracy"] - 1e-9
    assert modified["precision"] >= plain["precision"] - 1e-9
