"""Benchmark E10 — Theorem 5.1 / Appendix A: the 3-coloring reduction."""

from __future__ import annotations

import pytest

from repro.experiments import run_reduction_check


@pytest.mark.paper_artifact("theorem 5.1 / appendix A")
def test_bench_reduction_check(benchmark, show_result):
    result = benchmark.pedantic(run_reduction_check, rounds=1, iterations=1)
    show_result(result)
    colorable_rows = [row for row in result.rows if row["3-colorable"]]
    assert colorable_rows, "the graph family must contain 3-colorable members"
    assert all(row["refinement reaches threshold 1"] for row in colorable_rows)
    assert any(not row["3-colorable"] for row in result.rows)
