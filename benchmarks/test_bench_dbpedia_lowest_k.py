"""Benchmark E3 — Figure 5: DBpedia Persons, lowest k for threshold θ = 0.9."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("figure 5")
def test_bench_dbpedia_lowest_k(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure5",
            n_subjects=20_000,
            theta=0.9,
            cov_max_signatures=64,
            sim_max_signatures=12,
            solver_time_limit=60.0,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    cov_rows = [row for row in result.rows if row["rule"] == "Cov"]
    sim_rows = [row for row in result.rows if row["rule"] == "Sim"]
    cov_k = cov_rows[0]["k"]
    sim_k = sim_rows[0]["k"]

    # Paper shape: a handful of sorts is needed under Cov (k = 9 at full
    # scale), strictly more than under Sim (k = 4), and every sort meets the
    # threshold.  Absolute k depends on the synthetic signature tail, so the
    # checks are on the ordering and the threshold.
    assert cov_k > sim_k >= 1
    assert cov_k >= 4
    assert all(row["sigma"] >= 0.9 - 1e-9 for row in result.rows)
    # Under Cov, the sorts separate alive from dead people: at least one sort
    # uses no death property at all and at least one uses deathDate.
    assert any(not row["uses deathDate"] and not row["uses deathPlace"] for row in cov_rows)
    assert any(row["uses deathDate"] for row in cov_rows)
