"""Benchmark — speculative parallel lowest-k sweeps vs the serial baseline.

The speculative prober in :mod:`repro.core.search` launches the next few
(k, θ) ILP probes on worker threads while the calling thread consumes the
current one; with ``jobs=1`` the exact serial path runs instead.  This
benchmark sweeps the YAGO-like sort sample (the same workload as
``test_bench_lowest_k_sweep``) once with ``jobs=1`` and once with
``jobs=8``, asserts the payloads are bit-identical, and records the
speedup in ``benchmarks/artifacts/BENCH_parallel.json``.

The ≥3× speedup gate only applies on machines with at least 8 CPUs —
speculation cannot beat serial execution without cores to run on — but the
bit-identity assertion holds everywhere, including single-core CI runners.
"""

from __future__ import annotations

import os
import time

from repro.core.search import lowest_k_refinement
from repro.datasets import yago_sort_sample
from repro.rules import coverage


def _sweep_payload(result) -> dict:
    """The determinism-relevant projection of one search result."""
    return {
        "k": result.k,
        "theta": result.theta,
        "n_probes": result.n_probes,
        "n_solver_probes": result.n_solver_probes,
        "steps": [
            (step.theta, step.k, step.feasible, step.status)
            for step in result.steps
        ],
    }


def _timed_sweep(tables, rule, jobs):
    start = time.perf_counter()
    results = [
        lowest_k_refinement(
            table, rule, theta=0.5, direction="down",
            solver_time_limit=20.0, jobs=jobs,
        )
        for table in tables
    ]
    elapsed = time.perf_counter() - start
    return [_sweep_payload(result) for result in results], elapsed


#: Below this many CPUs the serial-vs-parallel wall-clock comparison is
#: noise (thread scheduling overhead dominates and the measured "speedup"
#: of a starved pool routinely lands under 1×), so the benchmark only
#: *times* both paths on machines with at least this many cores.  The
#: bit-identity assertion is the part that must hold everywhere.
MIN_COMPARISON_CPUS = 4


def test_bench_parallel_speedup(bench_artifact):
    """jobs=8 sweep must match jobs=1 bit-for-bit; ≥3× faster on 8+ cores."""
    tables = yago_sort_sample(n_sorts=25, seed=23, max_signatures=36, max_properties=18)[:12]
    rule = coverage()
    cpus = os.cpu_count() or 1
    gated = cpus < MIN_COMPARISON_CPUS

    serial_payloads, serial_time = _timed_sweep(tables, rule, jobs=1)
    parallel_payloads, parallel_time = _timed_sweep(tables, rule, jobs=8)

    # Determinism is unconditional: speculation may only change wall-clock,
    # never the probe sequence, the chosen k or the recorded steps.
    assert parallel_payloads == serial_payloads

    payload = {
        "workload": "yago_sort_sample lowest-k sweep (theta=0.5, down, 12 sorts)",
        "cpus": cpus,
        "jobs": 8,
        "gated": gated,
        "payloads_identical": True,
        "n_tables": len(tables),
        "total_solver_probes": sum(p["n_solver_probes"] for p in serial_payloads),
    }
    if gated:
        # Too few cores for the timing comparison to mean anything: the
        # artifact records that the measurement was skipped rather than a
        # misleading sub-1× "speedup" from a starved thread pool.
        bench_artifact("parallel", payload)
        print(
            f"\nparallel sweep: payload identity verified; timing comparison "
            f"skipped on {cpus} CPUs (needs >={MIN_COMPARISON_CPUS})"
        )
        return

    speedup = serial_time / parallel_time if parallel_time > 0 else float("inf")
    payload.update(
        serial_seconds=serial_time,
        parallel_seconds=parallel_time,
        speedup=speedup,
    )
    bench_artifact("parallel", payload)
    print(
        f"\nparallel sweep: serial {serial_time:.2f}s, jobs=8 {parallel_time:.2f}s, "
        f"speedup {speedup:.2f}x on {cpus} CPUs"
    )

    if cpus >= 8:
        assert speedup >= 3.0, (
            f"expected >=3x speedup on {cpus} CPUs, measured {speedup:.2f}x"
        )
