"""Benchmark — the service layer's batch/parallel scale story.

A mixed 32-request batch (evaluate / refine / lowest-k / sweep, two rules,
two solvers) over four datasets is executed twice: once through the
:class:`InlineExecutor` (the determinism baseline) and once through a
4-worker :class:`PooledExecutor`.  The payloads must be bit-identical;
the wall-clock ratio is recorded as ``extra_info["speedup"]`` (worker
startup and per-worker dataset builds are *included* in the pooled time —
this is the honest cold-start number a service operator would see).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.service import InlineExecutor, PooledExecutor, plan_batch, parse_request


def service_batch(n=32):
    """The acceptance batch: 32 mixed requests over 4 builtin datasets."""
    datasets = [
        {"builtin": "dbpedia-persons", "params": {"n_subjects": 1500}},
        {"builtin": "wordnet-nouns", "params": {"n_subjects": 1500}},
        {"builtin": "dbpedia-persons", "params": {"n_subjects": 1000, "seed": 9}},
        {"builtin": "mixed-drug-sultans", "params": {"max_signatures_per_sort": 8}},
    ]
    templates = [
        lambda ds: {"op": "evaluate", "dataset": ds, "request": {"rule": "Cov", "exact": True}},
        lambda ds: {"op": "refine", "dataset": ds, "request": {"rule": "Cov", "k": 2, "step": "1/10"}},
        lambda ds: {"op": "sweep", "dataset": ds, "request": {"rule": "Cov", "k_values": [2, 3], "step": "1/8"}},
        lambda ds: {"op": "lowest_k", "dataset": ds, "request": {"rule": "Cov", "theta": "2/3"}},
        lambda ds: {"op": "evaluate", "dataset": ds, "request": {"rule": "Sim"}},
        lambda ds: {
            "op": "refine",
            "dataset": ds,
            "solver": "branch-and-bound",
            "request": {"rule": "Cov", "k": 2, "step": "1/4"},
        },
    ]
    return [
        dict(templates[i % len(templates)](datasets[i % len(datasets)]), id=f"bench-{i}")
        for i in range(n)
    ]


@pytest.mark.paper_artifact("service scale story (not in the paper)")
def test_bench_batch_pool_vs_inline(benchmark, capsys):
    batch = service_batch(32)
    groups = plan_batch([parse_request(r) for r in batch])
    assert len({r["dataset"]["builtin"] + str(r["dataset"].get("params"))
                for r in batch}) == 4

    start = time.perf_counter()
    inline_envelopes = InlineExecutor().execute(batch)
    inline_time = time.perf_counter() - start
    assert all(envelope["ok"] for envelope in inline_envelopes)

    def pooled_run():
        with PooledExecutor(workers=4) as pool:
            return pool.execute(batch)

    pooled_start = time.perf_counter()
    pooled_envelopes = benchmark.pedantic(pooled_run, rounds=1, iterations=1)
    pooled_time = time.perf_counter() - pooled_start

    # The acceptance property: bit-identical payloads, inline vs pool.
    assert json.dumps(pooled_envelopes, sort_keys=True) == json.dumps(
        inline_envelopes, sort_keys=True
    )

    speedup = inline_time / pooled_time if pooled_time > 0 else float("inf")
    benchmark.extra_info["inline_seconds"] = round(inline_time, 3)
    benchmark.extra_info["pooled_seconds"] = round(pooled_time, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["groups"] = len(groups)
    with capsys.disabled():
        print(
            f"\n32-request batch over 4 datasets ({len(groups)} groups): "
            f"inline {inline_time:.2f}s, 4-worker pool {pooled_time:.2f}s "
            f"(speedup {speedup:.2f}x, {os.cpu_count()} CPUs)"
        )
    # On a machine with >= 4 usable cores the pool must win outright even
    # paying its startup cost; elsewhere just require it not to collapse.
    if (os.cpu_count() or 1) >= 4:
        assert speedup > 1.0, f"pool slower than inline: {speedup:.2f}x"
    else:
        assert speedup > 0.5
