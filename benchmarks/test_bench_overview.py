"""Benchmark E1 — Figures 2 & 3: dataset overviews and whole-sort structuredness."""

from __future__ import annotations

import pytest

from repro.experiments import run_overview


@pytest.mark.paper_artifact("figures 2-3")
def test_bench_overview(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_overview(persons_subjects=20_000, nouns_subjects=15_000),
        rounds=1,
        iterations=1,
    )
    show_result(result)
    by_dataset = {row["dataset"]: row for row in result.rows}
    persons = next(v for k, v in by_dataset.items() if "Persons" in k)
    nouns = next(v for k, v in by_dataset.items() if "Nouns" in k)
    # Paper values: Persons Cov=0.54 / Sim=0.77; Nouns Cov=0.44 / Sim=0.93.
    assert persons["Cov"] == pytest.approx(0.54, abs=0.03)
    assert persons["Sim"] == pytest.approx(0.77, abs=0.03)
    assert nouns["Cov"] == pytest.approx(0.44, abs=0.03)
    assert nouns["Sim"] == pytest.approx(0.93, abs=0.03)
    assert persons["signatures"] <= 64 and nouns["signatures"] <= 53
