"""Benchmark: out-of-core build vs in-memory build — peak RSS and wall time.

Each build runs in its own child process so ``resource.getrusage``'s
``ru_maxrss`` (a process-lifetime high-water mark) measures exactly one
build.  The parent generates one synthetic N-Triples file per size,
launches an in-memory child (parse → matrix → table → save) and an
out-of-core child (``build_out_of_core``) over the same file, and records
both children's peak RSS and wall time into ``BENCH_outofcore.json``.

Default sizes are CI-scale; set ``REPRO_BENCH_OOC_TRIPLES`` (a comma
list, e.g. ``200000,10000000``) to reproduce the acceptance run, where
the out-of-core build of a 10M-triple file must stay well below the
in-memory build's peak RSS.
"""

from __future__ import annotations

import json
import os
import pathlib
import subprocess
import sys

DEFAULT_SIZES = (20_000, 60_000)

_SRC_DIR = str(pathlib.Path(__file__).resolve().parents[1] / "src")

_CHILD = r"""
import json, resource, sys, time
mode, nt_path, out_dir = sys.argv[1], sys.argv[2], sys.argv[3]
start = time.perf_counter()
if mode == "memory":
    from repro.api import Dataset
    dataset = Dataset.from_ntriples(nt_path)
    dataset.table
    dataset.save(out_dir)
else:
    from repro.storage.outofcore import build_out_of_core
    build_out_of_core(nt_path, out_dir)
wall = time.perf_counter() - start
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
print(json.dumps({"wall_s": wall, "peak_rss_kb": peak_kb}))
"""


def _sizes():
    raw = os.environ.get("REPRO_BENCH_OOC_TRIPLES", "")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _generate(nt_path: pathlib.Path, n_triples: int) -> int:
    """Stream a synthetic file to disk without holding it in memory."""
    props_per_subject = 10
    n_subjects = max(1, n_triples // props_per_subject)
    written = 0
    with open(nt_path, "w", encoding="utf-8") as handle:
        for s in range(n_subjects):
            shape = s % 7  # a few distinct signatures
            for p in range(props_per_subject - (shape % 3)):
                handle.write(
                    f"<http://bench/s{s}> <http://bench/p{(p + shape) % 13}> "
                    f'"v{p}" .\n'
                )
                written += 1
    return written


def _run_child(mode: str, nt_path, out_dir) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(nt_path), str(out_dir)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def test_bench_outofcore_rss_and_walltime(tmp_path, bench_artifact, capsys):
    rows = []
    for n_triples in _sizes():
        nt_path = tmp_path / f"bench-{n_triples}.nt"
        written = _generate(nt_path, n_triples)
        memory = _run_child("memory", nt_path, tmp_path / f"mem-{n_triples}")
        outofcore = _run_child("outofcore", nt_path, tmp_path / f"ooc-{n_triples}")
        rows.append(
            {
                "triples": written,
                "file_bytes": nt_path.stat().st_size,
                "memory": memory,
                "outofcore": outofcore,
                "rss_ratio": round(
                    outofcore["peak_rss_kb"] / max(1, memory["peak_rss_kb"]), 3
                ),
            }
        )
        nt_path.unlink()

    # Correctness spine: the two children of the smallest size must have
    # written byte-identical snapshots (graph_triples may reorder rows).
    smallest = _sizes()[0]
    mem_manifest = json.loads((tmp_path / f"mem-{smallest}" / "manifest.json").read_text())
    ooc_manifest = json.loads((tmp_path / f"ooc-{smallest}" / "manifest.json").read_text())
    for name, meta in mem_manifest["segments"].items():
        if name != "graph_triples":
            assert meta["sha256"] == ooc_manifest["segments"][name]["sha256"]

    payload = {"sizes": rows, "interpreter": sys.version.split()[0]}
    bench_artifact("outofcore", payload)

    with capsys.disabled():
        print()
        for row in rows:
            print(
                f"  {row['triples']:>10} triples: "
                f"memory {row['memory']['peak_rss_kb']:>9} KB / {row['memory']['wall_s']:.2f}s   "
                f"out-of-core {row['outofcore']['peak_rss_kb']:>9} KB / "
                f"{row['outofcore']['wall_s']:.2f}s   rss-ratio {row['rss_ratio']}"
            )

    # The memory advantage is only meaningful at scale: at CI sizes both
    # processes are dominated by interpreter+numpy baseline, so gate the
    # hard assertion on the acceptance-scale run.
    big = [row for row in rows if row["triples"] >= 1_000_000]
    for row in big:
        assert row["outofcore"]["peak_rss_kb"] < row["memory"]["peak_rss_kb"]
