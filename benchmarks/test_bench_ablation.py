"""Ablation benchmarks for the design choices called out in DESIGN.md.

These do not correspond to a paper artefact directly; they quantify the
engineering decisions behind the reproduction:

* signature-level σ evaluation vs. expanding the matrix and evaluating at
  the subject level (the paper's key scalability lever);
* T-variable pruning (dropping rough assignments with zero total count) and
  grouping of equivalent rough assignments;
* the symmetry-breaking hash constraint;
* the HiGHS backend vs. the pure-Python branch-and-bound solver;
* the sequential θ search (paper's choice) vs. a coarser step.
"""

from __future__ import annotations

import pytest

from repro.core.encoder import SortRefinementEncoder
from repro.core.search import highest_theta_refinement
from repro.datasets import dbpedia_persons_table
from repro.functions import similarity as similarity_closed_form
from repro.ilp.registry import get_solver
from repro.matrix.signatures import SignatureTable
from repro.rdf.namespaces import EX
from repro.rules import coverage, similarity
from repro.rules.counting import sigma_by_signatures
from repro.rules.semantics import sigma_naive


def small_persons(max_signatures: int = 10, n_subjects: int = 2_000) -> SignatureTable:
    return dbpedia_persons_table(n_subjects=n_subjects, max_signatures=max_signatures)


@pytest.fixture(scope="module")
def tiny_table() -> SignatureTable:
    counts = {
        frozenset([EX.a]): 3,
        frozenset([EX.a, EX.b]): 2,
        frozenset([EX.b, EX.c]): 2,
        frozenset([EX.a, EX.b, EX.c]): 1,
    }
    return SignatureTable.from_counts([EX.a, EX.b, EX.c], counts)


class TestEvaluationAblation:
    def test_bench_sigma_signature_level(self, benchmark):
        """σSim via signature-level counting: cost depends on #signatures only."""
        table = small_persons(max_signatures=16, n_subjects=20_000)
        value = benchmark(lambda: sigma_by_signatures(similarity(), table))
        assert value == pytest.approx(similarity_closed_form(table), abs=1e-9)

    def test_bench_sigma_closed_form(self, benchmark):
        """σSim via the closed form: the production path."""
        table = small_persons(max_signatures=16, n_subjects=20_000)
        value = benchmark(lambda: similarity_closed_form(table))
        assert 0 <= value <= 1

    def test_bench_sigma_subject_level_naive(self, benchmark, tiny_table):
        """σSim via naive subject-level enumeration (only feasible on tiny data)."""
        matrix = tiny_table.to_matrix()
        value = benchmark.pedantic(
            lambda: sigma_naive(similarity(), matrix), rounds=1, iterations=1
        )
        assert value == pytest.approx(similarity_closed_form(tiny_table), abs=1e-9)


class TestEncodingAblation:
    @pytest.mark.parametrize("group", [True, False], ids=["grouped-cases", "ungrouped-cases"])
    def test_bench_case_grouping(self, benchmark, group):
        table = small_persons(max_signatures=10)
        encoder = SortRefinementEncoder(similarity(), group_equivalent_cases=group)
        instance = benchmark.pedantic(
            lambda: encoder.encode(table, k=2, theta=0.8), rounds=1, iterations=1
        )
        solution = get_solver("highs", time_limit=60).solve(instance.model)
        assert solution.status in ("optimal", "infeasible")

    @pytest.mark.parametrize(
        "symmetry", [True, False], ids=["symmetry-breaking", "no-symmetry-breaking"]
    )
    def test_bench_symmetry_breaking(self, benchmark, symmetry):
        table = small_persons(max_signatures=12)
        encoder = SortRefinementEncoder(coverage(), symmetry_breaking=symmetry)

        def solve() -> bool:
            instance = encoder.encode(table, k=3, theta=0.8)
            return get_solver("highs", time_limit=60).solve(instance.model).is_feasible

        feasible = benchmark.pedantic(solve, rounds=1, iterations=1)
        assert isinstance(feasible, bool)


class TestBackendAblation:
    @pytest.mark.parametrize(
        "solver_factory",
        [lambda: get_solver("highs"), lambda: get_solver("branch-and-bound", max_nodes=20_000)],
        ids=["highs", "branch-and-bound"],
    )
    def test_bench_backends_on_a_small_instance(self, benchmark, solver_factory, tiny_table):
        encoder = SortRefinementEncoder(coverage())
        instance = encoder.encode(tiny_table, k=2, theta=0.7)
        solution = benchmark.pedantic(
            lambda: solver_factory().solve(instance.model), rounds=1, iterations=1
        )
        assert solution.is_feasible


class TestSearchAblation:
    @pytest.mark.parametrize("step", [0.01, 0.05], ids=["step-0.01", "step-0.05"])
    def test_bench_theta_search_step(self, benchmark, step):
        """The paper's sequential search at two granularities."""
        table = small_persons(max_signatures=12)
        result = benchmark.pedantic(
            lambda: highest_theta_refinement(
                table, coverage(), k=2, step=step, solver_time_limit=30
            ),
            rounds=1,
            iterations=1,
        )
        assert result.refinement.k <= 2
        assert result.theta >= 0.5
