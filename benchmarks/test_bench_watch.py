"""Benchmark: incremental watch tick vs cold structuredness recompute.

The live-watch acceptance scenario: a :class:`~repro.api.WatchSession`
subscribed to a 50,000-subject YAGO-scale dataset observes 1% churn
rounds (500 subjects each lose their first triple and gain one with a
brand-new property).  After every round both paths produce the same
exact σ:

* the *incremental* path is one ``watch.poll()`` tick — the dataset
  patches its matrix/table with ``apply_delta``, the sharded signature
  table rebuilds only dirty shards, and the watch recounts those shards;
* the *cold* path rebuilds the matrix → table chain from the mutated
  graph and counts σ from scratch, exactly what a fresh process would do.

Bit-identity of the exact fraction is asserted first; then the wall-clock
gate: the incremental tick must be at least 10× faster than the cold
recompute (the measured ratio typically lands in the hundreds).  The
measurements are persisted as ``benchmarks/artifacts/BENCH_watch.json``
and merged into the committed trajectory by ``scripts/collect_bench.py``.
"""

from __future__ import annotations

import time

from repro.api import Dataset
from repro.api.watch import WatchSession
from repro.datasets.synthetic import graph_from_signature_table, random_signature_table
from repro.functions.structuredness import sigma_by_signatures_fraction
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable
from repro.rdf.terms import Literal, URI
from repro.rules import coverage

N_SUBJECTS = 50_000
CHURN_FRACTION = 0.01
ROUNDS = 3
SHARDS = 16


def _cold_sigma(graph, rule):
    """What a fresh process pays: full matrix → table build + σ count."""
    matrix = PropertyMatrix.from_graph(graph)
    table = SignatureTable.from_matrix(matrix)
    return sigma_by_signatures_fraction(rule, table)


def test_bench_watch_incremental_vs_cold(bench_artifact, capsys):
    reference = random_signature_table(
        n_properties=40, n_signatures=64, n_subjects=N_SUBJECTS, seed=7
    )
    graph = graph_from_signature_table(reference, "http://yago-knowledge.org/resource/T")
    dataset = Dataset.from_graph(graph, name="yago-watch-bench")
    dataset.table  # realise the chain before the clock starts

    watch = WatchSession(dataset, ("Cov",), shards=SHARDS)
    events = []
    watch.subscribe(events.append)
    watch.poll()  # baseline observation (all shards counted once)

    rule = coverage()
    n_touched = int(N_SUBJECTS * CHURN_FRACTION)
    rounds = []
    best_cold = best_incremental = float("inf")
    for round_no in range(1, ROUNDS + 1):
        # Hot-region churn: consecutive subjects share signatures (the
        # synthetic generator groups them), so the delta dirties a handful
        # of shards and the watch's shard reuse is visible in the stats.
        # The added property already exists in the universe — a brand-new
        # property would widen every signature and dirty all shards.
        subjects = dataset.matrix.subjects
        offset = (round_no - 1) * n_touched
        touched = subjects[offset:offset + n_touched]
        hot_property = URI(dataset.matrix.properties[-1])
        remove = [next(iter(graph.triples_for_subject(s))) for s in touched]
        add = [
            (s, hot_property, Literal(f"r{round_no}x{i}"))
            for i, s in enumerate(touched)
        ]
        dataset.mutate(add=add, remove=remove)

        events.clear()
        start = time.perf_counter()
        watch.poll()
        t_incremental = time.perf_counter() - start
        [event] = events

        start = time.perf_counter()
        cold = _cold_sigma(dataset.graph, rule)
        t_cold = time.perf_counter() - start

        # Bit-identity first — a fast wrong answer is worthless.
        assert event.sigma == f"{cold.numerator}/{cold.denominator}"
        assert event.generation == round_no

        best_cold = min(best_cold, t_cold)
        best_incremental = min(best_incremental, t_incremental)
        rounds.append({
            "generation": event.generation,
            "subjects_touched": len(touched),
            "triples_removed": len(remove),
            "sigma_exact": event.sigma,
            "shards_recounted": event.shards_recounted,
            "shards_reused": event.shards_reused,
            "t_cold_s": t_cold,
            "t_incremental_s": t_incremental,
            "speedup": t_cold / t_incremental if t_incremental > 0 else float("inf"),
        })

    speedup = best_cold / best_incremental if best_incremental > 0 else float("inf")
    bench_artifact("watch", {
        "n_subjects": N_SUBJECTS,
        "churn_fraction": CHURN_FRACTION,
        "shards": SHARDS,
        "rounds": rounds,
        "best_cold_s": best_cold,
        "best_incremental_s": best_incremental,
        "speedup": speedup,
        "watcher_stats": watch.stats,
    })
    with capsys.disabled():
        print()
        print(
            f"watch benchmark ({n_touched}/{N_SUBJECTS} subjects churned/round): "
            f"cold recompute {best_cold * 1e3:.1f} ms, "
            f"incremental tick {best_incremental * 1e3:.1f} ms, "
            f"speedup {speedup:.0f}x"
        )
    # The acceptance bar: an incremental watch tick is >=10x cheaper than
    # recomputing structuredness from scratch at 1% churn.
    assert speedup >= 10.0, (
        f"incremental watch tick ({best_incremental:.4f}s) is not >=10x faster "
        f"than the cold recompute ({best_cold:.4f}s)"
    )
    watch.close()
