"""Benchmark E5 — Table 2: the σSymDep ranking of DBpedia Persons property pairs."""

from __future__ import annotations

import pytest

from repro.experiments import run_symdep_ranking


@pytest.mark.paper_artifact("table 2")
def test_bench_symdep_ranking(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_symdep_ranking(n_subjects=20_000), rounds=1, iterations=1
    )
    show_result(result)
    top = [row for row in result.rows if row["end"] == "top"]
    bottom = [row for row in result.rows if row["end"] == "bottom"]
    # Paper shape: the name/givenName/surName pairs top the ranking, every
    # bottom pair involves deathPlace or description, and the two ends are
    # separated by a wide margin.
    top_properties = {row["p1"] for row in top} | {row["p2"] for row in top}
    assert {"name", "givenName", "surName"} <= top_properties
    assert all({"deathPlace", "description"} & {row["p1"], row["p2"]} for row in bottom)
    assert min(row["SymDep"] for row in top) > 0.5
    assert max(row["SymDep"] for row in bottom) < 0.2
