"""Benchmark E7 — Figure 7: WordNet Nouns, lowest k for a fixed threshold."""

from __future__ import annotations

import pytest

from repro.experiments import run_experiment


@pytest.mark.paper_artifact("figure 7")
def test_bench_wordnet_lowest_k(benchmark, show_result):
    result = benchmark.pedantic(
        lambda: run_experiment(
            "figure7",
            n_subjects=15_000,
            cov_theta=0.9,
            sim_theta=0.98,
            cov_max_signatures=24,
            sim_max_signatures=12,
            solver_time_limit=60.0,
        ),
        rounds=1,
        iterations=1,
    )
    show_result(result)

    by_rule = {row["rule"]: row for row in result.rows}
    cov_row, sim_row = by_rule["Cov"], by_rule["Sim"]

    # Paper shape: under Cov the lowest k is a large fraction of the number
    # of signatures (k = 31 of 53 in the paper — WordNet Nouns is already a
    # fine-grained sort), while under Sim a handful of sorts suffices
    # (k = 4) even at the higher 0.98 threshold.
    assert cov_row["lowest k"] / cov_row["signatures"] > 0.3
    assert sim_row["lowest k"] <= 8
    assert cov_row["lowest k"] > sim_row["lowest k"]
    assert cov_row["min sigma"] >= 0.9 - 1e-9
    assert sim_row["min sigma"] >= 0.98 - 1e-9
