"""Quickstart: structuredness functions and sort refinement on a tiny RDF graph.

This example walks through the full pipeline on a handful of triples,
driving everything through the session API (:mod:`repro.api`):

1. open a :class:`~repro.api.Dataset` over N-Triples text;
2. inspect its property-structure view M(D) and signature table;
3. evaluate the built-in structuredness functions (Cov, Sim, Dep, SymDep);
4. define a custom structuredness rule in the text syntax;
5. compute a sort refinement (highest θ for k = 2) with the ILP solver —
   twice, to show the session answering the repeat from its caches.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.api import Dataset
from repro.matrix import render_signature_table
from repro.rules import parse_rule

NTRIPLES = """
<http://ex/alice>  <http://ex/name>      "Alice" .
<http://ex/alice>  <http://ex/birthDate> "1990-01-01" .
<http://ex/alice>  <http://ex/email>     "alice@example.org" .
<http://ex/bob>    <http://ex/name>      "Bob" .
<http://ex/bob>    <http://ex/birthDate> "1985-05-23" .
<http://ex/carol>  <http://ex/name>      "Carol" .
<http://ex/dave>   <http://ex/name>      "Dave" .
<http://ex/dave>   <http://ex/birthDate> "1970-12-12" .
<http://ex/dave>   <http://ex/deathDate> "2020-03-03" .
<http://ex/erin>   <http://ex/name>      "Erin" .
<http://ex/erin>   <http://ex/birthDate> "1960-07-07" .
<http://ex/erin>   <http://ex/deathDate> "2015-09-09" .
"""


def main() -> None:
    # 1. One handle per dataset: the graph, matrix and signature table are
    #    built lazily and cached on the handle.
    dataset = Dataset.from_ntriples_text(NTRIPLES, name="quickstart people")
    session = dataset.session()
    print(f"loaded {len(dataset.graph)} triples about {len(dataset.graph.subjects())} subjects")

    # 2. The property-structure view and the signature table.
    print(render_signature_table(dataset.table, max_rows=8, title="\n[horizontal table view]"))

    # 3. Built-in structuredness functions through the session.
    birth, death = dataset.matrix.properties[0], dataset.matrix.properties[1]
    print("\n[structuredness of the whole dataset]")
    print(f"  Cov                      = {session.evaluate('Cov').value:.3f}")
    print(f"  Sim                      = {session.evaluate('Sim').value:.3f}")
    print(f"  Dep[birthDate, deathDate]    = {session.dependency(birth, death).value:.3f}")
    print(f"  SymDep[birthDate, deathDate] = {session.dependency(birth, death, symmetric=True).value:.3f}")

    # 4. A custom rule in the concrete syntax: "if a subject has any property
    #    at all, it should have a birthDate".
    custom = parse_rule(f"c1 = c1 and prop(c2) = <{birth}> and subj(c2) = subj(c1) -> val(c2) = 1")
    print(f"  custom 'has-birthDate'   = {session.evaluate(custom).value:.3f}")

    # 5. Sort refinement: split into at most 2 implicit sorts maximising the
    #    minimum Cov value (the paper's "highest theta for fixed k" setting).
    result = session.refine("Cov", k=2, step=0.05)
    print(f"\n[sort refinement under Cov, k = 2] highest theta = {result.theta:.3f}")
    print(result.refinement.summary(session.function_for("Cov")))
    for implicit_sort in result.refinement.sorts:
        members = sorted(
            subject.local_name
            for signature in implicit_sort.signatures
            for subject in dataset.table.members_of(signature)
        )
        print(f"  sort {implicit_sort.index + 1} members: {', '.join(members)}")

    # The same request again is answered from the session's result cache —
    # zero additional solver calls.
    again = session.refine("Cov", k=2, step=0.05)
    print(f"\n[repeat request] cached = {again.cached}, session stats = {session.stats}")


if __name__ == "__main__":
    main()
