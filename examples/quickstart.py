"""Quickstart: structuredness functions and sort refinement on a tiny RDF graph.

This example walks through the full pipeline on a handful of triples:

1. parse an RDF graph from N-Triples text;
2. build its property-structure view M(D) and signature table;
3. evaluate the built-in structuredness functions (Cov, Sim, Dep, SymDep);
4. define a custom structuredness rule in the text syntax;
5. compute a sort refinement (highest θ for k = 2) with the ILP solver.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import highest_theta_refinement
from repro.functions import (
    coverage,
    coverage_function,
    dependency,
    function_from_rule,
    similarity,
    symmetric_dependency,
)
from repro.matrix import PropertyMatrix, SignatureTable, render_signature_table
from repro.rdf import parse_ntriples
from repro.rules import coverage as coverage_rule
from repro.rules import parse_rule

NTRIPLES = """
<http://ex/alice>  <http://ex/name>      "Alice" .
<http://ex/alice>  <http://ex/birthDate> "1990-01-01" .
<http://ex/alice>  <http://ex/email>     "alice@example.org" .
<http://ex/bob>    <http://ex/name>      "Bob" .
<http://ex/bob>    <http://ex/birthDate> "1985-05-23" .
<http://ex/carol>  <http://ex/name>      "Carol" .
<http://ex/dave>   <http://ex/name>      "Dave" .
<http://ex/dave>   <http://ex/birthDate> "1970-12-12" .
<http://ex/dave>   <http://ex/deathDate> "2020-03-03" .
<http://ex/erin>   <http://ex/name>      "Erin" .
<http://ex/erin>   <http://ex/birthDate> "1960-07-07" .
<http://ex/erin>   <http://ex/deathDate> "2015-09-09" .
"""


def main() -> None:
    # 1. Load the graph.
    graph = parse_ntriples(NTRIPLES, name="quickstart people")
    print(f"loaded {len(graph)} triples about {len(graph.subjects())} subjects")

    # 2. The property-structure view and the signature table.
    matrix = PropertyMatrix.from_graph(graph)
    table = SignatureTable.from_matrix(matrix)
    print(render_signature_table(table, max_rows=8, title="\n[horizontal table view]"))

    # 3. Built-in structuredness functions.
    name, birth, death = matrix.properties[3], matrix.properties[0], matrix.properties[1]
    print("\n[structuredness of the whole dataset]")
    print(f"  Cov                      = {coverage(table):.3f}")
    print(f"  Sim                      = {similarity(table):.3f}")
    print(f"  Dep[birthDate, deathDate]    = {dependency(table, birth, death):.3f}")
    print(f"  SymDep[birthDate, deathDate] = {symmetric_dependency(table, birth, death):.3f}")

    # 4. A custom rule in the concrete syntax: "if a subject has any property
    #    at all, it should have a birthDate".
    custom = parse_rule(f"c1 = c1 and prop(c2) = <{birth}> and subj(c2) = subj(c1) -> val(c2) = 1")
    custom_fn = function_from_rule(custom, name="has-birthDate")
    print(f"  custom 'has-birthDate'   = {custom_fn(table):.3f}")

    # 5. Sort refinement: split into at most 2 implicit sorts maximising the
    #    minimum Cov value (the paper's "highest theta for fixed k" setting).
    result = highest_theta_refinement(table, coverage_rule(), k=2, step=0.05)
    print(f"\n[sort refinement under Cov, k = 2] highest theta = {result.theta:.3f}")
    print(result.refinement.summary(coverage_function()))
    for implicit_sort in result.refinement.sorts:
        members = sorted(
            subject.local_name
            for signature in implicit_sort.signatures
            for subject in table.members_of(signature)
        )
        print(f"  sort {implicit_sort.index + 1} members: {', '.join(members)}")


if __name__ == "__main__":
    main()
