"""From a sort refinement to a relational storage layout (property tables).

The paper's introduction motivates structuredness with storage-layout and
query-processing decisions, and its related work frames refined sorts as
relational *property tables*.  This example closes that loop end to end:

1. open a :class:`~repro.api.Dataset` over a typed RDF graph for the
   synthetic DBpedia Persons data, restricted to the persons sort;
2. compute a k = 2 Cov refinement (the alive / dead split) through a
   session;
3. materialise one property table per implicit sort;
4. compare their NULL ratios against the single horizontal table of the
   un-refined sort, and export the tables as CSV.

Run with:  python examples/property_table_export.py [output_dir]
"""

from __future__ import annotations

import os
import sys
import tempfile
from pathlib import Path

from repro.api import Dataset
from repro.datasets import dbpedia_persons_graph
from repro.datasets.dbpedia_persons import PERSON_SORT
from repro.report import format_table
from repro.storage import PropertyTable, build_property_tables, null_ratio_report

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main(output_dir: str | None = None) -> None:
    destination = Path(output_dir) if output_dir else Path(tempfile.mkdtemp(prefix="repro_tables_"))
    destination.mkdir(parents=True, exist_ok=True)

    # 1. A typed RDF graph, its persons sort, and the cached artifact chain.
    graph = dbpedia_persons_graph(n_subjects=max(200, int(2_000 * SCALE)))
    dataset = Dataset.from_graph(graph, sort=PERSON_SORT, name="dbpedia persons")
    session = dataset.session()
    info = session.info
    print(f"dataset: {info.n_subjects} persons, {info.n_properties} properties, "
          f"{info.n_signatures} signatures")

    # 2. Refine into two implicit sorts under Cov.
    result = session.refine("Cov", k=2, step=0.02)
    print(f"k = 2 Cov refinement with theta = {result.theta:.3f}")
    print(result.refinement.summary(session.function_for("Cov")))

    # 3. One property table per implicit sort.
    persons = dataset.graph
    tables = build_property_tables(result.refinement, persons, table_prefix="dbpedia_persons")

    # 4. NULL-ratio report against the single horizontal table.
    matrix = dataset.matrix
    baseline = PropertyTable(
        name="single horizontal table",
        columns=tuple(matrix.properties),
        rows=[
            {p: ("x" if matrix.cell(s, p) else None) for p in matrix.properties}
            for s in matrix.subjects
        ],
        subjects=list(matrix.subjects),
    )
    print()
    print(format_table(null_ratio_report(tables, baseline=baseline), digits=3,
                       title="[storage quality: refined property tables vs one horizontal table]"))

    for property_table in tables:
        path = property_table.write_csv(destination / f"{property_table.name}.csv")
        print(f"wrote {path} ({property_table.n_rows} rows x {property_table.n_columns + 1} columns)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
