"""Using the rule language to analyse property dependencies (Tables 1 & 2).

The structuredness framework is not limited to the built-in functions: any
rule written in the language of Section 3 defines a structuredness
function.  This example drives one :class:`~repro.api.StructurednessSession`
over the DBpedia Persons stand-in:

* tabulates σDep over the birth/death properties of DBpedia Persons
  (Table 1) and σSymDep over all property pairs (Table 2);
* defines two *custom* rules in the concrete text syntax — one that ignores
  the three name-like columns, and one that asks "subjects with a
  description also have both birth facts" — and evaluates them;
* shows that the same rule can be evaluated on a whole dataset or on each
  implicit sort of a refinement.

Run with:  python examples/custom_rules_dependency_analysis.py
"""

from __future__ import annotations

import os
from itertools import combinations

from repro.api import Dataset
from repro.core import GreedyRefiner
from repro.datasets.dbpedia_persons import PERSON_PROPERTIES, PERSONS_NAMESPACE as DBO
from repro.report import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    dataset = Dataset.builtin("dbpedia-persons", n_subjects=max(500, int(20_000 * SCALE)))
    session = dataset.session()

    # --- Table 1: sigma_Dep over the four birth/death properties ---------- #
    focus = [DBO.deathPlace, DBO.birthPlace, DBO.deathDate, DBO.birthDate]
    rows = []
    for p1 in focus:
        row = {"p1 \\ p2": p1.local_name}
        for p2 in focus:
            row[p2.local_name] = session.dependency(p1, p2).value
        rows.append(row)
    print(format_table(rows, digits=2, title="[Table 1] sigma_Dep[p1, p2]"))
    print("-> the deathPlace row is uniformly high: knowing where someone died\n"
          "   implies we know almost everything else about them.\n")

    # --- Table 2: sigma_SymDep ranking over all property pairs ------------ #
    ranking = sorted(
        (
            {"p1": p1.local_name, "p2": p2.local_name,
             "SymDep": session.dependency(p1, p2, symmetric=True).value}
            for p1, p2 in combinations(PERSON_PROPERTIES, 2)
        ),
        key=lambda row: -row["SymDep"],
    )
    print(format_table(ranking[:4] + ranking[-4:], digits=2,
                       title="[Table 2] most / least correlated property pairs"))

    # --- Custom rules in the text syntax ----------------------------------- #
    ignore_names = (
        f"c = c and prop(c) != <{DBO.name}> and prop(c) != <{DBO.givenName}> "
        f"and prop(c) != <{DBO.surName}> -> val(c) = 1"
    )
    described_people_have_birth_facts = (
        f"subj(c1) = subj(c2) and subj(c1) = subj(c3) "
        f"and prop(c1) = <{DBO.description}> and val(c1) = 1 "
        f"and prop(c2) = <{DBO.birthDate}> and prop(c3) = <{DBO.birthPlace}> "
        f"-> val(c2) = 1 and val(c3) = 1"
    )

    # Rule text is accepted anywhere a rule is expected.
    cov_without_names = session.evaluate(ignore_names)
    described = session.evaluate(described_people_have_birth_facts)
    print("\n[custom rules]")
    print(f"  {'Cov ignoring name columns':45s} = {cov_without_names.value:.3f}")
    print(f"  {'described people have birth facts':45s} = {described.value:.3f}")

    # --- Evaluating a rule per implicit sort -------------------------------- #
    cov_without_names_fn = session.function_for(ignore_names)
    refinement = GreedyRefiner(session.function_for("Cov")).refine_k(dataset.table, 3)
    print("\n[custom 'Cov ignoring name columns' per implicit sort of a greedy k=3 refinement]")
    for implicit_sort in refinement.sorts:
        print(
            f"  sort {implicit_sort.index + 1} ({implicit_sort.n_subjects} subjects): "
            f"{cov_without_names_fn(implicit_sort.table):.3f}"
        )


if __name__ == "__main__":
    main()
