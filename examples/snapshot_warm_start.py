"""Snapshot warm starts: build a dataset once, reopen it with zero rebuild.

This example walks the persistence loop end to end (docs/snapshots.md):

1. build a synthetic DBpedia-Persons-scale dataset and its full
   graph → matrix → signature-table chain, timing the cold build;
2. persist the chain with :meth:`Dataset.save` and inspect the manifest;
3. reopen it with :meth:`Dataset.load`, timing the warm start;
4. prove the reloaded artifacts answer queries byte-for-byte identically
   to the freshly built ones;
5. run the same dataset through the service layer via a
   ``{"snapshot": ...}`` spec — the path every pool worker boots from.

Run with:  python examples/snapshot_warm_start.py
(Set REPRO_EXAMPLE_SCALE, e.g. 0.1, to shrink the dataset for smoke runs.)
"""

from __future__ import annotations

import os
import tempfile
import time

from repro.api import Dataset
from repro.service import InlineExecutor
from repro.service.wire import strip_timing
from repro.storage.snapshots import inspect_snapshot

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))
N_SUBJECTS = max(500, int(20_000 * SCALE))


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro-snapshot-")
    snapshot_path = os.path.join(workdir, "persons")

    # 1. Cold: generate the dataset and build the whole chain.
    started = time.perf_counter()
    dataset = Dataset.builtin("dbpedia-persons", n_subjects=N_SUBJECTS)
    table = dataset.table
    cold_time = time.perf_counter() - started
    print(
        f"[cold build]  {table.n_subjects} subjects, {table.n_properties} properties, "
        f"{table.n_signatures} signatures in {cold_time:.3f}s"
    )

    # 2. Persist it and look at what landed on disk.
    info = dataset.save(snapshot_path)
    print(
        f"[save]        stages={', '.join(info.stages)}; "
        f"{info.total_bytes} bytes across {len(info.segments)} segments"
    )
    verified = inspect_snapshot(snapshot_path)
    print(f"[inspect]     format v{verified.format_version}, checksums verified")

    # 3. Warm: reopen the persisted chain (memory-mapped, no rebuild).
    started = time.perf_counter()
    reopened = Dataset.load(snapshot_path)
    _ = reopened.table
    warm_time = time.perf_counter() - started
    ratio = cold_time / warm_time if warm_time > 0 else float("inf")
    print(f"[warm load]   {warm_time:.3f}s  ({ratio:.1f}x faster than the cold build)")
    print(f"[provenance]  stats table_from_snapshot={reopened.stats['table_from_snapshot']}")

    # 4. Bit-identity: same bytes, same query payloads.
    assert reopened.table.packed_support_matrix().tobytes() == table.packed_support_matrix().tobytes()
    assert reopened.table.count_vector().tobytes() == table.count_vector().tobytes()
    fresh_payload = strip_timing(dataset.session().refine("Cov", k=2, step="1/4").to_dict())
    warm_payload = strip_timing(reopened.session().refine("Cov", k=2, step="1/4").to_dict())
    assert warm_payload == fresh_payload
    print("[identity]    refine(Cov, k=2) payloads byte-identical fresh vs reloaded")

    # 5. The service path: a snapshot-backed dataset spec, as pool workers use it.
    executor = InlineExecutor()
    [envelope] = executor.execute(
        [{"op": "evaluate", "dataset": {"snapshot": snapshot_path}, "request": {"rule": "Cov"}}]
    )
    assert envelope["ok"]
    print(f"[service]     evaluate via snapshot spec -> Cov = {envelope['result']['value']:.4f}")
    [entry] = executor.registry.describe()
    print(f"[/v1/datasets] snapshot provenance: {entry['snapshot']}")


if __name__ == "__main__":
    main()
