"""The paper's flagship scenario: refining the DBpedia Persons sort.

DBpedia declares every person to be of the single sort foaf:Person with
eight optional properties, but the actual data conform poorly (Cov = 0.54).
This example reproduces the Section 7.1 analysis on the synthetic DBpedia
Persons stand-in through ONE session — all four queries share the cached
signature table, per-rule encoders and solver binding:

* print the Figure-2 style signature view and the headline structuredness
  values;
* split the sort into k = 2 implicit sorts under Cov — rediscovering the
  "people that are alive" sub-sort (no deathDate/deathPlace columns);
* split it under SymDep[deathPlace, deathDate] — rediscovering the sort
  where the two death properties co-occur;
* find the lowest k achieving threshold 0.9 under Cov.

Run with:  python examples/dbpedia_persons_refinement.py
(Takes on the order of a minute: it solves a few dozen MILP instances.
Set REPRO_EXAMPLE_SCALE, e.g. 0.1, to shrink the dataset for smoke runs.)
"""

from __future__ import annotations

import os

from repro.api import Dataset
from repro.datasets.dbpedia_persons import PERSONS_NAMESPACE as DBO
from repro.matrix import render_refinement, render_signature_table

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    dataset = Dataset.builtin("dbpedia-persons", n_subjects=max(500, int(20_000 * SCALE)))
    session = dataset.session(solver="highs")
    print(render_signature_table(dataset.table, max_rows=18, title="[DBpedia Persons, signature view]"))
    cov, sim = session.evaluate("Cov").value, session.evaluate("Sim").value
    print(f"\nCov = {cov:.2f} (paper: 0.54)   Sim = {sim:.2f} (paper: 0.77)")

    # --- Figure 4a: highest theta for k = 2 under Cov --------------------- #
    cov_fn = session.function_for("Cov")
    result = session.refine("Cov", k=2)
    print(f"\n[k = 2 under Cov] highest theta = {result.theta:.3f} "
          f"({result.n_probes} ILP probes, {result.total_time:.1f}s)")
    for implicit_sort in result.refinement.sorts:
        has_death = DBO.deathDate in implicit_sort.used_properties or (
            DBO.deathPlace in implicit_sort.used_properties
        )
        label = "dead or death-documented people" if has_death else "people that are alive"
        print(
            f"  sort {implicit_sort.index + 1}: {implicit_sort.n_subjects} subjects, "
            f"Cov = {implicit_sort.structuredness(cov_fn):.2f}  <- {label}"
        )
    print(render_refinement(
        [s.table for s in result.refinement.sorts],
        parent_properties=dataset.table.properties,
        max_rows=10,
    ))

    # --- Figure 4c: highest theta for k = 2 under SymDep ------------------ #
    from repro.rules import symmetric_dependency

    symdep_rule = symmetric_dependency(DBO.deathPlace, DBO.deathDate)
    symdep_fn = session.function_for(symdep_rule)
    result = session.refine(symdep_rule, k=2, step=0.02)
    print(f"\n[k = 2 under SymDep[deathPlace, deathDate]] highest theta = {result.theta:.3f}")
    for implicit_sort in result.refinement.sorts:
        print(
            f"  sort {implicit_sort.index + 1}: {implicit_sort.n_subjects} subjects, "
            f"SymDep = {implicit_sort.structuredness(symdep_fn):.2f}, "
            f"uses deathPlace = {DBO.deathPlace in implicit_sort.used_properties}"
        )

    # --- Figure 5a: lowest k for threshold 0.9 under Cov ------------------ #
    # At reduced scale the greedy upper bound loosens and the sweep slows
    # down, so quick runs fold the signature tail first (Dataset.folded
    # derives a new cached handle; the experiments do the same for σSim).
    lowk_session = session if SCALE >= 1 else dataset.folded(24).session()
    result = lowk_session.lowest_k("Cov", theta="9/10", direction="auto")
    print(f"\n[lowest k with Cov >= 0.9] k = {result.k} (paper: 9 at full scale)")
    print(result.refinement.summary(cov_fn))

    # Everything above ran against one cached signature table.
    print(f"\n[session] stats = {session.stats}, dataset builds = {dataset.stats}")


if __name__ == "__main__":
    main()
