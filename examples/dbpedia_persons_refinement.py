"""The paper's flagship scenario: refining the DBpedia Persons sort.

DBpedia declares every person to be of the single sort foaf:Person with
eight optional properties, but the actual data conform poorly (Cov = 0.54).
This example reproduces the Section 7.1 analysis on the synthetic DBpedia
Persons stand-in:

* print the Figure-2 style signature view and the headline structuredness
  values;
* split the sort into k = 2 implicit sorts under Cov — rediscovering the
  "people that are alive" sub-sort (no deathDate/deathPlace columns);
* split it under SymDep[deathPlace, deathDate] — rediscovering the sort
  where the two death properties co-occur;
* find the lowest k achieving threshold 0.9 under Cov.

Run with:  python examples/dbpedia_persons_refinement.py
(Takes on the order of a minute: it solves a few dozen MILP instances.)
"""

from __future__ import annotations

from repro.core import highest_theta_refinement, lowest_k_refinement
from repro.datasets import dbpedia_persons_table
from repro.datasets.dbpedia_persons import PERSONS_NAMESPACE as DBO
from repro.functions import (
    coverage,
    coverage_function,
    similarity,
    symmetric_dependency_function,
)
from repro.matrix import render_refinement, render_signature_table
from repro.rules import coverage as coverage_rule
from repro.rules import symmetric_dependency


def main() -> None:
    persons = dbpedia_persons_table(n_subjects=20_000)
    print(render_signature_table(persons, max_rows=18, title="[DBpedia Persons, signature view]"))
    print(f"\nCov = {coverage(persons):.2f} (paper: 0.54)   Sim = {similarity(persons):.2f} (paper: 0.77)")

    # --- Figure 4a: highest theta for k = 2 under Cov --------------------- #
    cov_fn = coverage_function()
    result = highest_theta_refinement(persons, coverage_rule(), k=2)
    print(f"\n[k = 2 under Cov] highest theta = {result.theta:.3f} "
          f"({result.n_probes} ILP probes, {result.total_time:.1f}s)")
    for implicit_sort in result.refinement.sorts:
        has_death = DBO.deathDate in implicit_sort.used_properties or (
            DBO.deathPlace in implicit_sort.used_properties
        )
        label = "dead or death-documented people" if has_death else "people that are alive"
        print(
            f"  sort {implicit_sort.index + 1}: {implicit_sort.n_subjects} subjects, "
            f"Cov = {implicit_sort.structuredness(cov_fn):.2f}  <- {label}"
        )
    print(render_refinement(
        [s.table for s in result.refinement.sorts],
        parent_properties=persons.properties,
        max_rows=10,
    ))

    # --- Figure 4c: highest theta for k = 2 under SymDep ------------------ #
    symdep_rule = symmetric_dependency(DBO.deathPlace, DBO.deathDate)
    symdep_fn = symmetric_dependency_function(DBO.deathPlace, DBO.deathDate)
    result = highest_theta_refinement(persons, symdep_rule, k=2, step=0.02)
    print(f"\n[k = 2 under SymDep[deathPlace, deathDate]] highest theta = {result.theta:.3f}")
    for implicit_sort in result.refinement.sorts:
        print(
            f"  sort {implicit_sort.index + 1}: {implicit_sort.n_subjects} subjects, "
            f"SymDep = {implicit_sort.structuredness(symdep_fn):.2f}, "
            f"uses deathPlace = {DBO.deathPlace in implicit_sort.used_properties}"
        )

    # --- Figure 5a: lowest k for threshold 0.9 under Cov ------------------ #
    result = lowest_k_refinement(persons, coverage_rule(), theta=0.9, direction="auto")
    print(f"\n[lowest k with Cov >= 0.9] k = {result.k} (paper: 9 at full scale)")
    print(result.refinement.summary(cov_fn))


if __name__ == "__main__":
    main()
