"""A miniature version of the Figure 8 scalability study, plus an exact-vs-greedy comparison.

For a sample of synthetic YAGO-like explicit sorts this script:

* solves a highest-θ (k = 2) refinement for every sort with the MILP
  backend (one :class:`~repro.api.Dataset` handle and session per sort),
  recording the wall-clock time;
* fits the runtime against the number of signatures (power law) and the
  number of properties (exponential), as the paper does;
* compares the exact ILP result against the greedy agglomerative baseline
  on the same sorts, showing what exactness buys (and what it costs).

Run with:  python examples/scalability_study.py
"""

from __future__ import annotations

import os
import time

from repro.api import Dataset
from repro.core import GreedyRefiner
from repro.datasets import yago_sort_sample
from repro.experiments import fit_exponential, fit_power_law
from repro.functions import coverage_function
from repro.report import format_table

SCALE = float(os.environ.get("REPRO_EXAMPLE_SCALE", "1"))


def main() -> None:
    sample = yago_sort_sample(
        n_sorts=max(4, int(12 * SCALE)),
        seed=23,
        max_signatures=max(10, int(30 * SCALE)),
        max_properties=max(6, int(14 * SCALE)),
    )
    cov_fn = coverage_function()
    rows = []
    for table in sample:
        session = Dataset.from_table(table).session(solver_time_limit=20)
        started = time.perf_counter()
        exact = session.refine("Cov", k=2, step=0.05, max_probes=6)
        ilp_time = time.perf_counter() - started

        started = time.perf_counter()
        greedy = GreedyRefiner(cov_fn).refine_k(table, 2)
        greedy_time = time.perf_counter() - started

        rows.append(
            {
                "sort": table.name,
                "subjects": table.n_subjects,
                "signatures": table.n_signatures,
                "properties": table.n_properties,
                "ILP theta": exact.theta,
                "greedy min sigma": greedy.min_structuredness(cov_fn),
                "ILP time (s)": ilp_time,
                "greedy time (s)": greedy_time,
            }
        )

    print(format_table(rows, digits=3, title="[per-sort results]"))

    signatures = [row["signatures"] for row in rows]
    properties = [row["properties"] for row in rows]
    subjects = [row["subjects"] for row in rows]
    runtimes = [row["ILP time (s)"] for row in rows]
    sig_exp, sig_r2 = fit_power_law(signatures, runtimes)
    prop_rate, prop_r2 = fit_exponential(properties, runtimes)
    subj_exp, _ = fit_power_law(subjects, runtimes)
    print("\n[scaling fits, cf. Figure 8]")
    print(f"  runtime ~ signatures^{sig_exp:.2f}   (R^2 = {sig_r2:.2f}; paper exponent ~2.5)")
    print(f"  runtime ~ exp({prop_rate:.2f} * properties) (R^2 = {prop_r2:.2f}; paper rate ~0.28)")
    print(f"  runtime ~ subjects^{subj_exp:.2f}  (paper: no dependence on the number of subjects)")

    exact_wins = sum(
        1 for row in rows if row["ILP theta"] >= row["greedy min sigma"] - 0.01
    )
    print(f"\n[exact vs greedy] the ILP matches or beats the greedy baseline on "
          f"{exact_wins}/{len(rows)} sorts (it is optimal up to the 0.05 theta step).")


if __name__ == "__main__":
    main()
