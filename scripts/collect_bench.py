#!/usr/bin/env python
"""Merge benchmark artifacts into the committed trajectory files.

Benchmarks drop single-run measurements as
``benchmarks/artifacts/BENCH_<name>.json`` (gitignored, uploaded raw by
CI).  This script folds each of them into a committed top-level
``BENCH_<name>.json`` *trajectory*: a history of runs, each stamped with
the commit and CI run that produced it, so benchmark numbers accrete in
the repository instead of evaporating with the CI artifact retention
window.  Identical consecutive payloads are not re-appended, so re-running
the script (or re-running CI on the same numbers) is idempotent.

Stamps come from the CI environment when present (``GITHUB_SHA``,
``GITHUB_RUN_ID``) and fall back to ``git rev-parse HEAD`` locally; the
timestamp is UTC.  Usage::

    python scripts/collect_bench.py            # merge all artifacts
    python scripts/collect_bench.py --dry-run  # report without writing
"""

from __future__ import annotations

import argparse
import datetime
import json
import os
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
ARTIFACT_DIR = REPO_ROOT / "benchmarks" / "artifacts"
#: Trajectory files keep at most this many runs (oldest dropped first) so
#: the committed files stay reviewable.
MAX_HISTORY = 50


def _commit_stamp() -> str:
    """The commit under measurement: CI env first, local git as fallback."""
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def _run_stamp() -> dict:
    """One trajectory entry's provenance block."""
    stamp = {
        "commit": _commit_stamp(),
        "recorded_utc": datetime.datetime.now(datetime.timezone.utc).strftime(
            "%Y-%m-%dT%H:%M:%SZ"
        ),
    }
    run_id = os.environ.get("GITHUB_RUN_ID")
    if run_id:
        stamp["ci_run"] = run_id
    return stamp


def merge_artifact(artifact: pathlib.Path, output_dir: pathlib.Path, dry_run: bool) -> str:
    """Fold one ``BENCH_<name>.json`` artifact into its trajectory file.

    Returns a one-line human-readable description of what happened
    (``appended``, ``unchanged`` or ``created``).
    """
    payload = json.loads(artifact.read_text())
    target = output_dir / artifact.name
    if target.exists():
        trajectory = json.loads(target.read_text())
        history = trajectory.get("history", [])
        verb = "appended"
    else:
        history = []
        verb = "created"
    if history and history[-1].get("payload") == payload:
        return f"{target.name}: unchanged (latest entry already matches)"
    history.append(dict(_run_stamp(), payload=payload))
    history = history[-MAX_HISTORY:]
    trajectory = {"benchmark": artifact.stem.replace("BENCH_", "", 1), "history": history}
    if not dry_run:
        target.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    return f"{target.name}: {verb} run #{len(history)}"


def main(argv=None) -> int:
    """Merge every artifact; exit 0 even when there is nothing to merge."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--artifacts", type=pathlib.Path, default=ARTIFACT_DIR,
        help="directory holding BENCH_<name>.json artifacts",
    )
    parser.add_argument(
        "--output", type=pathlib.Path, default=REPO_ROOT,
        help="directory holding the committed trajectory files",
    )
    parser.add_argument(
        "--dry-run", action="store_true", help="report actions without writing"
    )
    args = parser.parse_args(argv)
    artifacts = sorted(args.artifacts.glob("BENCH_*.json")) if args.artifacts.is_dir() else []
    if not artifacts:
        print(f"collect_bench: no artifacts under {args.artifacts}")
        return 0
    for artifact in artifacts:
        print("collect_bench:", merge_artifact(artifact, args.output, args.dry_run))
    return 0


if __name__ == "__main__":
    sys.exit(main())
