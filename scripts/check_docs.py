#!/usr/bin/env python3
"""Documentation gate, run in CI next to the tier-1 tests.

Two checks, both purely static (no imports, no network):

1. **Public docstring audit** — every module, public class, public
   function and public method in the audited packages (``repro/api``,
   ``repro/service``, ``repro/storage``) must carry a docstring.  These
   are the user-facing surfaces documented in ``docs/``; an undocumented
   public name there is a doc bug.
2. **Intra-repo link integrity** — every relative markdown link in
   ``docs/*.md``, ``README.md`` and ``DESIGN.md`` must point at an
   existing file, and ``#fragment`` links into markdown files must match
   a real heading (GitHub slug rules).  External ``http(s)://`` links are
   not touched.

Exit status 0 when clean; 1 with a per-finding report otherwise.
Run locally with::

    python scripts/check_docs.py
"""

from __future__ import annotations

import ast
import re
import sys
from pathlib import Path
from typing import Iterator, List, Set, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Packages whose public surface must be fully docstringed.
AUDITED_PACKAGES = ("src/repro/api", "src/repro/service", "src/repro/storage")

#: Markdown documents whose relative links must resolve.
LINKED_DOCUMENTS = ("README.md", "DESIGN.md", "docs")

#: ``[text](target)`` — good enough for the plain markdown these docs use
#: (no nested brackets, no reference-style links).
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

_HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")


# --------------------------------------------------------------------- #
# Docstring audit
# --------------------------------------------------------------------- #
def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _iter_docstring_gaps(path: Path) -> Iterator[str]:
    """Yield one message per missing docstring in ``path``."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    relative = path.relative_to(REPO_ROOT)
    if ast.get_docstring(tree) is None:
        yield f"{relative}: missing module docstring"
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                yield f"{relative}:{node.lineno}: public function '{node.name}' has no docstring"
        elif isinstance(node, ast.ClassDef) and _is_public(node.name):
            if ast.get_docstring(node) is None:
                yield f"{relative}:{node.lineno}: public class '{node.name}' has no docstring"
            for member in node.body:
                if (
                    isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and _is_public(member.name)
                    and ast.get_docstring(member) is None
                ):
                    yield (
                        f"{relative}:{member.lineno}: public method "
                        f"'{node.name}.{member.name}' has no docstring"
                    )


def check_docstrings() -> List[str]:
    """Audit every python file of the audited packages; return the findings."""
    findings: List[str] = []
    for package in AUDITED_PACKAGES:
        root = REPO_ROOT / package
        for path in sorted(root.rglob("*.py")):
            findings.extend(_iter_docstring_gaps(path))
    return findings


# --------------------------------------------------------------------- #
# Link integrity
# --------------------------------------------------------------------- #
def _github_slug(heading: str) -> str:
    """GitHub's anchor slug for a markdown heading (the common subset)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _headings_of(path: Path) -> Set[str]:
    slugs: Set[str] = set()
    in_code_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        match = _HEADING_RE.match(line)
        if match:
            slugs.add(_github_slug(match.group(1)))
    return slugs


def _iter_markdown_files() -> Iterator[Path]:
    for entry in LINKED_DOCUMENTS:
        path = REPO_ROOT / entry
        if path.is_dir():
            yield from sorted(path.glob("*.md"))
        elif path.exists():
            yield path


def _iter_link_targets(path: Path) -> Iterator[Tuple[int, str]]:
    in_code_fence = False
    for lineno, line in enumerate(path.read_text(encoding="utf-8").splitlines(), start=1):
        if line.lstrip().startswith("```"):
            in_code_fence = not in_code_fence
            continue
        if in_code_fence:
            continue
        for match in _LINK_RE.finditer(line):
            yield lineno, match.group(1)


def check_links() -> List[str]:
    """Resolve every relative markdown link; return the dead ones."""
    findings: List[str] = []
    for document in _iter_markdown_files():
        relative = document.relative_to(REPO_ROOT)
        for lineno, target in _iter_link_targets(document):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            resolved = document if not base else (document.parent / base).resolve()
            if base and not resolved.exists():
                findings.append(f"{relative}:{lineno}: dead link target '{target}'")
                continue
            if fragment and resolved.suffix == ".md":
                if _github_slug(fragment) not in _headings_of(resolved):
                    findings.append(
                        f"{relative}:{lineno}: link '{target}' points at a "
                        f"heading that does not exist in {resolved.name}"
                    )
    return findings


def main() -> int:
    """Run both checks; print findings and return the exit status."""
    findings = check_docstrings() + check_links()
    if findings:
        print(f"check_docs: {len(findings)} problem(s) found", file=sys.stderr)
        for finding in findings:
            print(f"  {finding}", file=sys.stderr)
        return 1
    print("check_docs: public docstrings complete, all intra-repo links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
