#!/usr/bin/env python
"""HTTP smoke test: serve → evaluate/refine/sweep → batch → stats.

Starts ``repro serve`` as a real subprocess on an ephemeral port, drives
it over HTTP the way a client would, and fails (non-zero exit) on any
non-200 response or on payload drift against an in-process
:class:`repro.service.InlineExecutor` answering the same requests.  The
full drive runs twice — against the threaded server and against ``repro
serve --async`` — and a third, shorter round checks the async front-end
over an elastic ``--min-workers 1 --max-workers 2`` pool (admission
section in ``/v1/stats``, elastic executor stats, batch determinism).
CI runs this as its service job; locally::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

DATASET = {"builtin": "dbpedia-persons", "params": {"n_subjects": 500}}
REQUESTS = [
    {"op": "evaluate", "dataset": DATASET, "request": {"rule": "Cov", "exact": True}},
    {"op": "refine", "dataset": DATASET, "request": {"rule": "Cov", "k": 2, "step": "1/10"}},
    {"op": "sweep", "dataset": DATASET, "request": {"rule": "Cov", "k_values": [2, 3], "step": "1/4"}},
]


def call(base, path, body=None, expect=200):
    url = base + path
    if body is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(body).encode(), headers={"Content-Type": "application/json"}
        )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            status, payload = response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        status, payload = error.code, json.loads(error.read())
    if status != expect:
        raise SystemExit(f"FAIL {path}: expected HTTP {expect}, got {status}: {payload}")
    return payload


#: The watch round needs a *graph-backed* dataset (mutations patch the RDF
#: graph; the built-in generators materialise signature tables directly).
WATCH_DATASET = {
    "name": "watch-smoke",
    "ntriples": (
        '<http://smoke/a> <http://smoke/p> "1" .\n'
        '<http://smoke/a> <http://smoke/q> "1" .\n'
        '<http://smoke/b> <http://smoke/p> "1" .\n'
    ),
}


def run_watch_round(base) -> str:
    """One live watch round: stream ``/v1/watch`` while mutating the dataset.

    Opens the JSONL stream, fires a mutation from a sibling connection half
    a second in, and returns the σ of the post-mutation sigma event.  Fails
    if the stream never reports the mutated generation or any event line is
    missing its request id.
    """
    host = base.split("//", 1)[1].rstrip("/")
    mutate_failure = []

    def mutate() -> None:
        time.sleep(0.5)
        try:
            payload = call(base, "/v1/mutate", {
                "dataset": WATCH_DATASET,
                "add": [["http://smoke/c", "http://smoke/p", "\"1\""]],
            })
            if not payload.get("ok"):
                mutate_failure.append(f"mutate envelope not ok: {payload}")
        except SystemExit as error:  # call() failures must reach the main thread
            mutate_failure.append(str(error))

    thread = threading.Thread(target=mutate, daemon=True)
    thread.start()
    connection = http.client.HTTPConnection(host, timeout=60)
    connection.request("POST", "/v1/watch", body=json.dumps({
        "dataset": WATCH_DATASET, "rules": ["Cov"], "max_events": 2, "duration_s": 30.0,
    }), headers={"Content-Type": "application/json"})
    response = connection.getresponse()
    if response.status != 200:
        raise SystemExit(f"FAIL /v1/watch: HTTP {response.status}: {response.read()!r}")
    events = [json.loads(line) for line in response.read().decode().splitlines() if line.strip()]
    connection.close()
    thread.join(timeout=30)
    if mutate_failure:
        raise SystemExit(f"FAIL /v1/mutate during watch: {mutate_failure[0]}")
    for event in events:
        if "request_id" not in event:
            raise SystemExit(f"FAIL /v1/watch: event missing request_id: {event}")
    mutated = [e for e in events if e.get("kind") == "sigma" and e.get("generation", 0) >= 1]
    if not mutated:
        raise SystemExit(f"FAIL /v1/watch: no post-mutation sigma event in {events}")
    return mutated[-1]["sigma"]


def _spawn_server(env, *extra_args):
    """Start ``repro serve`` on an ephemeral port; return (process, base url)."""
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = server.stdout.readline()
    match = re.search(r"listening on (http://\S+)", line)
    if not match:
        server.terminate()
        raise SystemExit(f"FAIL: server did not announce its address: {line!r}")
    base = match.group(1)
    deadline = time.time() + 30
    while True:
        try:
            call(base, "/healthz")
            break
        except OSError:
            if time.time() > deadline:
                server.terminate()
                raise SystemExit("FAIL: server never became healthy")
            time.sleep(0.2)
    return server, base


def _stop_server(server) -> None:
    server.terminate()
    try:
        server.wait(timeout=10)
    except subprocess.TimeoutExpired:
        server.kill()


def run_drive(base, label) -> None:
    """The full route drive against one live server."""
    from repro.service import InlineExecutor

    def fail(message):
        raise SystemExit(f"[{label}] {message}")

    # The server executes the single-op calls first and the batch
    # second, against the same long-lived sessions — so the second
    # pass legitimately reports ``cached: true``.  Replay the exact
    # same sequence on one inline executor to get both references.
    executor = InlineExecutor()
    reference = executor.execute([dict(r) for r in REQUESTS])
    reference_repeat = executor.execute([dict(r) for r in REQUESTS])

    # Single-op routes, checked against the in-process answers.
    for request, expected in zip(REQUESTS, reference):
        payload = call(base, f"/v1/{request['op']}", {k: v for k, v in request.items() if k != "op"})
        if not payload.get("ok"):
            fail(f"FAIL /v1/{request['op']}: {payload}")
        if payload["result"] != expected["result"]:
            fail(
                f"FAIL /v1/{request['op']}: payload drift\n"
                f"  http:   {json.dumps(payload['result'], sort_keys=True)}\n"
                f"  inline: {json.dumps(expected['result'], sort_keys=True)}"
            )

    # The batch route returns the same envelopes, in order (the repeat
    # reference: the server's sessions answered these once already).
    batch = call(base, "/v1/batch", {"requests": REQUESTS})
    if batch["results"] != reference_repeat:
        fail(
            "FAIL /v1/batch: payload drift against inline executor\n"
            f"  http:   {json.dumps(batch['results'], sort_keys=True)}\n"
            f"  inline: {json.dumps(reference_repeat, sort_keys=True)}"
        )

    # A client mistake must map to a structured 400, not a traceback.
    bad = call(base, "/v1/lowest_k", {"dataset": DATASET, "theta": "4/3"}, expect=400)
    if bad.get("error", {}).get("type") != "RequestError":
        fail(f"FAIL: bad theta did not map to RequestError: {bad}")

    stats = call(base, "/v1/stats")
    sessions = stats.get("executor", {}).get("sessions", [])
    if not sessions or any("solver" not in s for s in sessions):
        fail(f"FAIL /v1/stats: sessions missing solver backends: {stats}")
    datasets = call(base, "/v1/datasets")
    if "dbpedia-persons" not in datasets.get("builtin", []):
        fail(f"FAIL /v1/datasets: {datasets}")

    # Every envelope must carry the request id and server timing at its
    # top level (the deterministic ``result`` payloads stay untouched).
    for key in ("request_id", "server_time_ms"):
        if key not in stats:
            fail(f"FAIL /v1/stats: envelope missing {key!r}: {stats}")

    # The telemetry spine: /v1/metrics must report the traffic this
    # smoke run generated, including the 400 from the bad theta above.
    metrics = call(base, "/v1/metrics")
    for section in ("server", "service", "process"):
        if section not in metrics:
            fail(f"FAIL /v1/metrics: missing section {section!r}: {metrics}")
    counters = metrics["service"].get("counters", {})
    if not counters.get("http.status.2xx"):
        fail(f"FAIL /v1/metrics: no 2xx traffic counted: {counters}")
    if not counters.get("http.status.4xx"):
        fail(f"FAIL /v1/metrics: the bad-theta 400 was not counted: {counters}")

    # One live watch round: stream /v1/watch, mutate the dataset from a
    # sibling connection, and check the streamed σ against a fresh
    # evaluate of the mutated dataset — the differential guarantee,
    # end to end over HTTP.
    watch_sigma = run_watch_round(base)
    fresh = call(base, "/v1/evaluate", {
        "dataset": WATCH_DATASET, "request": {"rule": "Cov", "exact": True},
    })
    if watch_sigma != fresh["result"]["exact"]:
        fail(
            "FAIL /v1/watch: streamed sigma drifted from a fresh evaluate\n"
            f"  watch: {watch_sigma}\n  fresh: {fresh['result']['exact']}"
        )

    print(f"[{label}] drive OK:", json.dumps(stats["server"], sort_keys=True))


def run_elastic_round(base) -> None:
    """The async+elastic specifics: admission stats, elastic executor, batch."""
    from repro.service import InlineExecutor

    stats = call(base, "/v1/stats")
    admission = stats.get("admission")
    if not admission or "pending_limit" not in admission:
        raise SystemExit(f"[elastic] FAIL /v1/stats: no admission section: {stats}")
    if stats.get("executor", {}).get("mode") != "elastic":
        raise SystemExit(f"[elastic] FAIL /v1/stats: executor is not elastic: {stats}")
    batch = call(base, "/v1/batch", {"requests": REQUESTS})
    reference = InlineExecutor().execute([dict(r) for r in REQUESTS])
    got = [{k: v for k, v in e.items() if k != "cached"} for e in batch["results"]]
    want = [{k: v for k, v in e.items() if k != "cached"} for e in reference]
    if got != want:
        raise SystemExit(
            "[elastic] FAIL /v1/batch: payload drift against inline executor\n"
            f"  http:   {json.dumps(got, sort_keys=True)}\n"
            f"  inline: {json.dumps(want, sort_keys=True)}"
        )
    metrics = call(base, "/v1/metrics")
    scale = metrics.get("executor", {}).get("counters", {})
    if not scale.get("scale.worker_boots"):
        raise SystemExit(f"[elastic] FAIL /v1/metrics: no worker boots counted: {metrics}")
    print("[elastic] round OK:", json.dumps(stats["executor"], sort_keys=True))


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    sys.path.insert(0, src)

    rounds = [
        ("threaded", ()),
        ("async", ("--async",)),
    ]
    for label, extra_args in rounds:
        server, base = _spawn_server(env, *extra_args)
        try:
            run_drive(base, label)
        finally:
            _stop_server(server)

    server, base = _spawn_server(
        env, "--async", "--min-workers", "1", "--max-workers", "2"
    )
    try:
        run_elastic_round(base)
    finally:
        _stop_server(server)

    print("service smoke OK (threaded + async + elastic)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
