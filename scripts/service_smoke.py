#!/usr/bin/env python
"""HTTP smoke test: serve → evaluate/refine/sweep → batch → stats.

Starts ``repro serve`` as a real subprocess on an ephemeral port, drives
it over HTTP the way a client would, and fails (non-zero exit) on any
non-200 response or on payload drift against an in-process
:class:`repro.service.InlineExecutor` answering the same requests.  CI
runs this as its service job; locally::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

DATASET = {"builtin": "dbpedia-persons", "params": {"n_subjects": 500}}
REQUESTS = [
    {"op": "evaluate", "dataset": DATASET, "request": {"rule": "Cov", "exact": True}},
    {"op": "refine", "dataset": DATASET, "request": {"rule": "Cov", "k": 2, "step": "1/10"}},
    {"op": "sweep", "dataset": DATASET, "request": {"rule": "Cov", "k_values": [2, 3], "step": "1/4"}},
]


def call(base, path, body=None, expect=200):
    url = base + path
    if body is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url, data=json.dumps(body).encode(), headers={"Content-Type": "application/json"}
        )
    try:
        with urllib.request.urlopen(request, timeout=120) as response:
            status, payload = response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        status, payload = error.code, json.loads(error.read())
    if status != expect:
        raise SystemExit(f"FAIL {path}: expected HTTP {expect}, got {status}: {payload}")
    return payload


def main() -> int:
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    server = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = server.stdout.readline()
        match = re.search(r"listening on (http://\S+)", line)
        if not match:
            raise SystemExit(f"FAIL: server did not announce its address: {line!r}")
        base = match.group(1)
        deadline = time.time() + 30
        while True:
            try:
                call(base, "/healthz")
                break
            except OSError:
                if time.time() > deadline:
                    raise SystemExit("FAIL: server never became healthy")
                time.sleep(0.2)

        sys.path.insert(0, src)
        from repro.service import InlineExecutor

        # The server executes the single-op calls first and the batch
        # second, against the same long-lived sessions — so the second
        # pass legitimately reports ``cached: true``.  Replay the exact
        # same sequence on one inline executor to get both references.
        executor = InlineExecutor()
        reference = executor.execute([dict(r) for r in REQUESTS])
        reference_repeat = executor.execute([dict(r) for r in REQUESTS])

        # Single-op routes, checked against the in-process answers.
        for request, expected in zip(REQUESTS, reference):
            payload = call(base, f"/v1/{request['op']}", {k: v for k, v in request.items() if k != "op"})
            if not payload.get("ok"):
                raise SystemExit(f"FAIL /v1/{request['op']}: {payload}")
            if payload["result"] != expected["result"]:
                raise SystemExit(
                    f"FAIL /v1/{request['op']}: payload drift\n"
                    f"  http:   {json.dumps(payload['result'], sort_keys=True)}\n"
                    f"  inline: {json.dumps(expected['result'], sort_keys=True)}"
                )

        # The batch route returns the same envelopes, in order (the repeat
        # reference: the server's sessions answered these once already).
        batch = call(base, "/v1/batch", {"requests": REQUESTS})
        if batch["results"] != reference_repeat:
            raise SystemExit(
                "FAIL /v1/batch: payload drift against inline executor\n"
                f"  http:   {json.dumps(batch['results'], sort_keys=True)}\n"
                f"  inline: {json.dumps(reference_repeat, sort_keys=True)}"
            )

        # A client mistake must map to a structured 400, not a traceback.
        bad = call(base, "/v1/lowest_k", {"dataset": DATASET, "theta": "4/3"}, expect=400)
        if bad.get("error", {}).get("type") != "RequestError":
            raise SystemExit(f"FAIL: bad theta did not map to RequestError: {bad}")

        stats = call(base, "/v1/stats")
        sessions = stats.get("executor", {}).get("sessions", [])
        if not sessions or any("solver" not in s for s in sessions):
            raise SystemExit(f"FAIL /v1/stats: sessions missing solver backends: {stats}")
        datasets = call(base, "/v1/datasets")
        if "dbpedia-persons" not in datasets.get("builtin", []):
            raise SystemExit(f"FAIL /v1/datasets: {datasets}")

        print("service smoke OK:", json.dumps(stats["server"], sort_keys=True))
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
