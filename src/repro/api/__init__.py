"""The session-oriented public API: the single entry point for frontends.

The paper's workload is many queries over one dataset.  This package gives
that shape a first-class surface:

>>> from repro.api import Dataset
>>> dataset = Dataset.builtin("dbpedia-persons", n_subjects=20_000)
>>> session = dataset.session(solver="highs", solver_time_limit=60.0)
>>> session.evaluate("Cov").value                          # doctest: +SKIP
0.54
>>> result = session.refine("Cov", k=2, step=0.05)         # doctest: +SKIP
>>> result.theta, [s.n_subjects for s in result.sorts]     # doctest: +SKIP
(0.75, [13345, 6655])
>>> result.to_json()                                       # doctest: +SKIP
'{"dataset": {...}, "rule": "Cov", "kind": "highest_theta", ...}'

The :class:`Dataset` handle owns the cached graph → matrix → signature
table chain; the :class:`StructurednessSession` owns per-rule encoders,
the solver binding (any backend registered in :mod:`repro.ilp.registry`)
and a result cache, so repeated ``refine``/``sweep`` calls amortise all
derived state.  The CLI, the experiment harness and the examples are all
built on this facade; the older free functions
(:func:`repro.core.highest_theta_refinement`, ...) remain as the
lower-level library surface underneath it.
"""

from repro.api.dataset import Dataset, builtin_dataset_names, register_builtin_dataset
from repro.api.requests import (
    EvaluateRequest,
    LowestKRequest,
    MutationRequest,
    RefineRequest,
    RuleSpec,
    SweepRequest,
    ThetaSpec,
    parse_theta,
)
from repro.api.results import (
    DatasetInfo,
    EvaluationResult,
    MutationResult,
    RefinementResult,
    SortSummary,
    SweepResult,
)
from repro.api.session import StructurednessSession, named_rules, resolve_rule
from repro.api.watch import WatchEvent, WatchSession

__all__ = [
    "Dataset",
    "StructurednessSession",
    "WatchSession",
    "WatchEvent",
    "builtin_dataset_names",
    "register_builtin_dataset",
    "named_rules",
    "resolve_rule",
    "parse_theta",
    "RuleSpec",
    "ThetaSpec",
    "EvaluateRequest",
    "RefineRequest",
    "LowestKRequest",
    "SweepRequest",
    "DatasetInfo",
    "EvaluationResult",
    "MutationRequest",
    "MutationResult",
    "SortSummary",
    "RefinementResult",
    "SweepResult",
]
