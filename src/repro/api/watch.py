"""Live structuredness watch: continuous σ/θ observability over mutations.

The paper's numbers — σ values, per-sort θ coverage, lowest-k
refinements — are one-shot query results everywhere else in the library.
This module turns them into a *stream*: a :class:`WatchSession`
subscribes to a :class:`~repro.api.dataset.Dataset` and, every time the
dataset's mutation generation advances, re-derives the watched
quantities **incrementally** and emits typed :class:`WatchEvent`\\ s.

The incremental engine is the sharded signature table
(:class:`~repro.matrix.sharded.ShardedSignatureTable`): mutations refresh
only the shards whose signatures the delta touched, and the watch keeps
a per-shard aggregate cache keyed on shard *identity* — an untouched
shard's contribution is reused without recounting a single signature.
Per rule the cached aggregate is:

* one-variable rules (σCov, σDep shapes, any custom single-variable
  rule): the shard's exact ``(total, favourable)`` case counts, merged
  by integer addition;
* the σSim shape (two variables, recognised structurally): the shard's
  subject count and property-count vector — sufficient statistics whose
  sums reproduce the closed form exactly;
* any other multi-variable rule: no shard decomposition exists
  (assignments span shards), so the watch falls back to a whole-table
  recount and reports it honestly (``full_recount``).

Every σ is an exact :class:`~fractions.Fraction`, so watch values are
bit-identical to a fresh-dataset recompute — the differential harness in
``tests/test_watch.py`` pins that over hundreds of mutation scenarios.

With a ``theta`` threshold the watch additionally tracks the lowest-k
refinement per rule through an internal
:class:`~repro.api.session.StructurednessSession` and emits a ``drift``
event whenever the smallest k reaching θ changes — the alert the
ROADMAP's mutation-stream observability item asks for.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Tuple

from repro.api.dataset import Dataset
from repro.api.requests import parse_theta
from repro.api.session import resolve_rule
from repro.exceptions import RequestError
from repro.matrix.sharded import ShardedSignatureTable
from repro.rules import library
from repro.rules.ast import Rule
from repro.telemetry import current as current_telemetry

__all__ = ["WatchEvent", "WatchSession"]


def _fraction_text(value: Optional[Fraction]) -> Optional[str]:
    if value is None:
        return None
    return f"{value.numerator}/{value.denominator}"


@dataclass(frozen=True)
class WatchEvent:
    """One typed observation emitted by a :class:`WatchSession`.

    ``kind`` is ``"sigma"`` (a rule's σ after a mutation generation),
    ``"drift"`` (the lowest-k refinement for the watched θ changed) or
    ``"heartbeat"`` (a liveness tick from the streaming transport).  The
    schema is fixed: every field is always present (``None``/empty when
    not applicable), so JSONL consumers never see shape drift.
    """

    kind: str
    dataset: str
    generation: int
    rule: Optional[str] = None
    sigma: Optional[str] = None
    value: Optional[float] = None
    previous_sigma: Optional[str] = None
    changed: bool = False
    shards_recounted: int = 0
    shards_reused: int = 0
    full_recount: bool = False
    theta: Optional[str] = None
    k: Optional[int] = None
    previous_k: Optional[int] = None
    sort_sigmas: Tuple[float, ...] = ()
    covered_sorts: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        """A JSON-ready dict with scalar values and a stable key set."""
        return {
            "kind": self.kind,
            "dataset": self.dataset,
            "generation": self.generation,
            "rule": self.rule,
            "sigma": self.sigma,
            "value": self.value,
            "previous_sigma": self.previous_sigma,
            "changed": self.changed,
            "shards_recounted": self.shards_recounted,
            "shards_reused": self.shards_reused,
            "full_recount": self.full_recount,
            "theta": self.theta,
            "k": self.k,
            "previous_k": self.previous_k,
            "sort_sigmas": list(self.sort_sigmas),
            "covered_sorts": self.covered_sorts,
        }


class _RuleState:
    """Per-rule incremental σ state: the shard-aggregate cache."""

    __slots__ = ("label", "rule", "kind", "cache", "last_sigma", "last_k")

    def __init__(self, label: str, rule: Rule):
        self.label = label
        self.rule = rule
        sim = library.similarity()
        if len(rule.variables()) == 1:
            self.kind = "one_var"
        elif rule.antecedent == sim.antecedent and rule.consequent == sim.consequent:
            self.kind = "similarity"
        else:
            self.kind = "full"
        # shard index -> (shard table object, aggregate payload); the
        # shard object is kept so the identity check stays valid (a
        # collected shard's id() could be recycled by a new object).
        self.cache: Dict[int, tuple] = {}
        self.last_sigma: Optional[Fraction] = None
        self.last_k: Optional[int] = None

    def _count_shard(self, shard) -> tuple:
        if self.kind == "one_var":
            from repro.rules.counting import rule_counts

            return rule_counts(self.rule, shard)
        # similarity: sufficient statistics (subjects, per-property counts)
        return (shard.n_subjects, shard.property_count_vector())

    def _merge(self, payloads: List[tuple]) -> Fraction:
        if self.kind == "one_var":
            total = sum(t for t, _f in payloads)
            favourable = sum(f for _t, f in payloads)
        else:
            n_subjects = sum(n for n, _v in payloads)
            merged = None
            for _n, vector in payloads:
                merged = vector.copy() if merged is None else merged + vector
            if merged is None:
                return Fraction(1)
            total = int(merged.sum()) * (n_subjects - 1)
            favourable = int(merged @ (merged - 1))
        if total <= 0:
            return Fraction(1)
        return Fraction(favourable, total)

    def recount(self, sharded: ShardedSignatureTable) -> Tuple[Fraction, int, int, bool]:
        """σ over ``sharded``: ``(sigma, shards_recounted, shards_reused, full)``."""
        if self.kind == "full":
            from repro.rules.counting import sigma_by_signatures_fraction

            return sigma_by_signatures_fraction(self.rule, sharded.table), 0, 0, True
        recounted = reused = 0
        payloads: List[tuple] = []
        cache: Dict[int, tuple] = {}
        for index, shard in enumerate(sharded.shards):
            entry = self.cache.get(index)
            if entry is not None and entry[0] is shard:
                payload = entry[1]
                reused += 1
            else:
                payload = self._count_shard(shard)
                recounted += 1
            cache[index] = (shard, payload)
            payloads.append(payload)
        self.cache = cache
        return self._merge(payloads), recounted, reused, False


class WatchSession:
    """A live watch over one dataset's structuredness under mutation.

    Parameters
    ----------
    dataset:
        The :class:`Dataset` handle to observe.  The watch is pull-based:
        call :meth:`poll` after mutations (or on a timer); a poll that
        finds no new generation is free.
    rules:
        Rule specs to watch (names, rule text or parsed
        :class:`~repro.rules.ast.Rule` objects).  More can be added with
        :meth:`add_rule`.
    theta:
        Optional θ threshold.  When given, each observation also tracks
        the lowest-k refinement per rule (through an internal session)
        and emits a ``drift`` event whenever the smallest k reaching θ
        changes.
    shards:
        Shard count for the incremental σ recounts.  Defaults to the
        dataset's own ``shards`` setting when that is > 1 (sharing the
        handle's cached sharded view), else 16.
    solver / solver_time_limit:
        Forwarded to the internal session used for lowest-k tracking.

    ``stats`` counts polls, observations, events, alerts, shard
    recounts/reuses, full recounts, heartbeats and listener errors, so
    tests (and ``/v1/metrics`` consumers) can prove the incremental path
    is actually taken.
    """

    def __init__(
        self,
        dataset: Dataset,
        rules=("Cov",),
        *,
        theta=None,
        shards: Optional[int] = None,
        solver: object = None,
        solver_time_limit: Optional[float] = None,
    ):
        self.dataset = dataset
        if shards is None:
            shards = dataset.shards if dataset.shards > 1 else 16
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise RequestError(f"shards must be a positive integer, got {shards!r}")
        self.shards = shards
        self.theta: Optional[Fraction] = parse_theta(theta) if theta is not None else None
        self._session = (
            dataset.session(solver=solver, solver_time_limit=solver_time_limit)
            if self.theta is not None
            else None
        )
        self._rules: "Dict[str, _RuleState]" = {}
        self._listeners: List[Callable[[WatchEvent], None]] = []
        self._last_generation: Optional[int] = None
        self.stats: Dict[str, int] = {
            "polls": 0,
            "observations": 0,
            "events": 0,
            "alerts": 0,
            "heartbeats": 0,
            "shard_recounts": 0,
            "shard_reuses": 0,
            "full_recounts": 0,
            "listener_errors": 0,
        }
        self._lock = threading.RLock()
        for spec in rules:
            self.add_rule(spec)

    # ------------------------------------------------------------------ #
    # Registration
    # ------------------------------------------------------------------ #
    def add_rule(self, spec, label: Optional[str] = None) -> str:
        """Register a rule to watch; returns its label (name or rule text)."""
        rule = resolve_rule(spec)
        key = label or (spec if isinstance(spec, str) and "->" not in spec else None)
        key = key or rule.name or rule.to_text()
        with self._lock:
            if key not in self._rules:
                self._rules[key] = _RuleState(key, rule)
        return key

    def subscribe(self, callback: Callable[[WatchEvent], None]) -> None:
        """Add a listener invoked with every emitted event.

        Listener exceptions are isolated (counted in
        ``stats["listener_errors"]``), never propagated into the poll.
        """
        with self._lock:
            self._listeners.append(callback)

    @property
    def rules(self) -> Tuple[str, ...]:
        """The labels of the watched rules, in registration order."""
        with self._lock:
            return tuple(self._rules)

    # ------------------------------------------------------------------ #
    # Observation
    # ------------------------------------------------------------------ #
    def poll(self) -> List[WatchEvent]:
        """Check the dataset generation; observe and emit if it advanced.

        The first poll always observes (the baseline): it primes the
        shard-aggregate caches and emits one ``sigma`` event per rule, so
        consumers see the starting point before any drift.  Subsequent
        polls return ``[]`` until a mutation bumps the generation.
        """
        with self._lock:
            self.stats["polls"] += 1
            # Re-read until generation and sharded view agree: a mutation
            # landing between the two reads must not pin a newer table to
            # an older generation number.
            while True:
                generation = self.dataset.generation
                sharded = self.dataset.sharded_table(self.shards)
                if self.dataset.generation == generation:
                    break
            if self._last_generation is not None and generation == self._last_generation:
                return []
            events = self._observe(generation, sharded)
            self._last_generation = generation
            self._emit(events)
            return events

    def heartbeat(self) -> WatchEvent:
        """A liveness event for streaming transports (not sent to listeners)."""
        with self._lock:
            self.stats["heartbeats"] += 1
            return WatchEvent(
                kind="heartbeat",
                dataset=self.dataset.name,
                generation=self.dataset.generation,
            )

    def _observe(self, generation: int, sharded: ShardedSignatureTable) -> List[WatchEvent]:
        telemetry = current_telemetry()
        self.stats["observations"] += 1
        events: List[WatchEvent] = []
        with telemetry.span("watch.observe"):
            for label, state in self._rules.items():
                sigma, recounted, reused, full = state.recount(sharded)
                self.stats["shard_recounts"] += recounted
                self.stats["shard_reuses"] += reused
                self.stats["full_recounts"] += int(full)
                previous = state.last_sigma
                state.last_sigma = sigma
                events.append(
                    WatchEvent(
                        kind="sigma",
                        dataset=self.dataset.name,
                        generation=generation,
                        rule=label,
                        sigma=_fraction_text(sigma),
                        value=float(sigma),
                        previous_sigma=_fraction_text(previous),
                        changed=previous is None or sigma != previous,
                        shards_recounted=recounted,
                        shards_reused=reused,
                        full_recount=full,
                    )
                )
                if self.theta is not None:
                    events.extend(self._track_lowest_k(label, state, generation, sigma))
        self.stats["events"] += len(events)
        return events

    def _track_lowest_k(
        self, label: str, state: _RuleState, generation: int, sigma: Fraction
    ) -> List[WatchEvent]:
        result = self._session.lowest_k(state.rule, theta=self.theta)
        previous_k, state.last_k = state.last_k, result.k
        if previous_k is None or result.k == previous_k:
            return []
        self.stats["alerts"] += 1
        threshold = float(self.theta)
        sort_sigmas = tuple(sort.sigma for sort in result.sorts)
        return [
            WatchEvent(
                kind="drift",
                dataset=self.dataset.name,
                generation=generation,
                rule=label,
                sigma=_fraction_text(sigma),
                value=float(sigma),
                changed=True,
                theta=_fraction_text(self.theta),
                k=result.k,
                previous_k=previous_k,
                sort_sigmas=sort_sigmas,
                covered_sorts=sum(1 for s in sort_sigmas if s >= threshold),
            )
        ]

    def _emit(self, events: List[WatchEvent]) -> None:
        for event in events:
            for listener in self._listeners:
                try:
                    listener(event)
                except Exception:
                    self.stats["listener_errors"] += 1

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        """Serialisable watch facts: dataset, rules, θ, shards and counters."""
        with self._lock:
            return {
                "dataset": self.dataset.name,
                "generation": self.dataset.generation,
                "rules": list(self._rules),
                "theta": _fraction_text(self.theta),
                "shards": self.shards,
                "stats": dict(self.stats),
            }

    def close(self) -> None:
        """Release the internal lowest-k session's resources, if any."""
        if self._session is not None:
            self._session.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<WatchSession dataset={self.dataset.name!r} rules={list(self._rules)} "
            f"shards={self.shards}>"
        )
