"""Typed result objects returned by the session API.

Each result is a dataclass with a ``to_dict()`` that contains only
JSON-serialisable scalars/lists (``to_json()`` is just ``json.dumps`` of
it), plus rich non-serialised handles (the underlying
:class:`~repro.core.refinement.SortRefinement` and
:class:`~repro.core.search.SearchResult`) for callers that keep computing —
the experiment harness reads per-sort tables straight off
``RefinementResult.refinement``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.refinement import SortRefinement
from repro.core.search import SearchResult

__all__ = [
    "DatasetInfo",
    "EvaluationResult",
    "MutationResult",
    "SortSummary",
    "RefinementResult",
    "SweepResult",
]


class _JsonResult:
    """Shared ``to_json`` plumbing; subclasses implement ``to_dict``."""

    def to_json(self, indent: Optional[int] = None) -> str:
        """The result as a JSON document (see ``to_dict`` for the schema)."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_dict(self) -> Dict[str, object]:  # pragma: no cover - interface
        raise NotImplementedError


@dataclass(frozen=True)
class DatasetInfo(_JsonResult):
    """Identifying statistics of the dataset a result was computed on."""

    name: str
    n_subjects: int
    n_properties: int
    n_signatures: int

    def to_dict(self) -> Dict[str, object]:
        """Scalar-only dict rendering (the wire payload; see to_json)."""
        return {
            "name": self.name,
            "n_subjects": self.n_subjects,
            "n_properties": self.n_properties,
            "n_signatures": self.n_signatures,
        }


@dataclass(frozen=True)
class EvaluationResult(_JsonResult):
    """σ_r of a whole dataset under one rule."""

    dataset: DatasetInfo
    rule: str
    value: float
    #: ``"numerator/denominator"`` when the request asked for the exact value.
    exact: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        """Scalar-only dict rendering (the wire payload; see to_json)."""
        payload: Dict[str, object] = {
            "dataset": self.dataset.to_dict(),
            "rule": self.rule,
            "value": self.value,
        }
        if self.exact is not None:
            payload["exact"] = self.exact
        return payload


@dataclass(frozen=True)
class MutationResult(_JsonResult):
    """The outcome of a :meth:`~repro.api.Dataset.mutate` call.

    Every field is a function of the mutation sequence applied to the
    dataset — not of which cached artifacts happened to be built — so the
    payload is deterministic across inline and pooled execution.  Which
    stages were incrementally patched is visible in ``Dataset.stats``
    (``matrix_patches`` / ``table_patches``).
    """

    dataset: str
    #: The dataset's generation after this mutation (0 = never mutated).
    generation: int
    #: Triples actually added / removed (no-op entries excluded).
    added: int
    removed: int
    #: Number of subjects whose entity changed.
    touched_subjects: int
    #: Graph size after the mutation.
    n_triples: int
    n_subjects: int

    def to_dict(self) -> Dict[str, object]:
        """Scalar-only dict rendering (the wire payload; see to_json)."""
        return {
            "dataset": self.dataset,
            "generation": self.generation,
            "added": self.added,
            "removed": self.removed,
            "touched_subjects": self.touched_subjects,
            "n_triples": self.n_triples,
            "n_subjects": self.n_subjects,
        }


@dataclass(frozen=True)
class SortSummary(_JsonResult):
    """One implicit sort of a refinement, reduced to serialisable facts."""

    index: int
    n_subjects: int
    n_signatures: int
    sigma: float
    properties_used: Tuple[str, ...]

    def to_dict(self) -> Dict[str, object]:
        """Scalar-only dict rendering (the wire payload; see to_json)."""
        return {
            "index": self.index,
            "n_subjects": self.n_subjects,
            "n_signatures": self.n_signatures,
            "sigma": self.sigma,
            "properties_used": list(self.properties_used),
        }


@dataclass(frozen=True)
class RefinementResult(_JsonResult):
    """The outcome of a ``refine`` / ``lowest_k`` session call.

    ``refinement`` and ``search`` are the full in-memory artifacts;
    ``to_dict`` deliberately omits them.  ``cached`` is ``True`` when the
    session answered the call from its result cache without touching the
    solver.
    """

    dataset: DatasetInfo
    rule: str
    kind: str  # "highest_theta" | "lowest_k"
    theta: float
    k: int
    n_probes: int
    n_solver_probes: int
    total_time: float
    sorts: Tuple[SortSummary, ...]
    refinement: SortRefinement = field(compare=False, repr=False)
    search: SearchResult = field(compare=False, repr=False)
    cached: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Scalar-only dict rendering (the wire payload; see to_json)."""
        return {
            "dataset": self.dataset.to_dict(),
            "rule": self.rule,
            "kind": self.kind,
            "theta": self.theta,
            "k": self.k,
            "n_probes": self.n_probes,
            "n_solver_probes": self.n_solver_probes,
            "total_time": self.total_time,
            "cached": self.cached,
            "sorts": [sort.to_dict() for sort in self.sorts],
        }


@dataclass(frozen=True)
class SweepResult(_JsonResult):
    """Highest-θ refinements across a range of ``k`` values."""

    dataset: DatasetInfo
    rule: str
    entries: Tuple[RefinementResult, ...]

    @property
    def thetas(self) -> List[float]:
        """The achieved θ per swept ``k``, in request order."""
        return [entry.theta for entry in self.entries]

    def to_dict(self) -> Dict[str, object]:
        """Scalar-only dict rendering (the wire payload; see to_json)."""
        return {
            "dataset": self.dataset.to_dict(),
            "rule": self.rule,
            "entries": [entry.to_dict() for entry in self.entries],
        }
