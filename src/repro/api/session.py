"""The :class:`StructurednessSession`: a serving-shaped query surface.

A session binds one :class:`~repro.api.dataset.Dataset` to one solver
backend and answers structuredness queries against it:

* ``evaluate(rule)`` — σ_r of the whole dataset;
* ``refine(rule, k=...)`` — the highest-θ refinement for a fixed k;
* ``lowest_k(rule, theta=...)`` — the smallest k reaching a threshold;
* ``sweep(rule, k_values=...)`` — highest-θ refinements across many k.

Everything expensive is cached at the right layer and reused across calls:

* the dataset handle caches the graph → matrix → signature-table chain;
* the session keeps one :class:`SortRefinementEncoder` per rule, so probes
  of later calls reuse the case coefficients and incremental sweep state
  (the per-rule counting views are cached globally by table identity);
* identical requests are answered from a result cache without touching the
  solver at all (disable with ``cache_results=False``).

``stats`` counts requests, solver invocations and cache hits, so tests —
and capacity planning — can see exactly what was reused.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, replace
from typing import Dict, Optional, Tuple

from repro.api.dataset import Dataset
from repro.api.requests import (
    EvaluateRequest,
    LowestKRequest,
    RefineRequest,
    RuleSpec,
    SweepRequest,
)
from repro.api.results import (
    DatasetInfo,
    EvaluationResult,
    MutationResult,
    RefinementResult,
    SortSummary,
    SweepResult,
)
from repro.core.encoder import SortRefinementEncoder
from repro.core.search import SearchResult, highest_theta_refinement, lowest_k_refinement
from repro.exceptions import RequestError
from repro.functions.structuredness import (
    StructurednessFunction,
    best_function_for_rule,
    dependency as dependency_value,
    symmetric_dependency as symmetric_dependency_value,
)
from repro.ilp.registry import DEFAULT_SOLVER, resolve_solver
from repro.parallel import ParallelExecutor, resolve_jobs
from repro.rdf.terms import coerce_uri
from repro.rules import library
from repro.rules.ast import Rule
from repro.rules.parser import parse_rule
from repro.telemetry import current as current_telemetry

__all__ = ["StructurednessSession", "resolve_rule", "named_rules"]

#: Built-in rule names accepted wherever a RuleSpec is expected.
_NAMED_RULES = {
    "Cov": library.coverage,
    "Sim": library.similarity,
}


def named_rules() -> tuple:
    """The rule names the session resolves without parsing ("Cov", "Sim")."""
    return tuple(sorted(_NAMED_RULES))


def resolve_rule(spec: RuleSpec) -> Rule:
    """Normalise a rule spec: a built-in name, rule text, or a parsed Rule."""
    if isinstance(spec, Rule):
        return spec
    if isinstance(spec, str):
        if spec in _NAMED_RULES:
            return _NAMED_RULES[spec]()
        if "->" in spec:
            return parse_rule(spec)
        known = ", ".join(named_rules())
        raise RequestError(
            f"unknown rule {spec!r}: expected one of {known} or rule text "
            "in the concrete syntax (containing '->')"
        )
    raise RequestError(f"rule must be a name, rule text or Rule, got {spec!r}")


class _CountingSolver:
    """Wraps a backend so the session can count actual solver invocations.

    The counter update is lock-guarded: speculative search probes invoke
    ``solve`` from worker threads concurrently, and the count must stay
    honest (it includes speculated solves, so under parallelism it can
    exceed the search trace's ``n_solver_probes``).
    """

    def __init__(self, inner: object, stats: Dict[str, int]):
        self._inner = inner
        self._stats = stats
        self._lock = threading.Lock()
        self.name = getattr(inner, "name", type(inner).__name__)

    def solve(self, model):
        with self._lock:
            self._stats["solver_calls"] += 1
        with current_telemetry().span("ilp.solve"):
            return self._inner.solve(model)


class StructurednessSession:
    """Many structuredness queries over one dataset, with shared state.

    Parameters
    ----------
    dataset:
        The :class:`Dataset` handle all queries run against.
    solver:
        A registered backend name (``"highs"``, ``"branch-and-bound"``; see
        :mod:`repro.ilp.registry`) or a ready-made solver instance.
    solver_time_limit:
        Per-probe time limit forwarded to name-based solver construction.
    solver_options:
        Extra keyword options for name-based solver construction.
    cache_results:
        Answer byte-identical repeat requests from the result cache.
    max_cached_results:
        Bound on the result cache (LRU eviction): cached refinements carry
        the full search artifacts, so a long-lived session sweeping many
        parameter combinations must not grow without limit.
    jobs:
        Parallelism budget for this session's queries (speculative search
        probes, parallel rule counting).  ``None`` defers to the dataset
        handle's ``jobs`` setting and then to the ``REPRO_JOBS``
        environment variable; see :func:`repro.parallel.resolve_jobs`.
        Results are identical for every setting — parallelism only changes
        wall-clock time (and the honest ``solver_calls`` counter, which
        includes speculated solves).
    """

    def __init__(
        self,
        dataset: Dataset,
        solver: object = None,
        solver_time_limit: Optional[float] = None,
        solver_options: Optional[dict] = None,
        cache_results: bool = True,
        max_cached_results: int = 256,
        jobs: Optional[object] = None,
    ):
        self.dataset = dataset
        #: The resolved parallelism budget (session > dataset > REPRO_JOBS).
        self.jobs: int = resolve_jobs(
            jobs if jobs is not None else getattr(dataset, "jobs", None)
        )
        self._executor = ParallelExecutor(self.jobs)
        self.stats: Dict[str, int] = {
            "requests": 0,
            "solver_calls": 0,
            "result_cache_hits": 0,
            "cache_invalidations": 0,
        }
        inner = resolve_solver(
            solver, time_limit=solver_time_limit, **(solver_options or {})
        )
        self.solver = _CountingSolver(inner, self.stats)
        #: How the backend was requested (a registry name, or the instance's
        #: own name) — the service reports it next to the resolved backend.
        self.solver_spec: str = (
            solver if isinstance(solver, str)
            else DEFAULT_SOLVER if solver is None
            else self.solver.name
        )
        self._cache_results = cache_results
        self._max_cached_results = max(1, max_cached_results)
        self._encoders: Dict[str, SortRefinementEncoder] = {}
        self._functions: Dict[str, StructurednessFunction] = {}
        self._results: "OrderedDict[tuple, object]" = OrderedDict()
        # The dataset generation the cached results belong to: every query
        # compares it against the live counter, so a mutation (through this
        # session, a sibling session, or the Dataset handle directly)
        # invalidates exactly the stale entries — never a fresh cache.
        self._seen_generation = getattr(dataset, "generation", 0)
        # Serialises queries: shared encoder/sweep state is not safe under
        # concurrent mutation, and holding the lock for the whole query is
        # what guarantees a thread never repeats another thread's solver
        # work for an identical request (it finds the cached result instead).
        self._lock = threading.RLock()

    def _sync_generation(self) -> None:
        """Drop cached results when the dataset mutated since they were stored."""
        generation = getattr(self.dataset, "generation", 0)
        if generation != self._seen_generation:
            self._seen_generation = generation
            self._results.clear()
            self.stats["cache_invalidations"] += 1

    def _cached_result(self, key: tuple):
        """Fetch a cached result (marking it most recently used) or ``None``."""
        self._sync_generation()
        result = self._results.get(key)
        if result is not None:
            self._results.move_to_end(key)
            self.stats["result_cache_hits"] += 1
        return result

    def _store_result(self, key: tuple, result):
        if not self._cache_results:
            return
        self._results[key] = result
        self._results.move_to_end(key)
        while len(self._results) > self._max_cached_results:
            self._results.popitem(last=False)

    def clear_cache(self) -> None:
        """Drop every cached result (shared encoders and functions remain)."""
        with self._lock:
            self._results.clear()

    def close(self) -> None:
        """Release the session's worker pools (safe to call repeatedly).

        Queries issued after ``close`` lazily recreate the pools, so this
        is a resource release, not a terminal state.
        """
        self._executor.close()

    def describe(self) -> Dict[str, object]:
        """Serialisable session facts: dataset, solver binding and counters.

        ``solver`` is the *resolved* backend's name, ``solver_spec`` how it
        was requested — the service's ``/v1/stats`` reports both so callers
        can see which backend each session actually runs on.
        ``parallelism`` reports the resolved jobs budget and the dataset's
        shard count, so load tests can verify the deployed topology.
        """
        with self._lock:
            return {
                "dataset": self.dataset.name,
                "dataset_generation": getattr(self.dataset, "generation", 0),
                "solver": self.solver.name,
                "solver_spec": self.solver_spec,
                "parallelism": {
                    "jobs": self.jobs,
                    "shards": getattr(self.dataset, "shards", 1),
                },
                "stats": dict(self.stats),
                "cached_results": len(self._results),
            }

    def _executor_for(self, request_jobs: Optional[int]):
        """The executor a query should use: session-owned or a per-request one.

        Returns ``(executor, owned)``; an ``owned`` executor was built for
        this request's ``jobs`` override and must be closed by the caller.
        """
        if request_jobs is None:
            return self._executor, False
        return ParallelExecutor(request_jobs), True

    # ------------------------------------------------------------------ #
    # Shared per-rule state
    # ------------------------------------------------------------------ #
    def _rule_key(self, rule: Rule) -> str:
        return rule.to_text()

    def encoder_for(self, rule: RuleSpec) -> SortRefinementEncoder:
        """The session's shared encoder for ``rule`` (created on first use)."""
        resolved = resolve_rule(rule)
        key = self._rule_key(resolved)
        with self._lock:
            encoder = self._encoders.get(key)
            if encoder is None:
                encoder = self._encoders[key] = SortRefinementEncoder(resolved)
            return encoder

    def function_for(self, rule: RuleSpec) -> StructurednessFunction:
        """The fastest :class:`StructurednessFunction` for ``rule``, cached."""
        resolved = resolve_rule(rule)
        key = self._rule_key(resolved)
        with self._lock:
            function = self._functions.get(key)
            if function is None:
                name = resolved.name if isinstance(rule, Rule) else (
                    rule if isinstance(rule, str) and rule in _NAMED_RULES else resolved.name
                )
                function = self._functions[key] = best_function_for_rule(resolved, name=name)
            return function

    def _request_key(self, request: object, rule: Rule) -> tuple:
        fields = asdict(request)
        fields["rule"] = self._rule_key(rule)
        return (type(request).__name__,) + tuple(sorted(fields.items()))

    def _coerce(self, request, request_type, kwargs):
        if isinstance(request, request_type):
            if kwargs:
                raise RequestError(
                    f"pass either a {request_type.__name__} or keyword arguments, not both"
                )
            return request.validated()
        if request is not None:
            if "rule" in kwargs:
                raise RequestError("rule was given both positionally and as a keyword")
            kwargs = dict(kwargs, rule=request)
        return request_type(**kwargs).validated()

    @property
    def info(self) -> DatasetInfo:
        """The dataset's identifying statistics (forces the table build)."""
        return self.dataset.info

    def _info_from(self, table) -> DatasetInfo:
        """DatasetInfo derived from one table snapshot.

        Queries read ``dataset.table`` exactly once and thread the
        snapshot through search *and* result assembly, so a concurrent
        mutation can never produce a result that mixes two dataset
        generations (searched on one table, described by another).
        """
        return DatasetInfo(
            name=self.dataset.name or table.name,
            n_subjects=table.n_subjects,
            n_properties=table.n_properties,
            n_signatures=table.n_signatures,
        )

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def evaluate(self, request: object = None, /, **kwargs) -> EvaluationResult:
        """σ_r of the whole dataset for one rule (name, text or Rule)."""
        req = self._coerce(request, EvaluateRequest, kwargs)
        rule = resolve_rule(req.rule)
        key = self._request_key(req, rule)
        with self._lock:
            self.stats["requests"] += 1
            cached = self._cached_result(key)
            if cached is not None:
                return cached
            function = self.function_for(req.rule)
            # Shard-fold the table when the dataset asks for it; reading
            # the table out of the sharded view keeps the snapshot the
            # result describes identical to the one that was evaluated.
            if getattr(self.dataset, "shards", 1) > 1:
                target = self.dataset.sharded_table()
                table = target.table
            else:
                target = table = self.dataset.table
            executor, owned = self._executor_for(req.jobs)
            try:
                exact_value = function.evaluate_fraction(target, executor=executor)
            finally:
                if owned:
                    executor.close()
            result = EvaluationResult(
                dataset=self._info_from(table),
                rule=function.name,
                value=float(exact_value),
                exact=f"{exact_value.numerator}/{exact_value.denominator}" if req.exact else None,
            )
            self._store_result(key, result)
            return result

    def dependency(self, prop1: object, prop2: object, symmetric: bool = False) -> EvaluationResult:
        """σDep[p1, p2] (or σSymDep with ``symmetric=True``) of the dataset."""
        p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
        with self._lock:
            self.stats["requests"] += 1
            table = self.dataset.table
            compute = symmetric_dependency_value if symmetric else dependency_value
            label = "SymDep" if symmetric else "Dep"
            return EvaluationResult(
                dataset=self._info_from(table),
                rule=f"{label}[{p1.local_name}, {p2.local_name}]",
                value=float(compute(table, p1, p2)),
            )

    def mutate(self, request: object = None, /, **kwargs) -> MutationResult:
        """Apply a triple delta to the dataset (see :meth:`Dataset.mutate`).

        The mutation invalidates this session's result cache immediately;
        sibling sessions over the same dataset notice the generation bump
        on their next query.  Mutation results are never cached.
        """
        unknown = set(kwargs) - {"add", "remove"}
        if unknown:
            raise RequestError(
                f"mutate accepts 'add' and 'remove' collections of triples, "
                f"got unknown keywords {sorted(unknown)}"
            )
        with self._lock:
            self.stats["requests"] += 1
            # Dataset.mutate owns the request-or-keywords coercion; value
            # errors surface as RequestErrors naming the bad field.
            result = self.dataset.mutate(request, **kwargs)
            self._sync_generation()
            return result

    def refine(self, request: object = None, /, **kwargs) -> RefinementResult:
        """Highest-θ sort refinement for a fixed ``k`` (see :class:`RefineRequest`)."""
        req = self._coerce(request, RefineRequest, kwargs)
        rule = resolve_rule(req.rule)
        key = self._request_key(req, rule)
        with self._lock:
            self.stats["requests"] += 1
            cached = self._cached_result(key)
            if cached is not None:
                return replace(cached, cached=True)
            table = self.dataset.table
            executor, owned = self._executor_for(req.jobs)
            try:
                search = highest_theta_refinement(
                    table,
                    rule,
                    k=req.k,
                    step=req.step,
                    initial_theta=req.initial_theta,
                    solver=self.solver,
                    max_probes=req.max_probes,
                    use_incremental=req.use_incremental,
                    witness_skip=req.witness_skip,
                    encoder=self.encoder_for(req.rule),
                    executor=executor,
                )
            finally:
                if owned:
                    executor.close()
            result = self._refinement_result(req.rule, rule, "highest_theta", search, table)
            self._store_result(key, result)
            return result

    def lowest_k(self, request: object = None, /, **kwargs) -> RefinementResult:
        """Smallest ``k`` reaching threshold θ (see :class:`LowestKRequest`)."""
        req = self._coerce(request, LowestKRequest, kwargs)
        rule = resolve_rule(req.rule)
        key = self._request_key(req, rule)
        with self._lock:
            self.stats["requests"] += 1
            cached = self._cached_result(key)
            if cached is not None:
                return replace(cached, cached=True)
            table = self.dataset.table
            executor, owned = self._executor_for(req.jobs)
            try:
                search = lowest_k_refinement(
                    table,
                    rule,
                    theta=req.theta,
                    direction=req.direction,
                    k_min=req.k_min,
                    k_max=req.k_max,
                    solver=self.solver,
                    use_incremental=req.use_incremental,
                    witness_skip=req.witness_skip,
                    encoder=self.encoder_for(req.rule),
                    executor=executor,
                )
            finally:
                if owned:
                    executor.close()
            result = self._refinement_result(req.rule, rule, "lowest_k", search, table)
            self._store_result(key, result)
            return result

    def sweep(self, request: object = None, /, **kwargs) -> SweepResult:
        """Highest-θ refinements for every ``k`` in ``k_values``.

        All sweep entries run through the session's shared per-rule encoder,
        so consecutive ``k`` values re-encode only the changed sort blocks.
        """
        req = self._coerce(request, SweepRequest, kwargs)
        rule = resolve_rule(req.rule)
        key = self._request_key(req, rule)
        with self._lock:
            self.stats["requests"] += 1
            cached = self._cached_result(key)
            if cached is not None:
                return replace(
                    cached,
                    entries=tuple(replace(entry, cached=True) for entry in cached.entries),
                )
            # One table snapshot for the whole sweep: every k entry (and
            # the result's DatasetInfo) describes the same generation even
            # if a sibling session mutates the dataset mid-sweep.
            table = self.dataset.table
            entries = []
            executor, owned = self._executor_for(req.jobs)
            try:
                for k in req.k_values:
                    search = highest_theta_refinement(
                        table,
                        rule,
                        k=k,
                        step=req.step,
                        solver=self.solver,
                        max_probes=req.max_probes,
                        use_incremental=req.use_incremental,
                        witness_skip=req.witness_skip,
                        encoder=self.encoder_for(req.rule),
                        executor=executor,
                    )
                    entries.append(
                        self._refinement_result(req.rule, rule, "highest_theta", search, table)
                    )
            finally:
                if owned:
                    executor.close()
            result = SweepResult(
                dataset=self._info_from(table), rule=entries[0].rule, entries=tuple(entries)
            )
            self._store_result(key, result)
            return result

    # ------------------------------------------------------------------ #
    # Result assembly
    # ------------------------------------------------------------------ #
    def _refinement_result(
        self, spec: RuleSpec, rule: Rule, kind: str, search: SearchResult, table
    ) -> RefinementResult:
        function = self.function_for(spec)
        sorts: Tuple[SortSummary, ...] = tuple(
            SortSummary(
                index=sort.index,
                n_subjects=sort.n_subjects,
                n_signatures=sort.n_signatures,
                sigma=sort.structuredness(function),
                properties_used=tuple(str(p) for p in sort.used_properties),
            )
            for sort in search.refinement.sorts
        )
        return RefinementResult(
            dataset=self._info_from(table),
            rule=function.name,
            kind=kind,
            theta=search.theta,
            k=search.k,
            n_probes=search.n_probes,
            n_solver_probes=search.n_solver_probes,
            total_time=search.total_time,
            sorts=sorts,
            refinement=search.refinement,
            search=search,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<StructurednessSession dataset={self.dataset.name!r} "
            f"solver={self.solver.name!r} stats={self.stats}>"
        )
