"""The :class:`Dataset` handle: one long-lived object per dataset.

The paper's workload is many queries over one dataset — evaluate several
structuredness rules, then sweep k and θ refinements over the same
signature table.  ``Dataset`` owns the cached artifact chain

    RDF graph  →  property matrix M(D)  →  signature table  →  (per-rule
    counting views and incremental sweep state, via the caches keyed on
    the table's identity)

so every frontend (CLI, experiments, examples, a future service) amortises
the expensive builds instead of re-deriving them per call.  Each stage is
built at most once; ``stats`` counts the builds so tests can prove it.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.snapshots import SnapshotInfo

from repro.exceptions import DatasetError, RequestError
from repro.api.requests import MutationRequest
from repro.api.results import DatasetInfo, MutationResult
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.sharded import ShardedSignatureTable
from repro.matrix.signatures import SignatureTable
from repro.rdf.graph import RDFGraph
from repro.rdf.ntriples import load_ntriples, parse_ntriples
from repro.telemetry import Telemetry, current as current_telemetry

__all__ = [
    "Dataset",
    "builtin_dataset_names",
    "register_builtin_dataset",
]

#: name -> factory returning a SignatureTable (or an RDFGraph); factories
#: take the generator's keyword parameters (n_subjects, seed, ...).
_BUILTIN_DATASETS: Dict[str, Callable[..., object]] = {}


def _mmap_backed(array: object) -> bool:
    """Whether an array's bytes live in a memory-mapped file (walks view bases)."""
    import numpy as np

    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        if array.base is None:
            return False
        array = array.base
    return False


def register_builtin_dataset(name: str, factory: Callable[..., object]) -> None:
    """Register a named dataset factory for :meth:`Dataset.builtin`."""
    _BUILTIN_DATASETS[name] = factory


def builtin_dataset_names() -> tuple:
    """The registered built-in dataset names, sorted."""
    return tuple(sorted(_BUILTIN_DATASETS))


def _register_default_builtins() -> None:
    from repro.datasets import (
        dbpedia_persons_table,
        mixed_drug_companies_and_sultans,
        wordnet_nouns_table,
    )

    register_builtin_dataset("dbpedia-persons", dbpedia_persons_table)
    register_builtin_dataset("wordnet-nouns", wordnet_nouns_table)
    register_builtin_dataset(
        "mixed-drug-sultans",
        lambda **params: mixed_drug_companies_and_sultans(**params).table,
    )


class Dataset:
    """A handle over one dataset's cached graph/matrix/signature-table chain.

    Construct through the classmethods (``from_ntriples``, ``builtin``,
    ``from_graph``, ``from_matrix``, ``from_table``); the positional
    constructor is internal.  Accessing ``graph`` / ``matrix`` / ``table``
    builds the corresponding stage once and caches it for the lifetime of
    the handle.
    """

    def __init__(
        self,
        name: str = "",
        *,
        graph: Optional[RDFGraph] = None,
        matrix: Optional[PropertyMatrix] = None,
        table: Optional[SignatureTable] = None,
        graph_factory: Optional[Callable[[], RDFGraph]] = None,
        artifact_factory: Optional[Callable[[], object]] = None,
        jobs: Optional[object] = None,
        shards: int = 1,
        telemetry: Optional[Telemetry] = None,
    ):
        if (
            graph is None
            and matrix is None
            and table is None
            and graph_factory is None
            and artifact_factory is None
        ):
            raise DatasetError("a Dataset needs a graph, matrix, table or a factory for one")
        if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
            raise DatasetError(f"shards must be a positive integer, got {shards!r}")
        self._name = name
        self._graph = graph
        self._matrix = matrix
        self._table = table
        #: Default parallelism for sessions over this dataset (``None``
        #: defers to ``REPRO_JOBS``; see :func:`repro.parallel.resolve_jobs`).
        #: Plain attributes — adjust after construction if needed.
        self.jobs = jobs
        #: How many shards :meth:`sharded_table` folds the signatures into.
        self.shards = shards
        #: Telemetry spine the handle's builds/patches record into.  ``None``
        #: defers to the process-wide :func:`repro.telemetry.current` (a
        #: no-op unless ``REPRO_TRACE`` is set); pass an enabled
        #: :class:`~repro.telemetry.Telemetry` to scope collection to this
        #: handle.  A plain attribute — adjust after construction if needed.
        self.telemetry = telemetry
        self._sharded: Optional[ShardedSignatureTable] = None
        self._graph_factory = graph_factory
        # A deferred generator producing either a SignatureTable or an
        # RDFGraph (Dataset.builtin); run at most once, on first access.
        self._artifact_factory = artifact_factory
        #: How many times each stage of the chain was actually built, how
        #: many mutations were applied and how often the matrix/table were
        #: incrementally patched instead of rebuilt.
        self.stats: Dict[str, int] = {
            "graph_builds": 0,
            "matrix_builds": 0,
            "table_builds": 0,
            "mutations": 0,
            "matrix_patches": 0,
            "table_patches": 0,
            "patch_failures": 0,
            # Which stages came from a persisted snapshot (set by load());
            # 1 means the stage was restored from disk, not rebuilt.
            "graph_from_snapshot": 0,
            "matrix_from_snapshot": 0,
            "table_from_snapshot": 0,
        }
        # Set by load(): {"path": ..., "format_version": ...} provenance so
        # registries and /v1/datasets can report snapshot-backed datasets.
        self._snapshot_provenance: Optional[Dict[str, object]] = None
        # Bumped by every mutation that changes the graph; sessions compare
        # it against the generation they last served from to invalidate
        # exactly their stale result caches.
        self._generation = 0
        # Guards the lazy build chain: concurrent accessors (a threaded
        # service serving one dataset to many sessions) must never trigger
        # duplicate graph/matrix/table builds.  Reentrant because the
        # stages call each other (table → matrix → graph).
        self._lock = threading.RLock()

    def _tel(self) -> Telemetry:
        """The spine this handle records into (its own, or the process-wide one)."""
        return self.telemetry if self.telemetry is not None else current_telemetry()

    def _realise_artifact(self) -> None:
        """Run the deferred artifact factory (once) and slot its product in."""
        if self._artifact_factory is None:
            return
        factory, self._artifact_factory = self._artifact_factory, None
        with self._tel().span("dataset.artifact_build"):
            artifact = factory()
        if isinstance(artifact, SignatureTable):
            self._table = artifact
            self.stats["table_builds"] += 1
        elif isinstance(artifact, RDFGraph):
            self._graph = artifact
            self.stats["graph_builds"] += 1
        else:
            raise DatasetError(
                f"the factory for dataset {self._name!r} must return a SignatureTable "
                f"or RDFGraph, got {type(artifact).__name__}"
            )
        # Prefer the artifact's own display name (e.g. the synthetic
        # generators' descriptive names) over the registry key.
        self._name = getattr(artifact, "name", "") or self._name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_ntriples(
        cls, path: object, name: str = "", sort: Optional[object] = None,
        jobs: Optional[object] = None, shards: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> "Dataset":
        """A dataset read lazily from an N-Triples file.

        ``sort`` optionally restricts the graph to the subjects declared of
        that ``rdf:type`` (like the CLI's ``--sort``).  ``jobs``,
        ``shards`` and ``telemetry`` set the handle's plain attributes
        (see :attr:`jobs` / :attr:`shards` / :attr:`telemetry`); every
        graph-shaped constructor accepts them.
        """

        def build() -> RDFGraph:
            graph = load_ntriples(path, name=name or str(path))
            return graph.sort_subgraph(sort) if sort else graph

        return cls(
            name=name or str(path), graph_factory=build, jobs=jobs,
            shards=shards, telemetry=telemetry,
        )

    @classmethod
    def from_ntriples_text(
        cls, text: str, name: str = "", sort: Optional[object] = None,
        jobs: Optional[object] = None, shards: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> "Dataset":
        """A dataset parsed lazily from N-Triples source text."""

        def build() -> RDFGraph:
            graph = parse_ntriples(text, name=name)
            return graph.sort_subgraph(sort) if sort else graph

        return cls(
            name=name, graph_factory=build, jobs=jobs, shards=shards,
            telemetry=telemetry,
        )

    @classmethod
    def build_out_of_core(
        cls,
        source: object,
        snapshot_path: object,
        *,
        name: str = "",
        sort: Optional[object] = None,
        chunk_triples: Optional[int] = None,
        partitions: Optional[int] = None,
        overwrite: bool = False,
        mmap: bool = True,
        jobs: Optional[object] = None,
        shards: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> "Dataset":
        """Build a dataset from N-Triples on disk without holding it in RAM.

        The out-of-core counterpart of ``from_ntriples(...)`` + ``save(...)``:
        the file at ``source`` is stream-parsed in ``chunk_triples``-sized
        chunks and assembled into a snapshot at ``snapshot_path`` in
        ``partitions`` subject-partitioned merge passes (see
        :func:`repro.storage.outofcore.build_out_of_core` for the memory
        model), then reopened with :meth:`load` over memory-mapped
        segments — so neither the build nor the returned handle ever
        materialises the full triple set in memory.  Every artifact is
        bit-identical to the in-memory path; the knobs default to the
        ``REPRO_OOC_CHUNK`` / ``REPRO_OOC_PARTITIONS`` environment
        variables.  ``sort``, ``jobs``, ``shards`` and ``telemetry`` mean
        what they mean on :meth:`from_ntriples`.
        """
        from repro.storage.outofcore import build_out_of_core

        build_out_of_core(
            source,
            snapshot_path,
            name=name,
            sort=sort,
            chunk_triples=chunk_triples,
            partitions=partitions,
            overwrite=overwrite,
        )
        dataset = cls.load(snapshot_path, name=name, mmap=mmap, verify=False)
        dataset.jobs = jobs
        dataset.shards = shards
        dataset.telemetry = telemetry
        return dataset

    @classmethod
    def builtin(cls, name: str, **params) -> "Dataset":
        """One of the built-in synthetic datasets, by name.

        See :func:`builtin_dataset_names`; ``params`` are forwarded to the
        generator (``n_subjects``, ``seed``, ``max_signatures``, ...).
        Generation is deferred like every other stage of the chain: the
        factory runs on first ``graph``/``matrix``/``table`` access and is
        counted in ``stats``.
        """
        try:
            factory = _BUILTIN_DATASETS[name]
        except KeyError:
            known = ", ".join(builtin_dataset_names()) or "(none)"
            raise DatasetError(f"unknown built-in dataset {name!r}; available: {known}") from None
        return cls(name=name, artifact_factory=lambda: factory(**params))

    @classmethod
    def from_graph(
        cls, graph: RDFGraph, name: str = "", sort: Optional[object] = None,
        jobs: Optional[object] = None, shards: int = 1,
        telemetry: Optional[Telemetry] = None,
    ) -> "Dataset":
        """Wrap an existing :class:`RDFGraph` (optionally one rdf:type sort of it).

        The handle takes *ownership* for mutation purposes: :meth:`mutate`
        changes the wrapped graph in place and bumps only this handle's
        generation.  Do not wrap one graph object in several handles (or
        keep mutating it directly) — sibling handles cannot see the
        mutation and would serve stale cached views; give each handle its
        own ``graph.copy()`` instead.

        With ``sort``, the restricted view is snapshotted *now* into an
        independent graph (the same timing-independent semantics as
        :meth:`with_sort`): later mutations of ``graph`` do not leak in.
        """
        if sort:
            snapshot = RDFGraph(
                list(graph.sort_subgraph(sort)), name=name or graph.name
            )
            return cls(
                name=snapshot.name, graph=snapshot, jobs=jobs, shards=shards,
                telemetry=telemetry,
            )
        return cls(
            name=name or graph.name, graph=graph, jobs=jobs, shards=shards,
            telemetry=telemetry,
        )

    @classmethod
    def from_matrix(
        cls, matrix: PropertyMatrix, name: str = "",
        jobs: Optional[object] = None, shards: int = 1,
    ) -> "Dataset":
        """Wrap an existing property matrix M(D)."""
        return cls(name=name or matrix.name, matrix=matrix, jobs=jobs, shards=shards)

    @classmethod
    def load(
        cls, path: object, *, name: str = "", mmap: bool = True, verify: bool = True
    ) -> "Dataset":
        """Reopen a dataset persisted with :meth:`save` — a zero-rebuild warm start.

        The snapshot's matrix and signature table are restored immediately
        (memory-mapped read-only when ``mmap`` is true, so the open is
        I/O-bound); the RDF graph, whose hash indexes are Python dicts and
        therefore genuinely expensive to materialise, is restored lazily on
        first :attr:`graph` access — a handle that only answers
        matrix/table queries never pays for it.  ``stats`` reports which
        stages came from disk (``*_from_snapshot``), the persisted
        mutation generation is carried over so ``mutate`` + re-:meth:`save`
        round-trips, and ``name`` overrides the manifest's display name.
        See DESIGN.md, "Persistence & snapshots".

        Raises :class:`~repro.exceptions.SnapshotError` for anything other
        than a complete, checksum-clean snapshot.
        """
        from repro.storage.snapshots import open_snapshot

        with current_telemetry().span("dataset.snapshot_load"):
            snapshot = open_snapshot(path, mmap=mmap, verify=verify)
        matrix = snapshot.load_matrix() if snapshot.has_stage("matrix") else None
        table = snapshot.load_table() if snapshot.has_stage("table") else None
        graph_factory = snapshot.load_graph if snapshot.has_stage("graph") else None
        dataset = cls(
            name=name or snapshot.info.name,
            matrix=matrix,
            table=table,
            graph_factory=graph_factory,
        )
        dataset._generation = snapshot.info.generation
        for stage in snapshot.info.stages:
            dataset.stats[f"{stage}_from_snapshot"] = 1
        dataset._snapshot_provenance = {
            "path": str(snapshot.path),
            "format_version": snapshot.info.format_version,
        }
        return dataset

    def save(
        self, path: object, *, name: Optional[str] = None, overwrite: bool = False
    ) -> "SnapshotInfo":
        """Persist the whole artifact chain as a snapshot directory at ``path``.

        Whatever stages this handle can produce are built (once, through
        the normal cached chain) and written: graph-born datasets persist
        graph + matrix + table, matrix-born ones matrix + table, and
        table-born ones (e.g. the synthetic builtins) just the table.  The
        handle's mutation generation is recorded so a loaded copy
        continues the same version sequence, and ``name`` overrides the
        display name written to the manifest.  Returns the
        :class:`~repro.storage.snapshots.SnapshotInfo` of the written
        snapshot; see :meth:`load` for the warm-start path.
        """
        from repro.storage.snapshots import (
            check_snapshot_target,
            encode_chain,
            write_encoded_snapshot,
        )

        # Refuse an unwritable target *before* building the chain (the
        # write re-checks, so a race still fails safely — just later).
        check_snapshot_target(path, overwrite=overwrite)
        # Encode under the lock (the graph and its dictionary mutate in
        # place, so the segment arrays must be derived from a quiescent
        # chain), but run the expensive part — segment writes and SHA-256
        # hashing — with the lock released, so concurrent queries on this
        # dataset are not stalled behind disk I/O.
        with self._lock:
            table = self.table
            graph = None
            if self._graph is not None or self._graph_factory is not None:
                graph = self.graph
            matrix = self.matrix if graph is not None else self._matrix
            encoded = encode_chain(graph=graph, matrix=matrix, table=table)
            snapshot_name = name or self._name
            generation = self._generation
        with self._tel().span("dataset.snapshot_save"):
            return write_encoded_snapshot(
                path,
                encoded,
                name=snapshot_name,
                generation=generation,
                overwrite=overwrite,
            )

    def residency(self) -> Dict[str, Dict[str, int]]:
        """Which chain stages are disk-resident (mmap-backed) vs in RAM, right now.

        ``stats``' ``*_from_snapshot`` markers say where a stage *came
        from*; this reports where its bytes *live*: per stage, ``built``
        (0/1), ``mmap_segments`` (how many of its backing arrays are views
        over memory-mapped snapshot segments), ``mapped_bytes`` (their
        payload size — paged in on demand, evictable by the OS) and
        ``resident_bytes`` (payload of the arrays that are ordinary heap
        memory).  After :meth:`load` the matrix's cell array stays mapped
        while the signature table is rebuilt fully resident, and a
        mutation patches the matrix into a fresh heap array — the report
        reflects both truthfully.  The graph stage has no array backing
        (hash indexes are Python dicts); its ``resident_bytes`` is the
        12-bytes-per-triple ID payload, a deliberate lower bound.

        Does not force any build: unbuilt stages report ``built: 0`` and
        zero bytes.
        """
        with self._lock:
            report: Dict[str, Dict[str, int]] = {}

            def account(stage: str, arrays) -> None:
                mmap_segments = 0
                mapped = resident = 0
                for array in arrays:
                    if _mmap_backed(array):
                        mmap_segments += 1
                        mapped += int(array.nbytes)
                    else:
                        resident += int(array.nbytes)
                report[stage] = {
                    "built": 1,
                    "mmap_segments": mmap_segments,
                    "mapped_bytes": mapped,
                    "resident_bytes": resident,
                }

            unbuilt = {"built": 0, "mmap_segments": 0, "mapped_bytes": 0, "resident_bytes": 0}
            if self._graph is not None:
                report["graph"] = dict(unbuilt, built=1, resident_bytes=12 * len(self._graph))
            else:
                report["graph"] = dict(unbuilt)
            if self._matrix is not None:
                account("matrix", [self._matrix.data])
            else:
                report["matrix"] = dict(unbuilt)
            if self._table is not None:
                # The table's backing arrays, not the copying accessors —
                # residency must inspect the arrays the stage actually holds.
                account("table", [self._table._count_vec, self._table._support_bool])
            else:
                report["table"] = dict(unbuilt)
            return report

    @property
    def snapshot_provenance(self) -> Optional[Dict[str, object]]:
        """Where this handle was loaded from (path + format version), or ``None``.

        Only set by :meth:`load`; registries surface it so ``/v1/datasets``
        shows which datasets are snapshot-backed.
        """
        return dict(self._snapshot_provenance) if self._snapshot_provenance else None

    @classmethod
    def from_table(
        cls, table: SignatureTable, name: str = "",
        jobs: Optional[object] = None, shards: int = 1,
    ) -> "Dataset":
        """Wrap an existing signature table."""
        return cls(name=name or table.name, table=table, jobs=jobs, shards=shards)

    # ------------------------------------------------------------------ #
    # The cached artifact chain
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """The dataset's human-readable display name."""
        return self._name

    @property
    def graph(self) -> RDFGraph:
        """The RDF graph (built once; unavailable for table/matrix-born datasets)."""
        with self._lock:
            if self._graph is None:
                self._realise_artifact()
            if self._graph is None:
                if self._graph_factory is None:
                    raise DatasetError(
                        f"dataset {self._name!r} was constructed without an RDF graph; "
                        "only its matrix/signature-table views are available"
                    )
                with self._tel().span("dataset.graph_build"):
                    self._graph = self._graph_factory()
                self.stats["graph_builds"] += 1
            return self._graph

    @property
    def matrix(self) -> PropertyMatrix:
        """The property-structure view M(D) (built once from the graph)."""
        with self._lock:
            if self._matrix is None:
                if self._table is None:
                    self._realise_artifact()
                if self._table is not None and self._graph is None and self._graph_factory is None:
                    raise DatasetError(
                        f"dataset {self._name!r} was constructed from a signature table; "
                        "the per-subject property matrix is not available"
                    )
                graph = self.graph
                with self._tel().span("dataset.matrix_build"):
                    self._matrix = PropertyMatrix.from_graph(graph)
                self.stats["matrix_builds"] += 1
            return self._matrix

    @property
    def table(self) -> SignatureTable:
        """The signature table (built once from the matrix or graph)."""
        with self._lock:
            if self._table is None:
                self._realise_artifact()
            if self._table is None:
                matrix = self._matrix if self._matrix is not None else self.matrix
                with self._tel().span("dataset.table_build"):
                    self._table = SignatureTable.from_matrix(matrix)
                self.stats["table_builds"] += 1
            return self._table

    def sharded_table(self, shards: Optional[int] = None) -> ShardedSignatureTable:
        """The signature table folded into ``shards`` content-hash shards.

        Built once per (table, shard count) and cached; mutations refresh
        the cached view incrementally (only the dirty shards are rebuilt —
        see :meth:`ShardedSignatureTable.refreshed`).  ``shards`` defaults
        to the handle's :attr:`shards` setting.
        """
        with self._lock:
            n_shards = self.shards if shards is None else shards
            table = self.table
            if (
                self._sharded is None
                or self._sharded.table is not table
                or self._sharded.n_shards != n_shards
            ):
                self._sharded = ShardedSignatureTable(table, n_shards)
            return self._sharded

    @property
    def info(self) -> DatasetInfo:
        """Serialisable identifying statistics (forces the table build)."""
        table = self.table
        return DatasetInfo(
            name=self._name or table.name,
            n_subjects=table.n_subjects,
            n_properties=table.n_properties,
            n_signatures=table.n_signatures,
        )

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    @property
    def generation(self) -> int:
        """How many graph-changing mutations this dataset has seen."""
        with self._lock:
            return self._generation

    def mutate(self, request: object = None, /, *, add=(), remove=()) -> MutationResult:
        """Apply a triple delta to the graph and maintain the cached chain.

        Accepts a :class:`~repro.api.requests.MutationRequest` or
        ``add=`` / ``remove=`` keyword collections of triples.  Removals
        run before insertions.  Whatever downstream stages are already
        built are *incrementally patched* — ``PropertyMatrix.apply_delta``
        and ``SignatureTable.apply_delta`` re-derive only the touched
        subjects, bit-identical to a from-scratch rebuild — and the
        generation counter tells owning sessions to drop their result
        caches.  Per-table derived views (counting tables, encoder state)
        are keyed on the table's *identity* and the patched table is a new
        object, so they can never serve stale data.

        Change detection is per applied triple, deliberately conservative:
        a request that removes and re-inserts the same triple nets to no
        graph change but still counts as a mutation (generation bumps,
        caches invalidate) — over-invalidation is always safe, staleness
        never is.

        Raises :class:`~repro.exceptions.DatasetError` for datasets built
        directly from a matrix or signature table: mutation needs the
        graph stage.
        """
        if request is None:
            # validated() rejects non-collection values with a message
            # naming the field, so no pre-coercion here.
            req = MutationRequest(add=add, remove=remove).validated()
        elif isinstance(request, MutationRequest):
            if add or remove:
                raise RequestError(
                    "pass either a MutationRequest or add=/remove= keywords, not both"
                )
            req = request.validated()
        else:
            raise RequestError(
                f"mutate needs a MutationRequest or add=/remove= keywords, "
                f"got {request!r}"
            )
        with self._lock, self._tel().span("dataset.mutate"):
            telemetry = self._tel()
            graph = self.graph  # DatasetError for matrix/table-born datasets
            # validated() fully coerced every term up front, so applying
            # the delta cannot fail half-way and the mutation is atomic.
            delta = graph.remove_triples(req.remove).merge(graph.add_triples(req.add))
            if not delta.is_empty:
                self._generation += 1
                self.stats["mutations"] += 1
                try:
                    matrix_patched = table_patched = False
                    if self._matrix is not None:
                        with telemetry.span("dataset.matrix_patch"):
                            self._matrix = self._matrix.apply_delta(graph, delta)
                        matrix_patched = True
                    if self._table is not None:
                        if self._matrix is not None and self._table.has_members:
                            with telemetry.span("dataset.table_patch"):
                                self._table = self._table.apply_delta(self._matrix, delta)
                            table_patched = True
                        else:
                            # No per-subject provenance to patch from: drop
                            # the stage and let the next access rebuild it.
                            self._table = None
                    if self._sharded is not None:
                        if table_patched:
                            # Incremental re-shard: only the shards whose
                            # signatures the delta touched are rebuilt.
                            with telemetry.span("dataset.shard_refresh"):
                                self._sharded = self._sharded.refreshed(
                                    self._table, subjects=delta.subjects
                                )
                        else:
                            self._sharded = None
                    # Counted only once the whole chain patched: a patch
                    # that was discarded by the failure path below must not
                    # inflate the zero-redundant-build accounting.
                    self.stats["matrix_patches"] += int(matrix_patched)
                    self.stats["table_patches"] += int(table_patched)
                except Exception:
                    # The graph already changed, so a validated mutation
                    # must still *succeed* — otherwise distributed callers
                    # (pool workers replaying a mutation log) would treat
                    # an applied mutation as failed and diverge.  Degrade:
                    # drop the chain, let the next access rebuild from the
                    # mutated graph, and count the event.
                    self._matrix = None
                    self._table = None
                    self._sharded = None
                    self.stats["patch_failures"] += 1
                    telemetry.incr("dataset.patch_failures")
            return MutationResult(
                dataset=self._name,
                generation=self._generation,
                added=delta.added,
                removed=delta.removed,
                touched_subjects=len(delta.subjects),
                n_triples=len(graph),
                n_subjects=graph.n_subjects,
            )

    # ------------------------------------------------------------------ #
    # Derived datasets and sessions
    # ------------------------------------------------------------------ #
    def with_sort(self, sort: object, name: str = "") -> "Dataset":
        """A new handle restricted to the subjects of one explicit sort.

        The derived handle is a *snapshot*: the subgraph is extracted
        immediately (under this dataset's lock, so a concurrent mutation
        cannot tear it) into an independent graph with its own term
        dictionary.  Later mutations of either handle never propagate to
        the other — the same snapshot semantics :meth:`folded` has.
        """
        with self._lock:
            subgraph = self.graph.sort_subgraph(sort)
        snapshot = RDFGraph(list(subgraph), name=name or f"{self._name} [{sort}]")
        return Dataset(name=snapshot.name, graph=snapshot)

    def folded(self, max_signatures: int, name: str = "") -> "Dataset":
        """A new handle whose signature tail is folded to ``max_signatures``.

        Uses :func:`repro.datasets.cap_signatures`; the experiments fold the
        σSim tables this way to keep the quadratic encoding tractable.
        """
        from repro.datasets import cap_signatures

        table = cap_signatures(self.table, max_signatures)
        return Dataset(name=name or f"{self._name} (<= {max_signatures} signatures)", table=table)

    def session(self, **options) -> "StructurednessSession":
        """Open a :class:`~repro.api.session.StructurednessSession` over this dataset."""
        from repro.api.session import StructurednessSession

        return StructurednessSession(self, **options)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stages = [
            stage
            for stage, value in (
                ("graph", self._graph),
                ("matrix", self._matrix),
                ("table", self._table),
            )
            if value is not None
        ]
        return f"<Dataset {self._name!r} cached={stages}>"


_register_default_builtins()
