"""Typed request objects for the session API.

Every :class:`~repro.api.session.StructurednessSession` method accepts
either loose keyword arguments or one of these frozen dataclasses; the
dataclass is the canonical form — keyword arguments are normalised into it
and validated in one place.  Because requests are hashable value objects,
the session also uses them as keys of its result cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Optional, Tuple, Union

from repro.exceptions import RDFError, RequestError
from repro.rdf.terms import Literal, Triple, URI
from repro.rules.ast import Rule

__all__ = [
    "RuleSpec",
    "ThetaSpec",
    "parse_theta",
    "parse_wire_term",
    "EvaluateRequest",
    "RefineRequest",
    "LowestKRequest",
    "SweepRequest",
    "MutationRequest",
]

#: What session methods accept as a rule: a built-in name ("Cov", "Sim"),
#: rule text in the concrete syntax, or a parsed :class:`Rule`.
RuleSpec = Union[str, Rule]

#: What session methods accept as a threshold: a float, an exact fraction,
#: or a string such as ``"0.9"`` or ``"3/4"``.
ThetaSpec = Union[float, Fraction, str]


def parse_theta(value: ThetaSpec) -> Fraction:
    """Parse a threshold and check it lies in ``[0, 1]``.

    Accepts floats, :class:`~fractions.Fraction` instances and strings in
    either decimal (``"0.9"``) or fraction (``"3/4"``) notation.  Raises
    :class:`~repro.exceptions.RequestError` with a readable message on
    malformed input or a value outside ``[0, 1]``.
    """
    try:
        if isinstance(value, bool):
            raise TypeError("bool")
        if isinstance(value, str):
            text = value.strip()
            # Fraction("3/-4") already fails to parse, but reject any
            # signed denominator explicitly with a readable message.
            if "/" in text and text.split("/", 1)[1].strip().startswith(("-", "+")):
                raise RequestError(
                    f"theta fractions must have an unsigned denominator, got {value!r}"
                )
            theta = Fraction(text)
        elif isinstance(value, (int, Fraction)):
            theta = Fraction(value)
        elif isinstance(value, float):
            if not math.isfinite(value):
                raise RequestError(f"theta must be a finite number, got {value!r}")
            # Same float semantics as repro.core.encoder.to_fraction: 0.9
            # means 9/10, not its binary approximation.
            theta = Fraction(value).limit_denominator(10_000)
        else:
            raise TypeError(type(value).__name__)
    except RequestError:
        raise
    except (ValueError, ZeroDivisionError, TypeError, OverflowError):
        raise RequestError(
            f"theta must be a number or a fraction string such as '0.9' or '3/4', got {value!r}"
        ) from None
    if not Fraction(0) <= theta <= Fraction(1):
        raise RequestError(f"theta must lie in [0, 1], got {value!r} = {float(theta):g}")
    return theta


def _check_positive_int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise RequestError(f"{what} must be a positive integer, got {value!r}")
    return value


def _check_jobs(value: object) -> Optional[int]:
    """Validate a per-request ``jobs`` override (``None`` = session default)."""
    if value is None:
        return None
    return _check_positive_int(value, "jobs")


def parse_wire_term(value: object, allow_literal: bool = True) -> object:
    """Decode one triple term from its wire spelling.

    ``URI``/``Literal`` instances pass through.  Strings use an
    N-Triples-flavoured convention: ``"..."`` (quoted) becomes a
    :class:`Literal` (with ``\\n``/``\\"``-style escapes undone, the
    inverse of ``Literal.n3``), ``<...>`` an explicit :class:`URI`, and
    any other string a URI — matching how the rest of the library coerces
    plain strings.  Non-string scalars become literals.
    """
    if isinstance(value, (URI, Literal)):
        if isinstance(value, Literal) and not allow_literal:
            raise RequestError(f"expected a URI, got the literal {value!r}")
        return value
    if isinstance(value, str):
        if len(value) >= 2 and value[0] == '"' and value[-1] == '"':
            if not allow_literal:
                raise RequestError(f"expected a URI, got the literal {value!r}")
            from repro.rdf.ntriples import unescape_literal

            try:
                return Literal(unescape_literal(value[1:-1]))
            except ValueError as error:
                raise RequestError(str(error)) from None
        if len(value) >= 2 and value[0] == "<" and value[-1] == ">":
            value = value[1:-1]
        try:
            return URI(value)
        except RDFError as error:
            raise RequestError(str(error)) from None
    if (
        allow_literal
        and isinstance(value, (int, float))
        and not isinstance(value, bool)
    ):
        # Numeric scalars become literals of their decimal form; null and
        # booleans are client mistakes, not literals spelled 'None'/'True'.
        return Literal(value)
    raise RequestError(f"cannot use {value!r} as a triple term")


def _coerce_triples(entries: object, what: str) -> Tuple[Triple, ...]:
    """Normalise a wire/keyword triple collection into ``Triple`` objects."""
    if isinstance(entries, (str, bytes)) or not isinstance(entries, (list, tuple)):
        raise RequestError(
            f"'{what}' must be a list of (subject, predicate, object) triples, "
            f"got {entries!r}"
        )
    triples = []
    for entry in entries:
        # Triple instances are re-coerced rather than passed through: a
        # NamedTuple does not validate its fields, and an ill-typed term
        # (a literal predicate, a raw string) must be rejected *here* so
        # that applying a validated request can never fail half-way
        # through and leave a graph partially mutated.
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise RequestError(
                f"every '{what}' entry must be a 3-element (s, p, o) sequence, "
                f"got {entry!r}"
            )
        s, p, o = entry
        triples.append(
            Triple(
                parse_wire_term(s, allow_literal=False),
                parse_wire_term(p, allow_literal=False),
                parse_wire_term(o),
            )
        )
    return tuple(triples)


@dataclass(frozen=True)
class MutationRequest:
    """Mutate a dataset's RDF graph in place: removals first, then inserts.

    Triples may be :class:`~repro.rdf.terms.Triple` instances or
    ``(s, p, o)`` 3-sequences; string terms follow the wire convention of
    :func:`parse_wire_term` (``"..."`` literal, otherwise URI).  Removals
    are applied before insertions, so a triple named in both ends up
    present (a re-insert).  No-op entries (inserting a present triple,
    deleting an absent one) are allowed and simply do not contribute to
    the resulting delta.
    """

    add: Tuple[Triple, ...] = ()
    remove: Tuple[Triple, ...] = ()

    def validated(self) -> "MutationRequest":
        """Coerce every add/remove entry to a Triple up front (atomicity)."""
        return replace(
            self,
            add=_coerce_triples(self.add, "add"),
            remove=_coerce_triples(self.remove, "remove"),
        )


@dataclass(frozen=True)
class EvaluateRequest:
    """Evaluate σ_r of the whole dataset for one rule."""

    rule: RuleSpec = "Cov"
    #: Also report the exact value as a ``"numerator/denominator"`` string.
    exact: bool = False
    #: Per-request parallelism override; ``None`` uses the session's jobs.
    jobs: Optional[int] = None

    def validated(self) -> "EvaluateRequest":
        """Check the rule spec type and the jobs override."""
        if not isinstance(self.rule, (str, Rule)):
            raise RequestError(f"rule must be a name, rule text or Rule, got {self.rule!r}")
        _check_jobs(self.jobs)
        return self


@dataclass(frozen=True)
class RefineRequest:
    """Highest-θ sort refinement for a fixed number of implicit sorts ``k``."""

    rule: RuleSpec = "Cov"
    k: int = 2
    step: ThetaSpec = Fraction(1, 100)
    initial_theta: Optional[ThetaSpec] = None
    max_probes: int = 200
    use_incremental: bool = True
    witness_skip: bool = True
    #: Per-request parallelism override; ``None`` uses the session's jobs.
    jobs: Optional[int] = None

    def validated(self) -> "RefineRequest":
        """Validate k/probe bounds and normalise θ fields to Fractions."""
        _check_positive_int(self.k, "k")
        _check_positive_int(self.max_probes, "max_probes")
        _check_jobs(self.jobs)
        step = parse_theta(self.step)
        if step == 0:
            raise RequestError("the theta search step must be positive")
        initial = None if self.initial_theta is None else parse_theta(self.initial_theta)
        return replace(self, step=step, initial_theta=initial)


@dataclass(frozen=True)
class LowestKRequest:
    """Lowest ``k`` admitting a refinement with a fixed threshold θ."""

    rule: RuleSpec = "Cov"
    theta: ThetaSpec = Fraction(9, 10)
    direction: str = "auto"
    k_min: int = 1
    k_max: Optional[int] = None
    use_incremental: bool = True
    witness_skip: bool = True
    #: Per-request parallelism override; ``None`` uses the session's jobs.
    jobs: Optional[int] = None

    def validated(self) -> "LowestKRequest":
        """Validate the k range, direction and jobs; normalise θ to a Fraction."""
        _check_jobs(self.jobs)
        theta = parse_theta(self.theta)
        if self.direction not in ("up", "down", "auto"):
            raise RequestError(
                f"direction must be 'up', 'down' or 'auto', got {self.direction!r}"
            )
        _check_positive_int(self.k_min, "k_min")
        if self.k_max is not None:
            _check_positive_int(self.k_max, "k_max")
            if self.k_max < self.k_min:
                raise RequestError(f"invalid k range [{self.k_min}, {self.k_max}]")
        return replace(self, theta=theta)


@dataclass(frozen=True)
class SweepRequest:
    """Highest-θ refinements for a whole range of ``k`` values.

    The session runs the ``k`` values through *one* shared encoder, so the
    per-sort constraint blocks and case coefficients are built once and the
    sweep state moves incrementally from one ``k`` to the next.
    """

    rule: RuleSpec = "Cov"
    k_values: Tuple[int, ...] = field(default=(2, 3, 4))
    step: ThetaSpec = Fraction(1, 100)
    max_probes: int = 200
    use_incremental: bool = True
    witness_skip: bool = True
    #: Per-request parallelism override; ``None`` uses the session's jobs.
    jobs: Optional[int] = None

    def validated(self) -> "SweepRequest":
        """Validate every k, the step and jobs; normalise θ fields to Fractions."""
        values = tuple(self.k_values)
        if not values:
            raise RequestError("k_values must name at least one k")
        for k in values:
            _check_positive_int(k, "every k in k_values")
        step = parse_theta(self.step)
        if step == 0:
            raise RequestError("the theta search step must be positive")
        _check_positive_int(self.max_probes, "max_probes")
        _check_jobs(self.jobs)
        return replace(self, k_values=values, step=step)
