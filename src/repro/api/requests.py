"""Typed request objects for the session API.

Every :class:`~repro.api.session.StructurednessSession` method accepts
either loose keyword arguments or one of these frozen dataclasses; the
dataclass is the canonical form — keyword arguments are normalised into it
and validated in one place.  Because requests are hashable value objects,
the session also uses them as keys of its result cache.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from fractions import Fraction
from typing import Optional, Tuple, Union

from repro.exceptions import RequestError
from repro.rules.ast import Rule

__all__ = [
    "RuleSpec",
    "ThetaSpec",
    "parse_theta",
    "EvaluateRequest",
    "RefineRequest",
    "LowestKRequest",
    "SweepRequest",
]

#: What session methods accept as a rule: a built-in name ("Cov", "Sim"),
#: rule text in the concrete syntax, or a parsed :class:`Rule`.
RuleSpec = Union[str, Rule]

#: What session methods accept as a threshold: a float, an exact fraction,
#: or a string such as ``"0.9"`` or ``"3/4"``.
ThetaSpec = Union[float, Fraction, str]


def parse_theta(value: ThetaSpec) -> Fraction:
    """Parse a threshold and check it lies in ``[0, 1]``.

    Accepts floats, :class:`~fractions.Fraction` instances and strings in
    either decimal (``"0.9"``) or fraction (``"3/4"``) notation.  Raises
    :class:`~repro.exceptions.RequestError` with a readable message on
    malformed input or a value outside ``[0, 1]``.
    """
    try:
        if isinstance(value, bool):
            raise TypeError("bool")
        if isinstance(value, str):
            text = value.strip()
            # Fraction("3/-4") already fails to parse, but reject any
            # signed denominator explicitly with a readable message.
            if "/" in text and text.split("/", 1)[1].strip().startswith(("-", "+")):
                raise RequestError(
                    f"theta fractions must have an unsigned denominator, got {value!r}"
                )
            theta = Fraction(text)
        elif isinstance(value, (int, Fraction)):
            theta = Fraction(value)
        elif isinstance(value, float):
            if not math.isfinite(value):
                raise RequestError(f"theta must be a finite number, got {value!r}")
            # Same float semantics as repro.core.encoder.to_fraction: 0.9
            # means 9/10, not its binary approximation.
            theta = Fraction(value).limit_denominator(10_000)
        else:
            raise TypeError(type(value).__name__)
    except RequestError:
        raise
    except (ValueError, ZeroDivisionError, TypeError, OverflowError):
        raise RequestError(
            f"theta must be a number or a fraction string such as '0.9' or '3/4', got {value!r}"
        ) from None
    if not Fraction(0) <= theta <= Fraction(1):
        raise RequestError(f"theta must lie in [0, 1], got {value!r} = {float(theta):g}")
    return theta


def _check_positive_int(value: object, what: str) -> int:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise RequestError(f"{what} must be a positive integer, got {value!r}")
    return value


@dataclass(frozen=True)
class EvaluateRequest:
    """Evaluate σ_r of the whole dataset for one rule."""

    rule: RuleSpec = "Cov"
    #: Also report the exact value as a ``"numerator/denominator"`` string.
    exact: bool = False

    def validated(self) -> "EvaluateRequest":
        if not isinstance(self.rule, (str, Rule)):
            raise RequestError(f"rule must be a name, rule text or Rule, got {self.rule!r}")
        return self


@dataclass(frozen=True)
class RefineRequest:
    """Highest-θ sort refinement for a fixed number of implicit sorts ``k``."""

    rule: RuleSpec = "Cov"
    k: int = 2
    step: ThetaSpec = Fraction(1, 100)
    initial_theta: Optional[ThetaSpec] = None
    max_probes: int = 200
    use_incremental: bool = True
    witness_skip: bool = True

    def validated(self) -> "RefineRequest":
        _check_positive_int(self.k, "k")
        _check_positive_int(self.max_probes, "max_probes")
        step = parse_theta(self.step)
        if step == 0:
            raise RequestError("the theta search step must be positive")
        initial = None if self.initial_theta is None else parse_theta(self.initial_theta)
        return replace(self, step=step, initial_theta=initial)


@dataclass(frozen=True)
class LowestKRequest:
    """Lowest ``k`` admitting a refinement with a fixed threshold θ."""

    rule: RuleSpec = "Cov"
    theta: ThetaSpec = Fraction(9, 10)
    direction: str = "auto"
    k_min: int = 1
    k_max: Optional[int] = None
    use_incremental: bool = True
    witness_skip: bool = True

    def validated(self) -> "LowestKRequest":
        theta = parse_theta(self.theta)
        if self.direction not in ("up", "down", "auto"):
            raise RequestError(
                f"direction must be 'up', 'down' or 'auto', got {self.direction!r}"
            )
        _check_positive_int(self.k_min, "k_min")
        if self.k_max is not None:
            _check_positive_int(self.k_max, "k_max")
            if self.k_max < self.k_min:
                raise RequestError(f"invalid k range [{self.k_min}, {self.k_max}]")
        return replace(self, theta=theta)


@dataclass(frozen=True)
class SweepRequest:
    """Highest-θ refinements for a whole range of ``k`` values.

    The session runs the ``k`` values through *one* shared encoder, so the
    per-sort constraint blocks and case coefficients are built once and the
    sweep state moves incrementally from one ``k`` to the next.
    """

    rule: RuleSpec = "Cov"
    k_values: Tuple[int, ...] = field(default=(2, 3, 4))
    step: ThetaSpec = Fraction(1, 100)
    max_probes: int = 200
    use_incremental: bool = True
    witness_skip: bool = True

    def validated(self) -> "SweepRequest":
        values = tuple(self.k_values)
        if not values:
            raise RequestError("k_values must name at least one k")
        for k in values:
            _check_positive_int(k, "every k in k_values")
        step = parse_theta(self.step)
        if step == 0:
            raise RequestError("the theta search step must be positive")
        _check_positive_int(self.max_probes, "max_probes")
        return replace(self, k_values=values, step=step)
