"""The NP-hardness reduction from graph 3-coloring (Appendix A)."""

from repro.reduction.three_coloring import (
    IDP,
    SP1,
    SP2,
    build_reduction_matrix,
    build_reduction_table,
    coloring_to_partition,
    find_three_coloring,
    is_three_colorable,
    partition_to_coloring,
    reduction_rule,
    verify_coloring_gives_threshold_one,
)

__all__ = [
    "SP1",
    "SP2",
    "IDP",
    "build_reduction_matrix",
    "build_reduction_table",
    "reduction_rule",
    "coloring_to_partition",
    "partition_to_coloring",
    "verify_coloring_gives_threshold_one",
    "find_three_coloring",
    "is_three_colorable",
]
