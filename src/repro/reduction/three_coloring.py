"""The NP-hardness construction of Theorem 5.1 / Appendix A.

The paper proves that ``ExistsSortRefinement(r0)`` is NP-complete for a
fixed rule ``r0`` even with ``θ = 1`` and ``k = 3``, by reduction from
graph 3-coloring.  Given an undirected, loop-free graph ``G`` with ``n``
nodes and adjacency matrix ``A_G``, the reduction builds an RDF graph
``D_G`` whose property-structure view is the ``(4n) × (2n + 3)`` block
matrix

::

    [ 0  0  1 | D | D  ]      (first auxiliary block)
    [ 0  1  1 | D | D  ]      (second auxiliary block)
    [ 1  0  1 | D | D  ]      (third auxiliary block)
    [ 1  1  0 | D | Ā_G ]     (lower section: one row per node of G)

where ``D`` is the n×n identity, the first two columns are the ``sp1`` /
``sp2`` "signature-separating" columns, the third column is ``idp`` and
``Ā_G`` is the complemented adjacency matrix.  G is 3-colorable iff ``D_G``
admits a σ_{r0}-sort refinement with threshold 1 and at most 3 implicit
sorts.

This module implements:

* :func:`build_reduction_matrix` / :func:`build_reduction_table` — the
  matrix ``M_G`` (and the corresponding signature table, every row being
  its own signature thanks to the sp1/sp2 columns);
* :func:`reduction_rule` — the 11-variable rule ``r0`` (equation (2));
* :func:`coloring_to_partition` and :func:`partition_to_coloring` — the
  two directions of the correspondence;
* :func:`verify_coloring_gives_threshold_one` — evaluates σ_{r0} on each
  part induced by a coloring (using the constraint-propagation evaluator),
  which is the checkable heart of the forward direction of the proof.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.exceptions import RefinementError
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable
from repro.rdf.namespaces import Namespace
from repro.rdf.terms import URI
from repro.rules.ast import (
    Not,
    PropIs,
    Rule,
    Var,
    conjunction,
    disjunction,
    prop_is,
    same_prop,
    same_subj,
    val_is,
    var_eq,
)
from repro.rules.evaluator import RuleEvaluator

__all__ = [
    "REDUCTION_NAMESPACE",
    "SP1",
    "SP2",
    "IDP",
    "build_reduction_matrix",
    "build_reduction_table",
    "reduction_rule",
    "coloring_to_partition",
    "partition_to_coloring",
    "verify_coloring_gives_threshold_one",
    "is_three_colorable",
    "find_three_coloring",
]

REDUCTION_NAMESPACE = Namespace("http://example.org/3col/")
SP1: URI = REDUCTION_NAMESPACE["sp1"]
SP2: URI = REDUCTION_NAMESPACE["sp2"]
IDP: URI = REDUCTION_NAMESPACE["idp"]


def _node_list(graph: nx.Graph) -> List:
    return sorted(graph.nodes())


def _column_labels(n: int) -> List[URI]:
    labels = [SP1, SP2, IDP]
    labels += [REDUCTION_NAMESPACE[f"left{i}"] for i in range(n)]
    labels += [REDUCTION_NAMESPACE[f"right{i}"] for i in range(n)]
    return labels


def _row_labels(n: int) -> List[URI]:
    labels = [REDUCTION_NAMESPACE[f"aux1_{i}"] for i in range(n)]
    labels += [REDUCTION_NAMESPACE[f"aux2_{i}"] for i in range(n)]
    labels += [REDUCTION_NAMESPACE[f"aux3_{i}"] for i in range(n)]
    labels += [REDUCTION_NAMESPACE[f"node{i}"] for i in range(n)]
    return labels


def build_reduction_matrix(graph: nx.Graph) -> PropertyMatrix:
    """Build the property-structure view ``M_G`` of the reduction RDF graph.

    The input must be a simple undirected graph without self-loops.
    """
    nodes = _node_list(graph)
    n = len(nodes)
    if n == 0:
        raise RefinementError("the reduction needs a graph with at least one node")
    if any(graph.has_edge(v, v) for v in nodes):
        raise RefinementError("the reduction requires a loop-free graph")
    index = {node: i for i, node in enumerate(nodes)}
    adjacency = np.zeros((n, n), dtype=bool)
    for u, v in graph.edges():
        adjacency[index[u], index[v]] = True
        adjacency[index[v], index[u]] = True
    complemented = ~adjacency
    identity = np.eye(n, dtype=bool)
    zeros = np.zeros((n, 1), dtype=bool)
    ones = np.ones((n, 1), dtype=bool)

    upper1 = np.hstack([zeros, zeros, ones, identity, identity])
    upper2 = np.hstack([zeros, ones, ones, identity, identity])
    upper3 = np.hstack([ones, zeros, ones, identity, identity])
    lower = np.hstack([ones, ones, zeros, identity, complemented])
    data = np.vstack([upper1, upper2, upper3, lower])
    return PropertyMatrix(data, _row_labels(n), _column_labels(n), name="3-coloring reduction")


def build_reduction_table(graph: nx.Graph) -> SignatureTable:
    """Build the signature table of ``D_G`` (every row is its own signature)."""
    return SignatureTable.from_matrix(build_reduction_matrix(graph))


def reduction_rule() -> Rule:
    """Build the fixed rule ``r0`` of equation (2) in Appendix A.

    The rule has eleven variables (x, c1, c2, y, d1, d2, z, e, u, f1, f2);
    its antecedent pins x/c1/c2 to an auxiliary row, y/d1/d2 and u/f1/f2 to
    lower-section rows, and z/e to a second copy of the auxiliary row if one
    exists; the consequent checks non-adjacency in the complemented
    adjacency block and that auxiliary rows are not duplicated.
    """
    x, c1, c2 = Var("x"), Var("c1"), Var("c2")
    y, d1, d2 = Var("y"), Var("d1"), Var("d2")
    z, e = Var("z"), Var("e")
    u, f1, f2 = Var("u"), Var("f1"), Var("f2")

    not_sp = [
        conjunction(Not(prop_is(v, SP1)), Not(prop_is(v, SP2)))
        for v in (c1, c2, d1, d2, e, f1, f2)
    ]
    antecedent = conjunction(
        *not_sp,
        prop_is(x, IDP),
        val_is(x, 1),
        Not(var_eq(c1, x)),
        same_subj(c1, x),
        val_is(c1, 1),
        Not(var_eq(c2, x)),
        same_subj(c2, x),
        val_is(c2, 1),
        Not(var_eq(c1, c2)),
        prop_is(y, IDP),
        val_is(y, 0),
        same_subj(d1, y),
        same_prop(d1, c1),
        same_subj(d2, y),
        same_prop(d2, c2),
        prop_is(z, IDP),
        same_subj(z, e),
        same_prop(e, c1),
        Not(var_eq(e, c1)),
        val_is(e, 1),
        prop_is(u, IDP),
        val_is(u, 0),
        same_subj(u, f1),
        same_prop(f1, c1),
        same_subj(u, f2),
        same_prop(f2, c2),
        val_is(f1, 1),
        val_is(f2, 1),
    )
    consequent = conjunction(
        disjunction(val_is(d1, 1), val_is(d2, 1)),
        val_is(z, 0),
    )
    return Rule(antecedent, consequent, name="r0 (3-coloring reduction)")


# --------------------------------------------------------------------------- #
# Coloring <-> partition correspondence
# --------------------------------------------------------------------------- #
def coloring_to_partition(
    graph: nx.Graph, coloring: Mapping[object, int]
) -> List[List[URI]]:
    """Map a (proper) 3-coloring of ``G`` to the row partition of ``M_G``.

    Color ``c`` receives the ``c``-th block of auxiliary rows plus the
    lower-section rows of the nodes colored ``c``; the result is a list of
    three lists of row labels (some possibly containing only auxiliary
    rows when a color is unused).
    """
    nodes = _node_list(graph)
    n = len(nodes)
    colors = set(coloring.values())
    if not colors <= {0, 1, 2}:
        raise RefinementError("coloring must use colors 0, 1 and 2")
    rows = _row_labels(n)
    parts: List[List[URI]] = [[], [], []]
    for color in range(3):
        parts[color].extend(rows[color * n : (color + 1) * n])
    for position, node in enumerate(nodes):
        color = coloring[node]
        parts[color].append(rows[3 * n + position])
    return parts


def partition_to_coloring(
    graph: nx.Graph, parts: Sequence[Iterable[URI]]
) -> Dict[object, int]:
    """Map a row partition of ``M_G`` back to a node coloring of ``G``.

    Every lower-section row (one per node) takes the index of the part it
    belongs to as its color.
    """
    nodes = _node_list(graph)
    n = len(nodes)
    rows = _row_labels(n)
    node_rows = {rows[3 * n + position]: node for position, node in enumerate(nodes)}
    coloring: Dict[object, int] = {}
    for color, part in enumerate(parts):
        for row in part:
            if row in node_rows:
                coloring[node_rows[row]] = color
    missing = set(nodes) - set(coloring)
    if missing:
        raise RefinementError(f"partition does not cover the nodes {sorted(map(str, missing))}")
    return coloring


def verify_coloring_gives_threshold_one(
    graph: nx.Graph, coloring: Mapping[object, int]
) -> List[float]:
    """Evaluate σ_{r0} on each part induced by ``coloring``; all must be 1.0.

    This checks the forward direction of the reduction on concrete inputs:
    a proper 3-coloring yields a sort refinement with threshold 1 and at
    most 3 implicit sorts.
    """
    matrix = build_reduction_matrix(graph)
    rule = reduction_rule()
    values: List[float] = []
    for part in coloring_to_partition(graph, coloring):
        submatrix = matrix.select_subjects(part)
        values.append(RuleEvaluator(submatrix).sigma(rule))
    return values


# --------------------------------------------------------------------------- #
# 3-colorability (exact, for the small graphs used in tests/benchmarks)
# --------------------------------------------------------------------------- #
def find_three_coloring(graph: nx.Graph) -> Optional[Dict[object, int]]:
    """Return a proper 3-coloring of ``graph`` or ``None`` if none exists.

    Uses simple backtracking with degree-descending node order; intended
    for the small instances exercised by tests and benchmarks, not as a
    competitive coloring algorithm.
    """
    nodes = sorted(graph.nodes(), key=lambda v: -graph.degree(v))
    coloring: Dict[object, int] = {}

    def assign(position: int) -> bool:
        if position == len(nodes):
            return True
        node = nodes[position]
        used = {coloring[other] for other in graph.neighbors(node) if other in coloring}
        for color in range(3):
            if color in used:
                continue
            coloring[node] = color
            if assign(position + 1):
                return True
            del coloring[node]
        return False

    if assign(0):
        return dict(coloring)
    return None


def is_three_colorable(graph: nx.Graph) -> bool:
    """Whether ``graph`` admits a proper 3-coloring."""
    return find_three_coloring(graph) is not None
