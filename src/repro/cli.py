"""Command-line interface.

Examples
--------
Evaluate structuredness functions on an N-Triples file::

    repro evaluate data.nt --sort http://xmlns.com/foaf/0.1/Person

Evaluate a custom rule::

    repro evaluate data.nt --rule "c = c -> val(c) = 1"

Find the highest-θ refinement with k sorts::

    repro refine data.nt --rule-name Cov -k 2

Run a paper experiment::

    repro experiment table1
    repro experiment figure4 --param n_subjects=5000

List the available experiments::

    repro experiment --list
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional

from repro.functions import (
    coverage,
    coverage_function,
    function_from_rule,
    similarity,
    similarity_function,
)
from repro.matrix.horizontal import render_signature_table
from repro.matrix.signatures import SignatureTable
from repro.rdf.ntriples import load_ntriples
from repro.rules import coverage as coverage_rule
from repro.rules import similarity as similarity_rule
from repro.rules.parser import parse_rule
from repro.core.search import highest_theta_refinement, lowest_k_refinement

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RDF structuredness functions and ILP-based sort refinement (VLDB 2014 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command")

    evaluate = subparsers.add_parser("evaluate", help="evaluate structuredness of an N-Triples file")
    evaluate.add_argument("path", help="path to an N-Triples file")
    evaluate.add_argument("--sort", help="restrict to subjects declared of this rdf:type")
    evaluate.add_argument("--rule", help="a rule in the concrete syntax (default: report Cov and Sim)")
    evaluate.add_argument("--figure", action="store_true", help="also print the signature-view figure")

    refine = subparsers.add_parser("refine", help="compute a sort refinement of an N-Triples file")
    refine.add_argument("path", help="path to an N-Triples file")
    refine.add_argument("--sort", help="restrict to subjects declared of this rdf:type")
    refine.add_argument("--rule", help="a rule in the concrete syntax")
    refine.add_argument(
        "--rule-name", choices=["Cov", "Sim"], default="Cov", help="a built-in rule (ignored when --rule is given)"
    )
    refine.add_argument("-k", type=int, default=None, help="fixed k: search for the highest theta")
    refine.add_argument("--theta", type=float, default=None, help="fixed theta: search for the lowest k")
    refine.add_argument("--step", type=float, default=0.01, help="theta search step (default 0.01)")
    refine.add_argument("--time-limit", type=float, default=120.0, help="per-ILP time limit in seconds")

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("experiment_id", nargs="?", help="experiment id (see --list)")
    experiment.add_argument("--list", action="store_true", help="list available experiments")
    experiment.add_argument(
        "--param",
        action="append",
        default=[],
        help="experiment parameter override, e.g. --param n_subjects=5000 (repeatable)",
    )
    return parser


def _load_table(path: str, sort: Optional[str]) -> SignatureTable:
    graph = load_ntriples(path)
    if sort:
        graph = graph.sort_subgraph(sort)
    return SignatureTable.from_graph(graph)


def _parse_params(raw: List[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in raw:
        if "=" not in item:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        key, value = item.split("=", 1)
        parsed: object
        try:
            parsed = int(value)
        except ValueError:
            try:
                parsed = float(value)
            except ValueError:
                if value.lower() in ("true", "false"):
                    parsed = value.lower() == "true"
                else:
                    parsed = value
        params[key.strip()] = parsed
    return params


def _command_evaluate(args: argparse.Namespace) -> int:
    table = _load_table(args.path, args.sort)
    print(
        f"{table.name or args.path}: {table.n_subjects} subjects, "
        f"{table.n_properties} properties, {table.n_signatures} signatures"
    )
    if args.rule:
        rule = parse_rule(args.rule)
        value = function_from_rule(rule)(table)
        print(f"sigma[{args.rule}] = {value:.4f}")
    else:
        print(f"Cov = {coverage(table):.4f}")
        print(f"Sim = {similarity(table):.4f}")
    if args.figure:
        print(render_signature_table(table))
    return 0


def _command_refine(args: argparse.Namespace) -> int:
    table = _load_table(args.path, args.sort)
    if args.rule:
        rule = parse_rule(args.rule)
        function = function_from_rule(rule)
    elif args.rule_name == "Sim":
        rule, function = similarity_rule(), similarity_function()
    else:
        rule, function = coverage_rule(), coverage_function()

    if (args.k is None) == (args.theta is None):
        raise SystemExit("specify exactly one of -k (highest theta) or --theta (lowest k)")
    if args.k is not None:
        search = highest_theta_refinement(
            table, rule, k=args.k, step=args.step, solver_time_limit=args.time_limit
        )
        print(f"highest theta for k = {args.k}: {search.theta:.4f} ({search.n_probes} ILP probes)")
    else:
        search = lowest_k_refinement(
            table, rule, theta=args.theta, solver_time_limit=args.time_limit
        )
        print(f"lowest k for theta = {args.theta}: {search.k} ({search.n_probes} ILP probes)")
    print(search.refinement.summary(function))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments, run_experiment

    if args.list or not args.experiment_id:
        print("available experiments:")
        for experiment_id in sorted(all_experiments()):
            print(f"  {experiment_id}")
        return 0
    params = _parse_params(args.param)
    result = run_experiment(args.experiment_id, **params)
    print(result.to_text())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "refine":
        return _command_refine(args)
    if args.command == "experiment":
        return _command_experiment(args)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
