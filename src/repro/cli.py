"""Command-line interface.

All commands are thin frontends over the session API
(:mod:`repro.api`): each invocation opens a :class:`~repro.api.Dataset`
handle, runs the query through a :class:`~repro.api.StructurednessSession`
and renders the typed result — as text by default, as JSON with ``--json``.

Examples
--------
Evaluate structuredness functions on an N-Triples file::

    repro evaluate data.nt --sort http://xmlns.com/foaf/0.1/Person

Evaluate a custom rule, machine-readably::

    repro evaluate data.nt --rule "c = c -> val(c) = 1" --json

Find the highest-θ refinement with k sorts::

    repro refine data.nt --rule-name Cov -k 2

Find the lowest k for a threshold given as a fraction::

    repro refine data.nt --theta 3/4 --solver highs

Run a paper experiment::

    repro experiment table1
    repro experiment figure4 --param n_subjects=5000

List the available experiments::

    repro experiment --list

Run a JSONL batch through the service executor (4 worker processes)::

    repro batch jobs.jsonl --workers 4 --output results.jsonl

Start the HTTP service (``--port 0`` picks an ephemeral port)::

    repro serve --port 8080 --workers 4

Start the asyncio front-end with admission control and elastic workers
(autoscaling between 1 and 4 processes on queue depth)::

    repro serve --async --min-workers 1 --max-workers 4 --pending-limit 64

Watch structuredness live while replaying a JSONL mutation stream (see
docs/observability.md)::

    repro watch data.nt --rule Cov --theta 3/4 --replay mutations.jsonl

Persist a dataset's artifact chain and inspect the result (see
docs/snapshots.md)::

    repro snapshot build snapshots/persons --builtin dbpedia-persons --param n_subjects=5000
    repro snapshot build snapshots/people --ntriples data.nt --sort http://xmlns.com/foaf/0.1/Person
    repro snapshot inspect snapshots/persons --json

Build a snapshot from an N-Triples file that does not fit in memory,
streaming it through the out-of-core pipeline (see docs/outofcore.md)::

    repro build huge.nt snapshots/huge --out-of-core --chunk-triples 65536 --partitions 8
"""

from __future__ import annotations

import argparse
import sys
from fractions import Fraction
from typing import Dict, List, Optional

from repro import __version__
from repro.api import Dataset, StructurednessSession, parse_theta
from repro.exceptions import RequestError, SnapshotError
from repro.ilp.registry import DEFAULT_SOLVER, solver_names
from repro.matrix.horizontal import render_signature_table
from repro.parallel import resolve_jobs
from repro.rules.parser import parse_rule

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RDF structuredness functions and ILP-based sort refinement (VLDB 2014 reproduction).",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    subparsers = parser.add_subparsers(dest="command")

    evaluate = subparsers.add_parser("evaluate", help="evaluate structuredness of an N-Triples file")
    evaluate.add_argument("path", help="path to an N-Triples file")
    evaluate.add_argument("--sort", help="restrict to subjects declared of this rdf:type")
    evaluate.add_argument("--rule", help="a rule in the concrete syntax (default: report Cov and Sim)")
    evaluate.add_argument("--figure", action="store_true", help="also print the signature-view figure")
    evaluate.add_argument("--json", action="store_true", help="emit the result as JSON")

    refine = subparsers.add_parser("refine", help="compute a sort refinement of an N-Triples file")
    refine.add_argument("path", help="path to an N-Triples file")
    refine.add_argument("--sort", help="restrict to subjects declared of this rdf:type")
    refine.add_argument("--rule", help="a rule in the concrete syntax")
    refine.add_argument(
        "--rule-name", choices=["Cov", "Sim"], default="Cov", help="a built-in rule (ignored when --rule is given)"
    )
    refine.add_argument("-k", type=int, default=None, help="fixed k: search for the highest theta")
    refine.add_argument(
        "--theta",
        default=None,
        help="fixed theta: search for the lowest k; accepts decimals or fractions, e.g. 0.9 or 3/4",
    )
    refine.add_argument("--step", type=float, default=0.01, help="theta search step (default 0.01)")
    refine.add_argument("--time-limit", type=float, default=120.0, help="per-ILP time limit in seconds")
    refine.add_argument(
        "--solver",
        default=DEFAULT_SOLVER,
        choices=list(solver_names()),
        help=f"MILP backend (default {DEFAULT_SOLVER!r})",
    )
    refine.add_argument(
        "--jobs", default=None,
        help="parallel workers for speculative ILP probes (an integer, 0 or "
        "'auto' for all CPUs; default: the REPRO_JOBS env var, else 1)",
    )
    refine.add_argument("--json", action="store_true", help="emit the result as JSON")

    experiment = subparsers.add_parser("experiment", help="run one of the paper's experiments")
    experiment.add_argument("experiment_id", nargs="?", help="experiment id (see --list)")
    experiment.add_argument("--list", action="store_true", help="list available experiments")
    experiment.add_argument(
        "--param",
        action="append",
        default=[],
        help="experiment parameter override, e.g. --param n_subjects=5000 (repeatable)",
    )
    experiment.add_argument("--json", action="store_true", help="emit the result as JSON")

    batch = subparsers.add_parser(
        "batch", help="run a JSONL batch of service requests (see repro.service.wire)"
    )
    batch.add_argument("input", help="path to a JSONL request file, or '-' for stdin")
    batch.add_argument("--workers", type=int, default=1, help="worker processes (1 = inline)")
    batch.add_argument("--output", "-o", help="write result JSONL here instead of stdout")
    batch.add_argument("--time-limit", type=float, default=None, help="per-ILP time limit in seconds")
    batch.add_argument(
        "--jobs", default=None,
        help="per-session (or per-worker) parallelism budget (an integer, 0 or "
        "'auto'; default: the REPRO_JOBS env var, else 1)",
    )
    batch.add_argument("--stats", action="store_true", help="print executor stats to stderr")

    serve = subparsers.add_parser("serve", help="start the HTTP structuredness service")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8080, help="TCP port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=1, help="worker processes (1 = inline)")
    serve.add_argument("--time-limit", type=float, default=None, help="per-ILP time limit in seconds")
    serve.add_argument(
        "--jobs", default=None,
        help="per-session (or per-worker) parallelism budget (an integer, 0 or "
        "'auto'; default: the REPRO_JOBS env var, else 1)",
    )
    serve.add_argument("--verbose", action="store_true", help="log every HTTP request")
    serve.add_argument(
        "--async", dest="async_server", action="store_true",
        help="serve with the asyncio front-end (admission control, 429 + "
        "Retry-After on overflow, streaming batch/watch responses)",
    )
    serve.add_argument(
        "--min-workers", type=int, default=None,
        help="alias for --workers: the elastic pool's floor (implies --async "
        "semantics for sizing; default: the --workers value)",
    )
    serve.add_argument(
        "--max-workers", type=int, default=None,
        help="elastic pool ceiling: autoscale worker processes between the "
        "floor and this on queue depth (requires a value above the floor)",
    )
    serve.add_argument(
        "--pending-limit", type=int, default=64,
        help="async front-end admission queue bound; requests beyond it get "
        "429 + Retry-After (default 64)",
    )

    watch = subparsers.add_parser(
        "watch", help="watch structuredness live while replaying a mutation stream"
    )
    watch.add_argument("path", help="path to an N-Triples file")
    watch.add_argument("--sort", help="restrict to subjects declared of this rdf:type")
    watch.add_argument(
        "--rule",
        action="append",
        help="a rule name or concrete-syntax text to watch (repeatable; default Cov)",
    )
    watch.add_argument(
        "--theta", help="also track the lowest-k refinement at this threshold (e.g. 3/4)"
    )
    watch.add_argument(
        "--shards", type=int, default=None, help="signature-table shard count (default 16)"
    )
    watch.add_argument(
        "--replay",
        default="-",
        help="JSONL mutation stream ({\"add\": [[s,p,o],...], \"remove\": [...]} per line); "
        "'-' reads stdin (default)",
    )
    watch.add_argument("--json", action="store_true", help="emit events as JSONL")

    ooc_build = subparsers.add_parser(
        "build", help="build a snapshot from an N-Triples file (optionally out-of-core)"
    )
    ooc_build.add_argument("source", help="path to an N-Triples file")
    ooc_build.add_argument("output", help="snapshot directory to write")
    ooc_build.add_argument(
        "--out-of-core",
        action="store_true",
        help="stream the file through the disk-backed pipeline in bounded "
        "memory instead of building the dataset in RAM (see docs/outofcore.md)",
    )
    ooc_build.add_argument(
        "--chunk-triples", type=int, default=None,
        help="out-of-core parse-chunk size in triples (default: the "
        "REPRO_OOC_CHUNK env var, else 65536)",
    )
    ooc_build.add_argument(
        "--partitions", type=int, default=None,
        help="out-of-core subject-partition count for the merge passes "
        "(default: the REPRO_OOC_PARTITIONS env var, else 8)",
    )
    ooc_build.add_argument(
        "--sort", help="restrict to subjects declared of this rdf:type"
    )
    ooc_build.add_argument("--name", help="dataset display name recorded in the manifest")
    ooc_build.add_argument("--force", action="store_true", help="overwrite an existing snapshot")
    ooc_build.add_argument("--json", action="store_true", help="emit the manifest info as JSON")

    snapshot = subparsers.add_parser(
        "snapshot", help="persist and inspect binary dataset snapshots"
    )
    snapshot.set_defaults(snapshot_parser=snapshot)
    snapshot_commands = snapshot.add_subparsers(dest="snapshot_command")
    build = snapshot_commands.add_parser(
        "build", help="build a dataset and persist its artifact chain"
    )
    build.add_argument("output", help="snapshot directory to write")
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument("--ntriples", help="path to an N-Triples file")
    source.add_argument("--builtin", help="a built-in synthetic dataset name")
    build.add_argument("--sort", help="restrict to subjects declared of this rdf:type (N-Triples only)")
    build.add_argument(
        "--param",
        action="append",
        default=[],
        help="built-in generator parameter, e.g. --param n_subjects=5000 (repeatable)",
    )
    build.add_argument("--name", help="dataset display name recorded in the manifest")
    build.add_argument("--force", action="store_true", help="overwrite an existing snapshot")
    build.add_argument("--json", action="store_true", help="emit the manifest info as JSON")
    inspect = snapshot_commands.add_parser(
        "inspect", help="verify a snapshot and print its manifest"
    )
    inspect.add_argument("path", help="snapshot directory to inspect")
    inspect.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the per-segment SHA-256 pass (structure and sizes are still checked)",
    )
    inspect.add_argument("--json", action="store_true", help="emit the manifest info as JSON")
    return parser


def _open_session(args: argparse.Namespace, **options) -> StructurednessSession:
    dataset = Dataset.from_ntriples(args.path, sort=args.sort)
    return dataset.session(**options)


def _parse_params(raw: List[str]) -> Dict[str, object]:
    params: Dict[str, object] = {}
    for item in raw:
        if "=" not in item:
            raise SystemExit(f"--param expects key=value, got {item!r}")
        key, value = item.split("=", 1)
        parsed: object
        try:
            parsed = int(value)
        except ValueError:
            try:
                parsed = float(value)
            except ValueError:
                if value.lower() in ("true", "false"):
                    parsed = value.lower() == "true"
                else:
                    parsed = value
        params[key.strip()] = parsed
    return params


def _parse_theta_arg(raw: str) -> Fraction:
    try:
        return parse_theta(raw)
    except RequestError as error:
        raise SystemExit(f"--theta: {error}")


def _parse_jobs_arg(raw: Optional[str]) -> Optional[str]:
    """Fail fast on an unparsable --jobs value; the setting passes through."""
    if raw is None:
        return None
    try:
        resolve_jobs(raw)
    except RequestError as error:
        raise SystemExit(f"--jobs: {error}")
    return raw


def _command_evaluate(args: argparse.Namespace) -> int:
    session = _open_session(args)
    table = session.dataset.table
    results = [session.evaluate(parse_rule(args.rule))] if args.rule else [
        session.evaluate("Cov"),
        session.evaluate("Sim"),
    ]
    if args.json:
        import json

        payload = {"dataset": session.info.to_dict(), "results": [r.to_dict() for r in results]}
        print(json.dumps(payload, indent=2))
        return 0
    info = session.info
    print(
        f"{info.name or args.path}: {info.n_subjects} subjects, "
        f"{info.n_properties} properties, {info.n_signatures} signatures"
    )
    if args.rule:
        print(f"sigma[{args.rule}] = {results[0].value:.4f}")
    else:
        for result in results:
            print(f"{result.rule} = {result.value:.4f}")
    if args.figure:
        print(render_signature_table(table))
    return 0


def _command_refine(args: argparse.Namespace) -> int:
    session = _open_session(
        args, solver=args.solver, solver_time_limit=args.time_limit,
        jobs=_parse_jobs_arg(args.jobs),
    )
    rule = parse_rule(args.rule) if args.rule else args.rule_name

    if (args.k is None) == (args.theta is None):
        raise SystemExit("specify exactly one of -k (highest theta) or --theta (lowest k)")
    if args.k is not None:
        result = session.refine(rule, k=args.k, step=args.step)
        header = (
            f"highest theta for k = {args.k}: {result.theta:.4f} "
            f"({result.n_probes} ILP probes)"
        )
    else:
        theta = _parse_theta_arg(args.theta)
        result = session.lowest_k(rule, theta=theta)
        header = (
            f"lowest k for theta = {float(theta):g}: {result.k} "
            f"({result.n_probes} ILP probes)"
        )
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(header)
    print(result.refinement.summary(session.function_for(rule)))
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import all_experiments, run_experiment

    if args.list or not args.experiment_id:
        print("available experiments:")
        for experiment_id in sorted(all_experiments()):
            print(f"  {experiment_id}")
        return 0
    params = _parse_params(args.param)
    result = run_experiment(args.experiment_id, **params)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(result.to_text())
    return 0


def _command_batch(args: argparse.Namespace) -> int:
    from repro.service import create_executor

    if args.input == "-":
        text = sys.stdin.read()
    else:
        with open(args.input, "r", encoding="utf-8") as handle:
            text = handle.read()
    with create_executor(
        workers=args.workers, solver_time_limit=args.time_limit,
        jobs=_parse_jobs_arg(args.jobs),
    ) as executor:
        try:
            output = executor.execute_jsonl(text)
        except RequestError as error:
            raise SystemExit(f"batch: {error}")
        if args.stats:
            import json

            print(json.dumps(executor.stats(), sort_keys=True), file=sys.stderr)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(output + ("\n" if output else ""))
    else:
        print(output)
    return 0


def _command_build(args: argparse.Namespace) -> int:
    import json

    if not args.out_of_core and (args.chunk_triples is not None or args.partitions is not None):
        raise SystemExit("build: --chunk-triples/--partitions require --out-of-core")
    try:
        if args.out_of_core:
            from repro.storage.outofcore import build_out_of_core

            info = build_out_of_core(
                args.source,
                args.output,
                name=args.name or "",
                sort=args.sort,
                chunk_triples=args.chunk_triples,
                partitions=args.partitions,
                overwrite=args.force,
            )
        else:
            dataset = Dataset.from_ntriples(args.source, sort=args.sort)
            info = dataset.save(args.output, name=args.name, overwrite=args.force)
    except (SnapshotError, RequestError) as error:
        raise SystemExit(f"build: {error}")
    if args.json:
        print(json.dumps(info.to_dict(), indent=2, sort_keys=True))
    else:
        print(_render_snapshot_info(info, verb="wrote"))
    return 0


def _command_snapshot(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import json

    if args.snapshot_command == "build":
        if args.builtin is not None:
            if args.sort:
                raise SystemExit("--sort applies to --ntriples sources, not --builtin")
            dataset = Dataset.builtin(args.builtin, **_parse_params(args.param))
        else:
            if args.param:
                raise SystemExit("--param applies to --builtin sources, not --ntriples")
            dataset = Dataset.from_ntriples(args.ntriples, sort=args.sort)
        try:
            info = dataset.save(args.output, name=args.name, overwrite=args.force)
        except SnapshotError as error:
            raise SystemExit(f"snapshot build: {error}")
        if args.json:
            print(json.dumps(info.to_dict(), indent=2, sort_keys=True))
        else:
            print(_render_snapshot_info(info, verb="wrote"))
        return 0
    if args.snapshot_command == "inspect":
        from repro.storage.snapshots import inspect_snapshot

        try:
            info = inspect_snapshot(args.path, verify=not args.no_verify)
        except SnapshotError as error:
            raise SystemExit(f"snapshot inspect: {error}")
        if args.json:
            print(json.dumps(info.to_dict(), indent=2, sort_keys=True))
        else:
            print(_render_snapshot_info(info, verb="verified"))
        return 0
    # No subcommand: print the snapshot help but fail, like bare `repro`.
    args.snapshot_parser.print_help(sys.stderr)
    return 1


def _render_snapshot_info(info, verb: str) -> str:
    lines = [
        f"{verb} snapshot {info.path} (format v{info.format_version})",
        f"  dataset    : {info.name or '(unnamed)'}",
        f"  generation : {info.generation}",
        f"  stages     : {', '.join(info.stages)}",
        f"  counts     : " + ", ".join(f"{k}={v}" for k, v in sorted(info.counts.items())),
        f"  payload    : {info.total_bytes} bytes in {len(info.segments)} segments",
    ]
    for segment_name in sorted(info.segments):
        meta = info.segments[segment_name]
        lines.append(
            f"    {segment_name:<22} {int(meta['bytes']):>12} bytes  sha256 {str(meta['sha256'])[:12]}…"
        )
    return "\n".join(lines)


def _command_serve(args: argparse.Namespace) -> int:
    workers = args.workers if args.min_workers is None else args.min_workers
    if workers < 1:
        raise SystemExit("serve: --workers/--min-workers must be >= 1")
    if args.max_workers is not None and args.max_workers < workers:
        raise SystemExit(
            f"serve: --max-workers ({args.max_workers}) must be >= the worker "
            f"floor ({workers})"
        )
    if args.async_server:
        from repro.service import serve_async

        return serve_async(
            host=args.host,
            port=args.port,
            workers=workers,
            max_workers=args.max_workers,
            solver_time_limit=args.time_limit,
            verbose=args.verbose,
            jobs=_parse_jobs_arg(args.jobs),
            pending_limit=args.pending_limit,
        )
    if args.max_workers is not None and args.max_workers > workers:
        from repro.service import create_executor, make_server

        executor = create_executor(
            workers=workers, solver_time_limit=args.time_limit,
            jobs=_parse_jobs_arg(args.jobs), max_workers=args.max_workers,
        )
        server = make_server(
            host=args.host, port=args.port, executor=executor, verbose=args.verbose
        )
        print(f"repro service listening on {server.url}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            pass
        finally:
            server.server_close()
            server.service.close()
        return 0
    from repro.service import serve

    return serve(
        host=args.host,
        port=args.port,
        workers=workers,
        solver_time_limit=args.time_limit,
        verbose=args.verbose,
        jobs=_parse_jobs_arg(args.jobs),
    )


def _render_watch_event(event) -> str:
    """One human-readable dashboard line per :class:`WatchEvent`."""
    if event.kind == "drift":
        return (
            f"gen {event.generation:>4}  {event.rule}: lowest-k drift "
            f"{event.previous_k} -> {event.k} at theta={event.theta} "
            f"(covered sorts: {event.covered_sorts}/{len(event.sort_sigmas)})"
        )
    if event.kind == "heartbeat":
        return f"gen {event.generation:>4}  (idle)"
    reuse = f"shards {event.shards_recounted} recounted / {event.shards_reused} reused"
    if event.full_recount:
        reuse = "full recount"
    marker = "*" if event.changed else " "
    return (
        f"gen {event.generation:>4} {marker}{event.rule}: sigma={event.sigma} "
        f"({event.value:.4f})  [{reuse}]"
    )


def _command_watch(args: argparse.Namespace) -> int:
    import json

    from repro.api.watch import WatchSession

    dataset = Dataset.from_ntriples(args.path, sort=args.sort)
    theta = _parse_theta_arg(args.theta) if args.theta else None
    try:
        watch = WatchSession(
            dataset, tuple(args.rule or ("Cov",)), theta=theta, shards=args.shards
        )
    except RequestError as error:
        raise SystemExit(f"watch: {error}")

    def emit(event) -> None:
        if args.json:
            print(json.dumps(event.to_dict(), sort_keys=True), flush=True)
        else:
            print(_render_watch_event(event), flush=True)

    watch.subscribe(emit)
    watch.poll()  # baseline observation before any mutation is replayed
    stream = sys.stdin if args.replay == "-" else open(args.replay, "r", encoding="utf-8")
    try:
        for line_no, line in enumerate(stream, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                entry = json.loads(line)
                dataset.mutate(add=entry.get("add", ()), remove=entry.get("remove", ()))
            except (ValueError, RequestError) as error:
                print(f"watch: replay line {line_no}: {error}", file=sys.stderr)
                return 1
            watch.poll()
    finally:
        if stream is not sys.stdin:
            stream.close()
        watch.close()
    if not args.json:
        stats = watch.stats
        print(
            f"-- {stats['observations']} observations, {stats['events']} events, "
            f"{stats['alerts']} drift alerts; shards {stats['shard_recounts']} recounted "
            f"/ {stats['shard_reuses']} reused",
            file=sys.stderr,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "evaluate":
        return _command_evaluate(args)
    if args.command == "refine":
        return _command_refine(args)
    if args.command == "experiment":
        return _command_experiment(args)
    if args.command == "batch":
        return _command_batch(args)
    if args.command == "serve":
        return _command_serve(args)
    if args.command == "watch":
        return _command_watch(args)
    if args.command == "build":
        return _command_build(args)
    if args.command == "snapshot":
        return _command_snapshot(args, parser)
    parser.print_help()
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
