"""Plain-text table formatting for experiment reports."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_mapping", "format_float"]


def format_float(value: object, digits: int = 3) -> str:
    """Format numbers compactly; pass other values through as ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    digits: int = 3,
    title: Optional[str] = None,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table.

    Parameters
    ----------
    rows:
        The data rows.  Missing keys render as empty cells.
    columns:
        Explicit column order; defaults to the keys of the first row
        followed by any new keys found in later rows.
    digits:
        Decimal digits used for float formatting.
    title:
        Optional title printed above the table.
    """
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)
    rendered: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        rendered.append([format_float(row.get(column, ""), digits) for column in columns])
    widths = [max(len(line[i]) for line in rendered) for i in range(len(columns))]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = " | ".join(cell.ljust(width) for cell, width in zip(rendered[0], widths))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for line in rendered[1:]:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def format_mapping(mapping: Mapping[str, object], digits: int = 3, title: Optional[str] = None) -> str:
    """Render a flat mapping as ``key: value`` lines."""
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max((len(str(key)) for key in mapping), default=0)
    for key, value in mapping.items():
        lines.append(f"{str(key).ljust(width)} : {format_float(value, digits)}")
    return "\n".join(lines)
