"""Reporting helpers: text tables and classification metrics."""

from repro.report.metrics import ConfusionMatrix
from repro.report.tables import format_float, format_mapping, format_table

__all__ = ["ConfusionMatrix", "format_table", "format_mapping", "format_float"]
