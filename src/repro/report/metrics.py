"""Binary-classification metrics used by the semantic-correctness experiment.

Section 7.4 interprets the recovery of Drug Companies vs Sultans from a
mixed dataset as a binary classification problem (Drug Company = positive
class) and reports the confusion matrix, accuracy, precision and recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["ConfusionMatrix"]


@dataclass(frozen=True)
class ConfusionMatrix:
    """A 2x2 confusion matrix for a binary classification task.

    Attributes follow the usual convention: ``tp`` are positives classified
    as positive, ``fp`` negatives classified as positive, ``fn`` positives
    classified as negative and ``tn`` negatives classified as negative.
    """

    tp: int
    fp: int
    fn: int
    tn: int

    @property
    def total(self) -> int:
        """Total number of classified items."""
        return self.tp + self.fp + self.fn + self.tn

    @property
    def accuracy(self) -> float:
        """Fraction of correctly classified items (1.0 when empty)."""
        if self.total == 0:
            return 1.0
        return (self.tp + self.tn) / self.total

    @property
    def precision(self) -> float:
        """tp / (tp + fp); 1.0 when nothing was classified positive."""
        predicted_positive = self.tp + self.fp
        if predicted_positive == 0:
            return 1.0
        return self.tp / predicted_positive

    @property
    def recall(self) -> float:
        """tp / (tp + fn); 1.0 when there are no actual positives."""
        actual_positive = self.tp + self.fn
        if actual_positive == 0:
            return 1.0
        return self.tp / actual_positive

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0.0 when both are 0)."""
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def as_dict(self) -> Dict[str, float]:
        """Return every metric in a flat dictionary (for report tables)."""
        return {
            "tp": self.tp,
            "fp": self.fp,
            "fn": self.fn,
            "tn": self.tn,
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }

    def __add__(self, other: "ConfusionMatrix") -> "ConfusionMatrix":
        return ConfusionMatrix(
            self.tp + other.tp,
            self.fp + other.fp,
            self.fn + other.fn,
            self.tn + other.tn,
        )
