"""Abstract syntax for the structuredness rule language (Section 3).

The language talks about cells of the property-structure view ``M(D)``:

* *variables* ``c ∈ V`` point at matrix cells;
* ``val(c)`` is the 0/1 content of the cell, ``subj(c)`` its row (a subject)
  and ``prop(c)`` its column (a property);
* atomic formulas are the equalities allowed by the grammar of Section 3.1;
* formulas are closed under ``¬``, ``∧`` and ``∨``;
* a *rule* is ``ϕ1 ↦ ϕ2`` with ``var(ϕ2) ⊆ var(ϕ1)``.

The classes below form a small immutable AST.  Operator overloading gives a
lightweight DSL::

    c1, c2 = Var("c1"), Var("c2")
    rule = (~(c1 == c2) & same_prop(c1, c2) & val_is(c1, 1)) >> val_is(c2, 1)

which is exactly the σSim rule of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, Tuple, Union

from repro.exceptions import RuleError
from repro.rdf.terms import URI, coerce_uri

__all__ = [
    "Var",
    "Formula",
    "Atom",
    "ValIs",
    "SubjIs",
    "PropIs",
    "VarEq",
    "ValEq",
    "SubjEq",
    "PropEq",
    "Not",
    "And",
    "Or",
    "Rule",
    "val_is",
    "subj_is",
    "prop_is",
    "var_eq",
    "same_val",
    "same_subj",
    "same_prop",
    "conjunction",
    "disjunction",
]


# --------------------------------------------------------------------------- #
# Variables
# --------------------------------------------------------------------------- #
@dataclass(frozen=True, order=True)
class Var:
    """A cell variable ``c ∈ V``.

    Variables are plain named values; use :func:`var_eq` (not ``==``) to
    build the ``c1 = c2`` atomic formula, so that ``Var`` keeps ordinary
    equality semantics and can safely be used in sets and dictionaries.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise RuleError("variable names must be non-empty strings")

    def __str__(self) -> str:
        return self.name


# --------------------------------------------------------------------------- #
# Formulas
# --------------------------------------------------------------------------- #
class Formula:
    """Base class for formulas.  Supports ``&``, ``|``, ``~`` and ``>>``."""

    __slots__ = ()

    def variables(self) -> FrozenSet[Var]:
        """Return ``var(ϕ)``: the set of variables mentioned by the formula."""
        raise NotImplementedError

    def __and__(self, other: "Formula") -> "And":
        return And(_as_formula(self), _as_formula(other))

    def __or__(self, other: "Formula") -> "Or":
        return Or(_as_formula(self), _as_formula(other))

    def __invert__(self) -> "Not":
        return Not(self)

    def __rshift__(self, consequent: "Formula") -> "Rule":
        return Rule(self, _as_formula(consequent))

    def conjuncts(self) -> Tuple["Formula", ...]:
        """Flatten nested conjunctions into a tuple of conjuncts."""
        return (self,)

    def disjuncts(self) -> Tuple["Formula", ...]:
        """Flatten nested disjunctions into a tuple of disjuncts."""
        return (self,)

    def atoms(self) -> Iterator["Atom"]:
        """Yield every atom appearing anywhere in the formula."""
        raise NotImplementedError

    def to_text(self) -> str:
        """Return the concrete-syntax form accepted by :mod:`repro.rules.parser`."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.to_text()


def _as_formula(value: object) -> "Formula":
    if isinstance(value, Formula):
        return value
    raise RuleError(f"expected a formula, got {type(value).__name__}")


class Atom(Formula):
    """Base class for atomic formulas."""

    __slots__ = ()

    def atoms(self) -> Iterator["Atom"]:
        yield self


@dataclass(frozen=True)
class ValIs(Atom):
    """``val(c) = i`` with ``i ∈ {0, 1}``."""

    var: Var
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise RuleError(f"val(c) can only be compared against 0 or 1, got {self.value!r}")

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.var})

    def to_text(self) -> str:
        return f"val({self.var}) = {self.value}"


@dataclass(frozen=True)
class SubjIs(Atom):
    """``subj(c) = u`` for a constant URI ``u``.

    The paper notes it is natural to exclude such atoms (structuredness
    should not depend on one particular subject); they are supported by the
    naive and backtracking evaluators but rejected by the signature-level
    machinery.
    """

    var: Var
    uri: URI

    def __post_init__(self) -> None:
        object.__setattr__(self, "uri", coerce_uri(self.uri))

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.var})

    def to_text(self) -> str:
        return f"subj({self.var}) = <{self.uri}>"


@dataclass(frozen=True)
class PropIs(Atom):
    """``prop(c) = u`` for a constant URI ``u``."""

    var: Var
    uri: URI

    def __post_init__(self) -> None:
        object.__setattr__(self, "uri", coerce_uri(self.uri))

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.var})

    def to_text(self) -> str:
        return f"prop({self.var}) = <{self.uri}>"


@dataclass(frozen=True)
class VarEq(Atom):
    """``c1 = c2`` (the two variables point at the very same cell)."""

    left: Var
    right: Var

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.left, self.right})

    def to_text(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class ValEq(Atom):
    """``val(c1) = val(c2)``."""

    left: Var
    right: Var

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.left, self.right})

    def to_text(self) -> str:
        return f"val({self.left}) = val({self.right})"


@dataclass(frozen=True)
class SubjEq(Atom):
    """``subj(c1) = subj(c2)``."""

    left: Var
    right: Var

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.left, self.right})

    def to_text(self) -> str:
        return f"subj({self.left}) = subj({self.right})"


@dataclass(frozen=True)
class PropEq(Atom):
    """``prop(c1) = prop(c2)``."""

    left: Var
    right: Var

    def variables(self) -> FrozenSet[Var]:
        return frozenset({self.left, self.right})

    def to_text(self) -> str:
        return f"prop({self.left}) = prop({self.right})"


@dataclass(frozen=True)
class Not(Formula):
    """``(¬ ϕ)``."""

    operand: Formula

    def variables(self) -> FrozenSet[Var]:
        return self.operand.variables()

    def atoms(self) -> Iterator[Atom]:
        yield from self.operand.atoms()

    def to_text(self) -> str:
        return f"not ({self.operand.to_text()})"


class _NaryFormula(Formula):
    """Shared implementation for conjunction and disjunction."""

    __slots__ = ("operands",)
    _symbol = "?"

    def __init__(self, *operands: Formula):
        flat: list[Formula] = []
        for operand in operands:
            operand = _as_formula(operand)
            if isinstance(operand, type(self)):
                flat.extend(operand.operands)
            else:
                flat.append(operand)
        if len(flat) < 2:
            raise RuleError(f"{type(self).__name__} needs at least two operands")
        self.operands: Tuple[Formula, ...] = tuple(flat)

    def variables(self) -> FrozenSet[Var]:
        result: FrozenSet[Var] = frozenset()
        for operand in self.operands:
            result |= operand.variables()
        return result

    def atoms(self) -> Iterator[Atom]:
        for operand in self.operands:
            yield from operand.atoms()

    def to_text(self) -> str:
        parts = []
        for operand in self.operands:
            text = operand.to_text()
            if isinstance(operand, _NaryFormula) and not isinstance(operand, type(self)):
                text = f"({text})"
            parts.append(text)
        return f" {self._symbol} ".join(parts)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self.operands == other.operands

    def __ne__(self, other: object) -> bool:
        return not self.__eq__(other)

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.operands))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(repr(op) for op in self.operands)
        return f"{type(self).__name__}({inner})"


class And(_NaryFormula):
    """``(ϕ1 ∧ ϕ2 ∧ ...)``."""

    _symbol = "and"

    def conjuncts(self) -> Tuple[Formula, ...]:
        result: list[Formula] = []
        for operand in self.operands:
            result.extend(operand.conjuncts())
        return tuple(result)


class Or(_NaryFormula):
    """``(ϕ1 ∨ ϕ2 ∨ ...)``."""

    _symbol = "or"

    def disjuncts(self) -> Tuple[Formula, ...]:
        result: list[Formula] = []
        for operand in self.operands:
            result.extend(operand.disjuncts())
        return tuple(result)


# --------------------------------------------------------------------------- #
# Rules
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Rule:
    """A structuredness rule ``ϕ1 ↦ ϕ2`` with ``var(ϕ2) ⊆ var(ϕ1)``.

    The associated structuredness function is

    ``σ_r(M) = |total(ϕ1 ∧ ϕ2, M)| / |total(ϕ1, M)|``

    with the convention ``σ_r(M) = 1`` when ``|total(ϕ1, M)| = 0``.
    """

    antecedent: Formula
    consequent: Formula
    name: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.antecedent, Formula) or not isinstance(self.consequent, Formula):
            raise RuleError("both sides of a rule must be formulas")
        extra = self.consequent.variables() - self.antecedent.variables()
        if extra:
            names = ", ".join(sorted(v.name for v in extra))
            raise RuleError(
                f"the consequent mentions variables not bound by the antecedent: {names}"
            )

    def variables(self) -> FrozenSet[Var]:
        """Return ``var(ϕ1)`` (which contains ``var(ϕ2)``)."""
        return self.antecedent.variables()

    @property
    def arity(self) -> int:
        """The number of variables of the rule (drives evaluation cost)."""
        return len(self.variables())

    def combined(self) -> Formula:
        """Return ``ϕ1 ∧ ϕ2``, the formula of the favourable cases."""
        return And(self.antecedent, self.consequent)

    def with_name(self, name: str) -> "Rule":
        """Return the same rule tagged with a display name."""
        return Rule(self.antecedent, self.consequent, name=name)

    def uses_subject_constants(self) -> bool:
        """Whether the rule mentions ``subj(c) = <uri>`` atoms anywhere."""
        atoms = list(self.antecedent.atoms()) + list(self.consequent.atoms())
        return any(isinstance(atom, SubjIs) for atom in atoms)

    def to_text(self) -> str:
        """Return the concrete syntax ``antecedent -> consequent``."""
        return f"{self.antecedent.to_text()} -> {self.consequent.to_text()}"

    def __str__(self) -> str:
        return self.name or self.to_text()


# --------------------------------------------------------------------------- #
# Constructor helpers (read better than the raw dataclasses)
# --------------------------------------------------------------------------- #
def val_is(var: Var, value: int) -> ValIs:
    """``val(var) = value`` with value in {0, 1}."""
    return ValIs(var, value)


def subj_is(var: Var, uri: object) -> SubjIs:
    """``subj(var) = uri`` for a constant URI."""
    return SubjIs(var, coerce_uri(uri))


def prop_is(var: Var, uri: object) -> PropIs:
    """``prop(var) = uri`` for a constant URI."""
    return PropIs(var, coerce_uri(uri))


def var_eq(left: Var, right: Var) -> VarEq:
    """``left = right`` (same cell)."""
    return VarEq(left, right)


def same_val(left: Var, right: Var) -> ValEq:
    """``val(left) = val(right)``."""
    return ValEq(left, right)


def same_subj(left: Var, right: Var) -> SubjEq:
    """``subj(left) = subj(right)``."""
    return SubjEq(left, right)


def same_prop(left: Var, right: Var) -> PropEq:
    """``prop(left) = prop(right)``."""
    return PropEq(left, right)


def conjunction(*formulas: Formula) -> Formula:
    """Conjoin formulas; a single formula is returned unchanged."""
    cleaned = [f for f in formulas if f is not None]
    if not cleaned:
        raise RuleError("conjunction() needs at least one formula")
    if len(cleaned) == 1:
        return cleaned[0]
    return And(*cleaned)


def disjunction(*formulas: Formula) -> Formula:
    """Disjoin formulas; a single formula is returned unchanged."""
    cleaned = [f for f in formulas if f is not None]
    if not cleaned:
        raise RuleError("disjunction() needs at least one formula")
    if len(cleaned) == 1:
        return cleaned[0]
    return Or(*cleaned)
