"""A text parser for the rule language.

Concrete syntax (case-insensitive keywords)::

    rule      :=  formula "->" formula
    formula   :=  disjunct ( ("or" | "|") disjunct )*
    disjunct  :=  conjunct ( ("and" | "&") conjunct )*
    conjunct  :=  ("not" | "!" | "~") conjunct  |  "(" formula ")"  |  atom
    atom      :=  term ("=" | "!=") term
    term      :=  "val"  "(" variable ")"
               |  "subj" "(" variable ")"
               |  "prop" "(" variable ")"
               |  variable
               |  "0" | "1"
               |  "<" uri ">"  |  '"' uri '"'

Variables are bare identifiers (``c``, ``c1``, ``x`` ...); URIs must be
enclosed in angle brackets or double quotes so they can never be confused
with variables.  ``a != b`` is sugar for ``not (a = b)``.

The accepted atoms are exactly those of Section 3.1; anything else (for
example ``val(c) = prop(c)``) is rejected with a :class:`ParseError`.

Examples
--------
>>> parse_rule("c = c -> val(c) = 1")                    # the Cov rule
>>> parse_rule(
...     "not (c1 = c2) and prop(c1) = prop(c2) and val(c1) = 1 -> val(c2) = 1"
... )                                                     # the Sim rule
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from repro.exceptions import ParseError
from repro.rdf.terms import URI
from repro.rules.ast import (
    And,
    Formula,
    Not,
    Or,
    PropEq,
    PropIs,
    Rule,
    SubjEq,
    SubjIs,
    ValEq,
    ValIs,
    Var,
    VarEq,
)

__all__ = ["parse_rule", "parse_formula", "tokenize"]


_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ARROW>->|↦|\|->)
  | (?P<URI><[^<>\s]+>|"[^"]+")
  | (?P<NEQ>!=|≠)
  | (?P<EQ>=)
  | (?P<AND>∧|&&|&)
  | (?P<OR>∨|\|\||\|)
  | (?P<NOT>¬|!|~)
  | (?P<LPAR>\()
  | (?P<RPAR>\))
  | (?P<BIT>[01](?![\w]))
  | (?P<IDENT>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<WS>\s+)
  | (?P<BAD>.)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"val", "subj", "prop", "and", "or", "not"}


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def tokenize(text: str) -> List[_Token]:
    """Tokenise rule text, raising :class:`ParseError` on unknown characters."""
    tokens: List[_Token] = []
    for match in _TOKEN_PATTERN.finditer(text):
        kind = match.lastgroup or "BAD"
        value = match.group()
        if kind == "WS":
            continue
        if kind == "BAD":
            raise ParseError(f"unexpected character {value!r}", column=match.start() + 1)
        if kind == "IDENT":
            lowered = value.lower()
            if lowered in ("and",):
                kind = "AND"
            elif lowered in ("or",):
                kind = "OR"
            elif lowered in ("not",):
                kind = "NOT"
            elif lowered in ("val", "subj", "prop"):
                kind = lowered.upper()
        tokens.append(_Token(kind, value, match.start()))
    return tokens


#: Parsed terms are one of: ("val", Var), ("subj", Var), ("prop", Var),
#: ("var", Var), ("bit", 0/1) or ("uri", URI).
_Term = Tuple[str, Union[Var, int, URI]]


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, tokens: List[_Token], text: str):
        self._tokens = tokens
        self._text = text
        self._index = 0

    # -- token helpers ----------------------------------------------------- #
    def _peek(self) -> Optional[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input", column=len(self._text) + 1)
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.text!r}", column=token.position + 1
            )
        return token

    def _accept(self, kind: str) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind:
            self._index += 1
            return token
        return None

    # -- grammar ----------------------------------------------------------- #
    def parse_rule(self) -> Rule:
        antecedent = self.parse_formula()
        self._expect("ARROW")
        consequent = self.parse_formula()
        self._ensure_done()
        return Rule(antecedent, consequent)

    def parse_single_formula(self) -> Formula:
        formula = self.parse_formula()
        self._ensure_done()
        return formula

    def _ensure_done(self) -> None:
        token = self._peek()
        if token is not None:
            raise ParseError(
                f"unexpected trailing input starting at {token.text!r}",
                column=token.position + 1,
            )

    def parse_formula(self) -> Formula:
        left = self.parse_disjunct()
        operands = [left]
        while self._accept("OR"):
            operands.append(self.parse_disjunct())
        if len(operands) == 1:
            return operands[0]
        return Or(*operands)

    def parse_disjunct(self) -> Formula:
        left = self.parse_conjunct()
        operands = [left]
        while self._accept("AND"):
            operands.append(self.parse_conjunct())
        if len(operands) == 1:
            return operands[0]
        return And(*operands)

    def parse_conjunct(self) -> Formula:
        if self._accept("NOT"):
            return Not(self.parse_conjunct())
        if self._accept("LPAR"):
            inner = self.parse_formula()
            self._expect("RPAR")
            return inner
        return self.parse_atom()

    def parse_atom(self) -> Formula:
        left = self.parse_term()
        operator = self._next()
        if operator.kind not in ("EQ", "NEQ"):
            raise ParseError(
                f"expected '=' or '!=' but found {operator.text!r}",
                column=operator.position + 1,
            )
        right = self.parse_term()
        atom = self._build_atom(left, right, operator)
        if operator.kind == "NEQ":
            return Not(atom)
        return atom

    def parse_term(self) -> _Term:
        token = self._next()
        if token.kind in ("VAL", "SUBJ", "PROP"):
            self._expect("LPAR")
            var_token = self._expect("IDENT")
            self._expect("RPAR")
            return (token.kind.lower(), Var(var_token.text))
        if token.kind == "IDENT":
            return ("var", Var(token.text))
        if token.kind == "BIT":
            return ("bit", int(token.text))
        if token.kind == "URI":
            return ("uri", URI(token.text[1:-1]))
        raise ParseError(f"unexpected token {token.text!r}", column=token.position + 1)

    def _build_atom(self, left: _Term, right: _Term, operator: _Token) -> Formula:
        kinds = (left[0], right[0])
        column = operator.position + 1

        # Normalise so the "function" side (val/subj/prop/var) comes first.
        if kinds[0] in ("bit", "uri") and kinds[1] not in ("bit", "uri"):
            left, right = right, left
            kinds = (left[0], right[0])

        if kinds == ("val", "bit"):
            return ValIs(left[1], right[1])
        if kinds == ("val", "val"):
            return ValEq(left[1], right[1])
        if kinds == ("subj", "uri"):
            return SubjIs(left[1], right[1])
        if kinds == ("subj", "subj"):
            return SubjEq(left[1], right[1])
        if kinds == ("prop", "uri"):
            return PropIs(left[1], right[1])
        if kinds == ("prop", "prop"):
            return PropEq(left[1], right[1])
        if kinds == ("var", "var"):
            return VarEq(left[1], right[1])
        raise ParseError(
            f"the comparison '{left[0]} {operator.text} {right[0]}' is not part of the language",
            column=column,
        )


def parse_rule(text: str) -> Rule:
    """Parse rule text ``"antecedent -> consequent"`` into a :class:`Rule`."""
    return _Parser(tokenize(text), text).parse_rule()


def parse_formula(text: str) -> Formula:
    """Parse a single formula (no ``->``) into a :class:`Formula`."""
    return _Parser(tokenize(text), text).parse_single_formula()
