"""Signature-level evaluation: rough assignments and ``count(ϕ, τ, M)``.

Section 6 of the paper reduces the sort-refinement problem to ILP by
working with *rough variable assignments*: instead of assigning each rule
variable to a concrete cell ``(subject, property)``, a rough assignment
``τ`` assigns each variable to a pair ``(signature, property)``.  The
quantity ``count(ϕ, τ, M)`` is the number of concrete assignments that are
compatible with ``τ`` and satisfy ``ϕ``; it is computed offline and becomes
a constant coefficient of the ILP.

Because all subjects sharing a signature are structurally identical, the
concrete assignments compatible with ``τ`` differ only in *which* subjects
of each signature set are picked and whether distinct variables pick the
same subject.  ``count`` therefore reduces to a small combinatorial sum
over the ways of co-identifying variables (set partitions restricted to
variables with equal signatures), weighted by falling factorials of the
signature-set sizes.

The same machinery also evaluates ``σ_r`` for a whole dataset directly at
the signature level (:func:`sigma_by_signatures`), which is how the
experiments compute structuredness for datasets with hundreds of thousands
of subjects: the cost depends on the number of signatures, not on the
number of subjects.

Rules that mention ``subj(c) = <uri>`` constants are rejected here: such
rules are not signature-generic (the paper argues they should be excluded
anyway since structuredness should not depend on one particular subject).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.caching import IdentityWeakCache
from repro.exceptions import EvaluationError
from repro.matrix.signatures import Signature, SignatureTable
from repro.rdf.terms import URI
from repro.rules.ast import (
    And,
    Atom,
    Formula,
    Not,
    Or,
    PropEq,
    PropIs,
    Rule,
    SubjEq,
    SubjIs,
    ValEq,
    ValIs,
    Var,
    VarEq,
)

__all__ = [
    "RoughAssignment",
    "RoughCase",
    "count_rough",
    "enumerate_rough_assignments",
    "rule_counts",
    "sigma_by_signatures",
    "sigma_by_signatures_fraction",
    "set_partitions",
    "falling_factorial",
]

#: A rough assignment maps each rule variable to a (signature, property) pair.
RoughAssignment = Dict[Var, Tuple[Signature, URI]]


class RoughCase:
    """One rough assignment together with its total/favourable counts.

    These triples are exactly the constants ``count(ϕ1, τ, M)`` and
    ``count(ϕ1 ∧ ϕ2, τ, M)`` that appear in the ILP threshold constraint.
    """

    __slots__ = ("assignment", "total", "favourable")

    def __init__(self, assignment: RoughAssignment, total: int, favourable: int):
        self.assignment = assignment
        self.total = total
        self.favourable = favourable

    @property
    def signatures(self) -> Tuple[Signature, ...]:
        """The signatures mentioned by the rough assignment (with repeats)."""
        return tuple(sig for sig, _prop in self.assignment.values())

    @property
    def properties(self) -> Tuple[URI, ...]:
        """The properties mentioned by the rough assignment (with repeats)."""
        return tuple(prop for _sig, prop in self.assignment.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RoughCase total={self.total} favourable={self.favourable}>"


@lru_cache(maxsize=None)
def _falling_factorial_cached(n: int, k: int) -> int:
    result = 1
    for i in range(k):
        if n - i <= 0:
            return 0
        result *= n - i
    return result


def falling_factorial(n: int, k: int) -> int:
    """Return ``n · (n-1) · ... · (n-k+1)`` (1 when k = 0, 0 when k > n).

    Memoized: the counting loops evaluate the same ``(size, blocks)``
    pairs for every rough assignment of a rule, and the distinct pairs
    are few (signature-set sizes × small partition widths).
    """
    if k < 0:
        raise EvaluationError("falling_factorial needs k >= 0")
    return _falling_factorial_cached(n, k)


def set_partitions(items: Sequence) -> Iterator[List[List]]:
    """Yield every set partition of ``items`` (order of blocks is irrelevant)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        # put ``first`` in its own block
        yield [[first]] + [list(block) for block in partition]
        # or add it to an existing block
        for index in range(len(partition)):
            new_partition = [list(block) for block in partition]
            new_partition[index].append(first)
            yield new_partition


@lru_cache(maxsize=None)
def _frozen_partitions(items: Tuple) -> Tuple[Tuple[Tuple, ...], ...]:
    """Every set partition of ``items`` as immutable (shareable) tuples.

    The counting core re-partitions the *same* variable groups for every
    rough assignment of a rule; memoizing on the variable tuple hoists
    the partition enumeration out of the per-assignment work entirely
    (the distinct keys are the rules' variable groups — a handful).
    """
    return tuple(
        tuple(tuple(block) for block in partition) for partition in set_partitions(items)
    )


@lru_cache(maxsize=None)
def _variable_pair_keys(variables: Tuple) -> Tuple[frozenset, ...]:
    """The unordered variable pairs of a rule, memoized per variable tuple."""
    return tuple(
        frozenset({a, b})
        for i, a in enumerate(variables)
        for b in variables[i + 1 :]
    )


# --------------------------------------------------------------------------- #
# Indexed view of a signature table
# --------------------------------------------------------------------------- #
class _IndexedTable:
    """Array view of a :class:`SignatureTable` for signature-level counting.

    Rough assignments are evaluated over *indices*: a variable binds to a
    ``(signature index, property index)`` pair, property membership is one
    lookup in the boolean support matrix (the unpacked bitset rows of the
    table), and signature-set sizes come from the count vector.  This keeps
    the inner enumeration loops free of frozenset hashing entirely.
    """

    __slots__ = ("signatures", "properties", "support", "counts", "prop_index", "sig_index")

    def __init__(self, table: SignatureTable):
        self.signatures: Tuple[Signature, ...] = table.signatures
        self.properties: Tuple[URI, ...] = table.properties
        self.support = table.support_matrix()
        self.counts: List[int] = [int(c) for c in table.count_vector()]
        self.prop_index: Dict[URI, int] = {p: j for j, p in enumerate(self.properties)}
        self.sig_index: Dict[Signature, int] = {s: i for i, s in enumerate(self.signatures)}


#: SignatureTable defines value equality without hashing, so the indexed
#: views are cached per table *identity* (weakref-guarded against id reuse).
_INDEXED_CACHE: IdentityWeakCache = IdentityWeakCache()


def _indexed_view(table: SignatureTable) -> _IndexedTable:
    return _INDEXED_CACHE.get_or_create(table, _IndexedTable)


#: An indexed rough assignment: variable -> (signature index, property index).
_IndexedAssignment = Dict[Var, Tuple[int, int]]


# --------------------------------------------------------------------------- #
# Rough satisfaction
# --------------------------------------------------------------------------- #
def _rough_satisfies(
    formula: Formula,
    tau: _IndexedAssignment,
    same_subject: Dict[frozenset, bool],
    ctx: _IndexedTable,
) -> bool:
    """Evaluate ``ϕ`` under an indexed rough assignment and a subject pattern.

    ``same_subject`` maps ``frozenset({a, b})`` to whether variables a and b
    are bound to the same subject.  Variables with different signatures can
    never share a subject, which the caller guarantees.
    """
    if isinstance(formula, ValIs):
        si, pj = tau[formula.var]
        return bool(ctx.support[si, pj]) == bool(formula.value)
    if isinstance(formula, PropIs):
        _si, pj = tau[formula.var]
        return ctx.prop_index.get(formula.uri, -1) == pj
    if isinstance(formula, SubjIs):
        raise EvaluationError(
            "rules mentioning subj(c) = <uri> cannot be evaluated at the signature level"
        )
    if isinstance(formula, VarEq):
        if formula.left == formula.right:
            return True
        same = same_subject[frozenset({formula.left, formula.right})]
        return same and tau[formula.left][1] == tau[formula.right][1]
    if isinstance(formula, SubjEq):
        if formula.left == formula.right:
            return True
        return same_subject[frozenset({formula.left, formula.right})]
    if isinstance(formula, PropEq):
        return tau[formula.left][1] == tau[formula.right][1]
    if isinstance(formula, ValEq):
        si_l, pj_l = tau[formula.left]
        si_r, pj_r = tau[formula.right]
        return bool(ctx.support[si_l, pj_l]) == bool(ctx.support[si_r, pj_r])
    if isinstance(formula, Not):
        return not _rough_satisfies(formula.operand, tau, same_subject, ctx)
    if isinstance(formula, And):
        return all(_rough_satisfies(op, tau, same_subject, ctx) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_rough_satisfies(op, tau, same_subject, ctx) for op in formula.operands)
    raise EvaluationError(f"unsupported formula node: {type(formula).__name__}")


def _count_rough_indexed(formula: Formula, tau: _IndexedAssignment, ctx: _IndexedTable) -> int:
    """Index-level core of :func:`count_rough`."""
    variables = sorted(formula.variables())
    missing = [v for v in variables if v not in tau]
    if missing:
        names = ", ".join(v.name for v in missing)
        raise EvaluationError(f"rough assignment does not bind variables: {names}")

    # Group variables by signature: only variables with identical signatures
    # can possibly be bound to the same subject.
    groups: Dict[int, List[Var]] = {}
    for variable in variables:
        groups.setdefault(tau[variable][0], []).append(variable)

    # Pre-compute, for each signature group, its possible partitions into
    # co-referent blocks and the number of injective subject choices each
    # partition admits.  The partitions themselves are memoized per
    # variable group and the falling factorials per (size, blocks) pair,
    # so the per-assignment cost is assembling the weighted options list.
    group_options: List[List[Tuple[Tuple[Tuple[Var, ...], ...], int]]] = []
    for si, members in groups.items():
        size = ctx.counts[si]
        options: List[Tuple[Tuple[Tuple[Var, ...], ...], int]] = []
        for partition in _frozen_partitions(tuple(members)):
            ways = _falling_factorial_cached(size, len(partition))
            if ways > 0:
                options.append((partition, ways))
        if not options:
            return 0
        group_options.append(options)

    total = 0
    pair_keys = _variable_pair_keys(tuple(variables))

    def recurse(index: int, blocks: Tuple[Tuple[Var, ...], ...], weight: int) -> None:
        nonlocal total
        if index == len(group_options):
            same_subject = dict.fromkeys(pair_keys, False)
            for block in blocks:
                for i, a in enumerate(block):
                    for b in block[i + 1 :]:
                        same_subject[frozenset({a, b})] = True
            if _rough_satisfies(formula, tau, same_subject, ctx):
                total += weight
            return
        for partition, ways in group_options[index]:
            recurse(index + 1, blocks + partition, weight * ways)

    recurse(0, (), 1)
    return total


def count_rough(formula: Formula, tau: RoughAssignment, table: SignatureTable) -> int:
    """Return ``count(ϕ, τ, M)``: concrete assignments compatible with ``τ`` satisfying ``ϕ``.

    The rough assignment must bind every variable of the formula.  The
    assignment maps variables to ``(signature, property)`` pairs; internally
    the computation runs over the table's indexed (bitset) view.
    """
    variables = sorted(formula.variables())
    missing = [v for v in variables if v not in tau]
    if missing:
        names = ", ".join(v.name for v in missing)
        raise EvaluationError(f"rough assignment does not bind variables: {names}")
    ctx = _indexed_view(table)
    indexed: _IndexedAssignment = {}
    extra_props: List[URI] = []
    for variable in variables:
        signature, prop = tau[variable]
        sig = frozenset(signature)
        si = ctx.sig_index.get(sig)
        if si is None:
            # A signature set of size zero admits no concrete assignment.
            return 0
        pj = ctx.prop_index.get(prop)
        if pj is None:
            # Properties outside the table's universe belong to no signature;
            # give them fresh all-zero columns so membership tests are False.
            if prop not in extra_props:
                extra_props.append(prop)
            pj = len(ctx.properties) + extra_props.index(prop)
        indexed[variable] = (si, pj)
    if extra_props:
        extended = _IndexedTable.__new__(_IndexedTable)
        extended.signatures = ctx.signatures
        extended.properties = ctx.properties + tuple(extra_props)
        extended.support = np.hstack(
            [ctx.support, np.zeros((len(ctx.signatures), len(extra_props)), dtype=bool)]
        )
        extended.counts = ctx.counts
        extended.prop_index = {p: j for j, p in enumerate(extended.properties)}
        extended.sig_index = ctx.sig_index
        ctx = extended
    return _count_rough_indexed(formula, indexed, ctx)


# --------------------------------------------------------------------------- #
# Enumerating the relevant rough assignments of a rule
# --------------------------------------------------------------------------- #
def _prunable_conjuncts(formula: Formula) -> List[Formula]:
    """Antecedent conjuncts that depend only on (signature, property) pairs.

    These are exactly the conjuncts that can be used to prune partial rough
    assignments: atoms (or negated atoms) that do not compare subjects.
    """
    prunable: List[Formula] = []
    for conjunct in formula.conjuncts():
        atom = conjunct.operand if isinstance(conjunct, Not) else conjunct
        if isinstance(atom, (ValIs, PropIs, PropEq, ValEq)):
            prunable.append(conjunct)
    return prunable


def _matrix_eval(formula: Formula, ctx: _IndexedTable) -> np.ndarray:
    """Evaluate a single-variable formula over the whole (signature × property) grid.

    Returns a boolean matrix ``m`` with ``m[si, pj]`` the truth value of the
    formula under the rough assignment binding its one variable to
    ``(signature si, property pj)``.  Used by the vectorised fast path of
    :func:`enumerate_rough_assignments`; every atom a one-variable formula
    can contain maps onto a NumPy mask over the support bitset matrix.
    """
    shape = ctx.support.shape
    if isinstance(formula, ValIs):
        return ctx.support if formula.value else ~ctx.support
    if isinstance(formula, PropIs):
        j = ctx.prop_index.get(formula.uri, -1)
        mask = np.zeros(shape, dtype=bool)
        if j >= 0:
            mask[:, j] = True
        return mask
    if isinstance(formula, SubjIs):
        raise EvaluationError(
            "rules mentioning subj(c) = <uri> cannot be evaluated at the signature level"
        )
    if isinstance(formula, (VarEq, SubjEq, PropEq, ValEq)):
        # With a single variable both sides coincide: trivially true.
        return np.ones(shape, dtype=bool)
    if isinstance(formula, Not):
        return ~_matrix_eval(formula.operand, ctx)
    if isinstance(formula, And):
        result = np.ones(shape, dtype=bool)
        for operand in formula.operands:
            result &= _matrix_eval(operand, ctx)
        return result
    if isinstance(formula, Or):
        result = np.zeros(shape, dtype=bool)
        for operand in formula.operands:
            result |= _matrix_eval(operand, ctx)
        return result
    raise EvaluationError(f"unsupported formula node: {type(formula).__name__}")


def _enumerate_single_variable(
    rule: Rule,
    variable: Var,
    ctx: _IndexedTable,
    keep_zero_total: bool,
) -> Iterator[RoughCase]:
    """Vectorised enumeration for one-variable rules (Cov and its variants).

    The antecedent and the combined formula are evaluated for *all*
    (signature, property) pairs at once as boolean matrices; totals are the
    signature sizes wherever the antecedent holds.  Yield order matches the
    generic path (signatures outer, properties inner).
    """
    if ctx.support.size == 0:
        return
    antecedent = _matrix_eval(rule.antecedent, ctx)
    combined = _matrix_eval(rule.combined(), ctx)
    counts = np.asarray(ctx.counts, dtype=np.int64)[:, None]
    total_matrix = np.where(antecedent, counts, 0)
    favourable_matrix = np.where(antecedent & combined, counts, 0)
    if keep_zero_total:
        rows, cols = np.divmod(np.arange(antecedent.size), antecedent.shape[1])
    else:
        rows, cols = np.nonzero(total_matrix)
    signatures, properties = ctx.signatures, ctx.properties
    for si, pj in zip(rows.tolist(), cols.tolist()):
        tau = {variable: (signatures[si], properties[pj])}
        yield RoughCase(tau, int(total_matrix[si, pj]), int(favourable_matrix[si, pj]))


def enumerate_rough_assignments(
    rule: Rule,
    table: SignatureTable,
    keep_zero_total: bool = False,
) -> Iterator[RoughCase]:
    """Enumerate rough assignments ``τ`` with their total and favourable counts.

    Only assignments with ``count(ϕ1, τ, M) > 0`` are yielded unless
    ``keep_zero_total`` is set (the zero-total ones contribute nothing to
    either σ_r or the ILP constraints, which is also the T-variable pruning
    discussed in DESIGN.md).

    One-variable rules take a fully vectorised path over the support bitset
    matrix; rules with several variables run an indexed backtracking
    enumeration whose partial assignments are pruned by the antecedent
    conjuncts that only depend on (signature, property) pairs.
    """
    if rule.uses_subject_constants():
        raise EvaluationError(
            "rules with subj(c) = <uri> atoms are not supported at the signature level"
        )
    variables = sorted(rule.variables())
    if not variables:
        raise EvaluationError("cannot enumerate rough assignments of a variable-free rule")
    ctx = _indexed_view(table)
    if len(variables) == 1:
        yield from _enumerate_single_variable(rule, variables[0], ctx, keep_zero_total)
        return
    yield from _enumerate_multi_variable(rule, ctx, keep_zero_total)


def _candidate_pairs(ctx: _IndexedTable) -> List[Tuple[int, int]]:
    """Every (signature index, property index) pair of the table, in order."""
    return [
        (si, pj)
        for si in range(len(ctx.signatures))
        for pj in range(len(ctx.properties))
    ]


def _enumerate_multi_variable(
    rule: Rule,
    ctx: _IndexedTable,
    keep_zero_total: bool,
    first_candidates: Optional[Sequence[Tuple[int, int]]] = None,
) -> Iterator[RoughCase]:
    """Backtracking enumeration for rules with several variables.

    ``first_candidates`` optionally restricts the candidate pairs of the
    *first* variable (in sorted order) — the parallel counting path
    chunks the full candidate list this way, which partitions the
    assignment space disjointly: concatenating the chunks' cases in
    chunk order reproduces the serial enumeration exactly.
    """
    variables = sorted(rule.variables())
    prunable = _prunable_conjuncts(rule.antecedent)
    candidates = _candidate_pairs(ctx)
    if first_candidates is None:
        first_candidates = candidates
    combined = rule.combined()
    signatures, properties = ctx.signatures, ctx.properties

    def recurse(index: int, partial: _IndexedAssignment) -> Iterator[RoughCase]:
        if index == len(variables):
            total = _count_rough_indexed(rule.antecedent, partial, ctx)
            if total == 0 and not keep_zero_total:
                return
            favourable = _count_rough_indexed(combined, partial, ctx) if total > 0 else 0
            tau = {
                v: (signatures[si], properties[pj]) for v, (si, pj) in partial.items()
            }
            yield RoughCase(tau, total, favourable)
            return
        variable = variables[index]
        for pair in first_candidates if index == 0 else candidates:
            partial[variable] = pair
            if _partial_ok(prunable, partial):
                yield from recurse(index + 1, partial)
            del partial[variable]

    def _partial_ok(constraints: List[Formula], partial: _IndexedAssignment) -> bool:
        bound = set(partial)
        for constraint in constraints:
            if constraint.variables() <= bound:
                # Subject-identification is irrelevant for prunable conjuncts.
                if not _rough_satisfies(constraint, partial, _ALWAYS_DIFFERENT, ctx):
                    return False
        return True

    yield from recurse(0, {})


class _AlwaysDifferent(dict):
    """A mapping that answers ``False`` for any variable pair (no co-reference)."""

    def __missing__(self, key: object) -> bool:
        return False


_ALWAYS_DIFFERENT: Dict[frozenset, bool] = _AlwaysDifferent()


# --------------------------------------------------------------------------- #
# σ_r at the signature level
# --------------------------------------------------------------------------- #
def rule_counts(rule: Rule, table: SignatureTable, executor=None) -> Tuple[int, int]:
    """``(total, favourable)`` concrete-assignment counts of ``rule``.

    These are the two integers behind ``σ_r = favourable / total`` — the
    sums of :class:`RoughCase` totals and favourables over every rough
    assignment.  One-variable rules are fully vectorised (two boolean
    matrix evaluations and two integer reductions, no per-case Python
    loop).  Multi-variable rules run the backtracking enumeration; when
    ``executor`` is a parallel :class:`~repro.parallel.ParallelExecutor`
    the first variable's candidate pairs are split into contiguous
    chunks counted concurrently on threads — the chunks partition the
    assignment space disjointly, so the summed result is exactly the
    serial one.
    """
    if rule.uses_subject_constants():
        raise EvaluationError(
            "rules with subj(c) = <uri> atoms are not supported at the signature level"
        )
    variables = sorted(rule.variables())
    if not variables:
        raise EvaluationError("cannot enumerate rough assignments of a variable-free rule")
    ctx = _indexed_view(table)
    if len(variables) == 1:
        if ctx.support.size == 0:
            return 0, 0
        antecedent = _matrix_eval(rule.antecedent, ctx)
        combined = _matrix_eval(rule.combined(), ctx)
        counts = np.asarray(ctx.counts, dtype=np.int64)[:, None]
        total = int(np.where(antecedent, counts, 0).sum())
        favourable = int(np.where(antecedent & combined, counts, 0).sum())
        return total, favourable

    def count_cases(first_candidates: Optional[Sequence[Tuple[int, int]]]) -> Tuple[int, int]:
        total = 0
        favourable = 0
        for case in _enumerate_multi_variable(
            rule, ctx, False, first_candidates=first_candidates
        ):
            total += case.total
            favourable += case.favourable
        return total, favourable

    candidates = _candidate_pairs(ctx)
    if executor is None or not getattr(executor, "parallel", False) or len(candidates) <= 1:
        return count_cases(None)
    # Oversplit relative to the worker count so uneven chunks (pruning
    # makes some first-variable pairs far cheaper than others) balance.
    n_chunks = min(len(candidates), executor.jobs * 4)
    bounds = [(len(candidates) * i) // n_chunks for i in range(n_chunks + 1)]
    chunks = [candidates[bounds[i] : bounds[i + 1]] for i in range(n_chunks)]
    results = executor.map(count_cases, chunks, mode="thread")
    return sum(t for t, _f in results), sum(f for _t, f in results)


def sigma_by_signatures_fraction(
    rule: Rule, table: SignatureTable, executor=None
) -> Fraction:
    """Evaluate ``σ_r`` over a signature table, returning an exact fraction.

    ``executor`` optionally parallelises the underlying
    :func:`rule_counts`; the fraction is identical either way.
    """
    total, favourable = rule_counts(rule, table, executor=executor)
    if total == 0:
        return Fraction(1)
    return Fraction(favourable, total)


def sigma_by_signatures(rule: Rule, table: SignatureTable, executor=None) -> float:
    """Evaluate ``σ_r`` over a signature table, returning a float."""
    return float(sigma_by_signatures_fraction(rule, table, executor=executor))
