"""Signature-level evaluation: rough assignments and ``count(ϕ, τ, M)``.

Section 6 of the paper reduces the sort-refinement problem to ILP by
working with *rough variable assignments*: instead of assigning each rule
variable to a concrete cell ``(subject, property)``, a rough assignment
``τ`` assigns each variable to a pair ``(signature, property)``.  The
quantity ``count(ϕ, τ, M)`` is the number of concrete assignments that are
compatible with ``τ`` and satisfy ``ϕ``; it is computed offline and becomes
a constant coefficient of the ILP.

Because all subjects sharing a signature are structurally identical, the
concrete assignments compatible with ``τ`` differ only in *which* subjects
of each signature set are picked and whether distinct variables pick the
same subject.  ``count`` therefore reduces to a small combinatorial sum
over the ways of co-identifying variables (set partitions restricted to
variables with equal signatures), weighted by falling factorials of the
signature-set sizes.

The same machinery also evaluates ``σ_r`` for a whole dataset directly at
the signature level (:func:`sigma_by_signatures`), which is how the
experiments compute structuredness for datasets with hundreds of thousands
of subjects: the cost depends on the number of signatures, not on the
number of subjects.

Rules that mention ``subj(c) = <uri>`` constants are rejected here: such
rules are not signature-generic (the paper argues they should be excluded
anyway since structuredness should not depend on one particular subject).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import EvaluationError
from repro.matrix.signatures import Signature, SignatureTable
from repro.rdf.terms import URI
from repro.rules.ast import (
    And,
    Atom,
    Formula,
    Not,
    Or,
    PropEq,
    PropIs,
    Rule,
    SubjEq,
    SubjIs,
    ValEq,
    ValIs,
    Var,
    VarEq,
)

__all__ = [
    "RoughAssignment",
    "RoughCase",
    "count_rough",
    "enumerate_rough_assignments",
    "sigma_by_signatures",
    "sigma_by_signatures_fraction",
    "set_partitions",
    "falling_factorial",
]

#: A rough assignment maps each rule variable to a (signature, property) pair.
RoughAssignment = Dict[Var, Tuple[Signature, URI]]


class RoughCase:
    """One rough assignment together with its total/favourable counts.

    These triples are exactly the constants ``count(ϕ1, τ, M)`` and
    ``count(ϕ1 ∧ ϕ2, τ, M)`` that appear in the ILP threshold constraint.
    """

    __slots__ = ("assignment", "total", "favourable")

    def __init__(self, assignment: RoughAssignment, total: int, favourable: int):
        self.assignment = assignment
        self.total = total
        self.favourable = favourable

    @property
    def signatures(self) -> Tuple[Signature, ...]:
        """The signatures mentioned by the rough assignment (with repeats)."""
        return tuple(sig for sig, _prop in self.assignment.values())

    @property
    def properties(self) -> Tuple[URI, ...]:
        """The properties mentioned by the rough assignment (with repeats)."""
        return tuple(prop for _sig, prop in self.assignment.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RoughCase total={self.total} favourable={self.favourable}>"


def falling_factorial(n: int, k: int) -> int:
    """Return ``n · (n-1) · ... · (n-k+1)`` (1 when k = 0, 0 when k > n)."""
    if k < 0:
        raise EvaluationError("falling_factorial needs k >= 0")
    result = 1
    for i in range(k):
        if n - i <= 0:
            return 0
        result *= n - i
    return result


def set_partitions(items: Sequence) -> Iterator[List[List]]:
    """Yield every set partition of ``items`` (order of blocks is irrelevant)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        # put ``first`` in its own block
        yield [[first]] + [list(block) for block in partition]
        # or add it to an existing block
        for index in range(len(partition)):
            new_partition = [list(block) for block in partition]
            new_partition[index].append(first)
            yield new_partition


# --------------------------------------------------------------------------- #
# Rough satisfaction
# --------------------------------------------------------------------------- #
def _rough_satisfies(
    formula: Formula,
    tau: RoughAssignment,
    same_subject: Dict[frozenset, bool],
) -> bool:
    """Evaluate ``ϕ`` under a rough assignment and a subject-identification pattern.

    ``same_subject`` maps ``frozenset({a, b})`` to whether variables a and b
    are bound to the same subject.  Variables with different signatures can
    never share a subject, which the caller guarantees.
    """
    if isinstance(formula, ValIs):
        signature, prop = tau[formula.var]
        return (prop in signature) == bool(formula.value)
    if isinstance(formula, PropIs):
        _signature, prop = tau[formula.var]
        return prop == formula.uri
    if isinstance(formula, SubjIs):
        raise EvaluationError(
            "rules mentioning subj(c) = <uri> cannot be evaluated at the signature level"
        )
    if isinstance(formula, VarEq):
        if formula.left == formula.right:
            return True
        same = same_subject[frozenset({formula.left, formula.right})]
        return same and tau[formula.left][1] == tau[formula.right][1]
    if isinstance(formula, SubjEq):
        if formula.left == formula.right:
            return True
        return same_subject[frozenset({formula.left, formula.right})]
    if isinstance(formula, PropEq):
        return tau[formula.left][1] == tau[formula.right][1]
    if isinstance(formula, ValEq):
        sig_l, prop_l = tau[formula.left]
        sig_r, prop_r = tau[formula.right]
        return (prop_l in sig_l) == (prop_r in sig_r)
    if isinstance(formula, Not):
        return not _rough_satisfies(formula.operand, tau, same_subject)
    if isinstance(formula, And):
        return all(_rough_satisfies(op, tau, same_subject) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_rough_satisfies(op, tau, same_subject) for op in formula.operands)
    raise EvaluationError(f"unsupported formula node: {type(formula).__name__}")


def count_rough(formula: Formula, tau: RoughAssignment, table: SignatureTable) -> int:
    """Return ``count(ϕ, τ, M)``: concrete assignments compatible with ``τ`` satisfying ``ϕ``.

    The rough assignment must bind every variable of the formula.
    """
    variables = sorted(formula.variables())
    missing = [v for v in variables if v not in tau]
    if missing:
        names = ", ".join(v.name for v in missing)
        raise EvaluationError(f"rough assignment does not bind variables: {names}")

    # Group variables by signature: only variables with identical signatures
    # can possibly be bound to the same subject.
    groups: Dict[Signature, List[Var]] = {}
    for variable in variables:
        groups.setdefault(tau[variable][0], []).append(variable)

    # Pre-compute, for each signature group, its possible partitions into
    # co-referent blocks and the number of injective subject choices each
    # partition admits.
    group_options: List[List[Tuple[List[List[Var]], int]]] = []
    for signature, members in groups.items():
        size = table.count(signature)
        options: List[Tuple[List[List[Var]], int]] = []
        for partition in set_partitions(members):
            ways = falling_factorial(size, len(partition))
            if ways > 0:
                options.append((partition, ways))
        if not options:
            return 0
        group_options.append(options)

    total = 0
    pair_keys = [
        frozenset({a, b})
        for i, a in enumerate(variables)
        for b in variables[i + 1 :]
    ]

    def recurse(index: int, blocks: List[List[Var]], weight: int) -> None:
        nonlocal total
        if index == len(group_options):
            same_subject = {key: False for key in pair_keys}
            for block in blocks:
                for i, a in enumerate(block):
                    for b in block[i + 1 :]:
                        same_subject[frozenset({a, b})] = True
            if _rough_satisfies(formula, tau, same_subject):
                total += weight
            return
        for partition, ways in group_options[index]:
            recurse(index + 1, blocks + partition, weight * ways)

    recurse(0, [], 1)
    return total


# --------------------------------------------------------------------------- #
# Enumerating the relevant rough assignments of a rule
# --------------------------------------------------------------------------- #
def _prunable_conjuncts(formula: Formula) -> List[Formula]:
    """Antecedent conjuncts that depend only on (signature, property) pairs.

    These are exactly the conjuncts that can be used to prune partial rough
    assignments: atoms (or negated atoms) that do not compare subjects.
    """
    prunable: List[Formula] = []
    for conjunct in formula.conjuncts():
        atom = conjunct.operand if isinstance(conjunct, Not) else conjunct
        if isinstance(atom, (ValIs, PropIs, PropEq, ValEq)):
            prunable.append(conjunct)
    return prunable


def enumerate_rough_assignments(
    rule: Rule,
    table: SignatureTable,
    keep_zero_total: bool = False,
) -> Iterator[RoughCase]:
    """Enumerate rough assignments ``τ`` with their total and favourable counts.

    Only assignments with ``count(ϕ1, τ, M) > 0`` are yielded unless
    ``keep_zero_total`` is set (the zero-total ones contribute nothing to
    either σ_r or the ILP constraints, which is also the T-variable pruning
    discussed in DESIGN.md).
    """
    if rule.uses_subject_constants():
        raise EvaluationError(
            "rules with subj(c) = <uri> atoms are not supported at the signature level"
        )
    variables = sorted(rule.variables())
    if not variables:
        raise EvaluationError("cannot enumerate rough assignments of a variable-free rule")
    prunable = _prunable_conjuncts(rule.antecedent)
    candidates: List[Tuple[Signature, URI]] = [
        (signature, prop) for signature in table.signatures for prop in table.properties
    ]
    combined = rule.combined()

    def recurse(index: int, partial: RoughAssignment) -> Iterator[RoughCase]:
        if index == len(variables):
            tau = dict(partial)
            total = count_rough(rule.antecedent, tau, table)
            if total == 0 and not keep_zero_total:
                return
            favourable = count_rough(combined, tau, table) if total > 0 else 0
            yield RoughCase(tau, total, favourable)
            return
        variable = variables[index]
        for signature, prop in candidates:
            partial[variable] = (signature, prop)
            if _partial_ok(prunable, partial):
                yield from recurse(index + 1, partial)
            del partial[variable]

    def _partial_ok(constraints: List[Formula], partial: RoughAssignment) -> bool:
        bound = set(partial)
        for constraint in constraints:
            if constraint.variables() <= bound:
                # Subject-identification is irrelevant for prunable conjuncts.
                if not _rough_satisfies(constraint, partial, _ALWAYS_DIFFERENT):
                    return False
        return True

    yield from recurse(0, {})


class _AlwaysDifferent(dict):
    """A mapping that answers ``False`` for any variable pair (no co-reference)."""

    def __missing__(self, key: object) -> bool:
        return False


_ALWAYS_DIFFERENT: Dict[frozenset, bool] = _AlwaysDifferent()


# --------------------------------------------------------------------------- #
# σ_r at the signature level
# --------------------------------------------------------------------------- #
def sigma_by_signatures_fraction(rule: Rule, table: SignatureTable) -> Fraction:
    """Evaluate ``σ_r`` over a signature table, returning an exact fraction."""
    total = 0
    favourable = 0
    for case in enumerate_rough_assignments(rule, table):
        total += case.total
        favourable += case.favourable
    if total == 0:
        return Fraction(1)
    return Fraction(favourable, total)


def sigma_by_signatures(rule: Rule, table: SignatureTable) -> float:
    """Evaluate ``σ_r`` over a signature table, returning a float."""
    return float(sigma_by_signatures_fraction(rule, table))
