"""Reference (naive) semantics of the rule language.

This module implements Section 3.2 literally: a *variable assignment* is a
partial function ``ρ : V → S(D) × P(D)`` mapping variables to cells of the
matrix ``M``, satisfaction ``(M, ρ) |= ϕ`` is defined by structural
recursion, ``total(ϕ, M)`` is the set of satisfying assignments, and

``σ_r(M) = |total(ϕ1 ∧ ϕ2, M)| / |total(ϕ1, M)|``  (1 when the denominator is 0).

Everything here enumerates *all* assignments, i.e. ``(|S| · |P|)^n`` of
them for a rule with ``n`` variables.  It is exponentially slower than the
backtracking evaluator (:mod:`repro.rules.evaluator`) and the closed forms
(:mod:`repro.functions.structuredness`) but it is the ground truth the
faster paths are tested against.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Dict, Iterator, List, Tuple

from repro.exceptions import EvaluationError
from repro.matrix.property_matrix import PropertyMatrix
from repro.rules.ast import (
    And,
    Formula,
    Not,
    Or,
    PropEq,
    PropIs,
    Rule,
    SubjEq,
    SubjIs,
    ValEq,
    ValIs,
    Var,
    VarEq,
)

__all__ = [
    "Assignment",
    "satisfies",
    "iter_assignments",
    "iter_satisfying_assignments",
    "count_satisfying_naive",
    "sigma_naive",
    "sigma_naive_fraction",
]

#: An assignment maps each variable to a (row index, column index) cell.
Assignment = Dict[Var, Tuple[int, int]]


def satisfies(matrix: PropertyMatrix, assignment: Assignment, formula: Formula) -> bool:
    """Return whether ``(M, ρ) |= ϕ`` for the given matrix and assignment.

    The assignment must bind every variable of the formula; positions are
    (row index, column index) pairs into ``matrix``.
    """
    missing = formula.variables() - set(assignment)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise EvaluationError(f"assignment does not bind variables: {names}")
    return _satisfies(matrix, assignment, formula)


def _satisfies(matrix: PropertyMatrix, rho: Assignment, formula: Formula) -> bool:
    if isinstance(formula, ValIs):
        row, col = rho[formula.var]
        return matrix.cell_by_index(row, col) == formula.value
    if isinstance(formula, SubjIs):
        row, _col = rho[formula.var]
        return matrix.subjects[row] == formula.uri
    if isinstance(formula, PropIs):
        _row, col = rho[formula.var]
        return matrix.properties[col] == formula.uri
    if isinstance(formula, VarEq):
        return rho[formula.left] == rho[formula.right]
    if isinstance(formula, ValEq):
        row1, col1 = rho[formula.left]
        row2, col2 = rho[formula.right]
        return matrix.cell_by_index(row1, col1) == matrix.cell_by_index(row2, col2)
    if isinstance(formula, SubjEq):
        return rho[formula.left][0] == rho[formula.right][0]
    if isinstance(formula, PropEq):
        return rho[formula.left][1] == rho[formula.right][1]
    if isinstance(formula, Not):
        return not _satisfies(matrix, rho, formula.operand)
    if isinstance(formula, And):
        return all(_satisfies(matrix, rho, operand) for operand in formula.operands)
    if isinstance(formula, Or):
        return any(_satisfies(matrix, rho, operand) for operand in formula.operands)
    raise EvaluationError(f"unsupported formula node: {type(formula).__name__}")


def iter_assignments(matrix: PropertyMatrix, variables: List[Var]) -> Iterator[Assignment]:
    """Yield every assignment of ``variables`` to cells of ``matrix``."""
    cells = [
        (row, col)
        for row in range(matrix.n_subjects)
        for col in range(matrix.n_properties)
    ]
    for combo in itertools.product(cells, repeat=len(variables)):
        yield dict(zip(variables, combo))


def iter_satisfying_assignments(matrix: PropertyMatrix, formula: Formula) -> Iterator[Assignment]:
    """Yield ``total(ϕ, M)``: every assignment with domain ``var(ϕ)`` satisfying ϕ."""
    variables = sorted(formula.variables())
    for assignment in iter_assignments(matrix, variables):
        if _satisfies(matrix, assignment, formula):
            yield assignment


def count_satisfying_naive(matrix: PropertyMatrix, formula: Formula) -> int:
    """Return ``|total(ϕ, M)|`` by brute-force enumeration."""
    return sum(1 for _ in iter_satisfying_assignments(matrix, formula))


def sigma_naive_fraction(rule: Rule, matrix: PropertyMatrix) -> Fraction:
    """Return ``σ_r(M)`` as an exact fraction via brute-force enumeration."""
    total = count_satisfying_naive(matrix, rule.antecedent)
    if total == 0:
        return Fraction(1)
    favourable = count_satisfying_naive(matrix, rule.combined())
    return Fraction(favourable, total)


def sigma_naive(rule: Rule, matrix: PropertyMatrix) -> float:
    """Return ``σ_r(M)`` as a float via brute-force enumeration."""
    return float(sigma_naive_fraction(rule, matrix))
