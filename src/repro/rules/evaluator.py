"""A constraint-propagation evaluator for the rule language.

The naive semantics of :mod:`repro.rules.semantics` enumerates every one of
the ``(|S| · |P|)^n`` assignments of a rule with ``n`` variables.  Most
useful rules, however, are conjunctions of simple atoms over their
antecedent — exactly the structure a classic CSP solver exploits.  This
module counts satisfying assignments with:

* unary constraint propagation — atoms over a single variable prune its
  domain of cells up front (e.g. ``prop(x) = <idp>`` and ``val(x) = 1``
  leave only the 1-cells of one column);
* forward checking — when a variable is assigned, binary atoms prune the
  domains of the still-unassigned variables;
* an MRV (minimum remaining values) variable order;
* a product shortcut — once the remaining variables are mutually
  unconstrained, the number of completions is the product of their domain
  sizes, so they are never enumerated.

Formulas that are not plain conjunctions of atoms (disjunctions, nested
negations) are still handled: the non-atomic conjuncts are kept as
*residual* constraints checked as soon as all their variables are bound.

The evaluator gives exactly the same answers as the naive semantics (this
is property-tested) but makes it feasible to evaluate the 11-variable rule
``r0`` of the NP-hardness reduction (Appendix A) on small graphs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.exceptions import EvaluationError
from repro.matrix.property_matrix import PropertyMatrix
from repro.rules.ast import (
    And,
    Atom,
    Formula,
    Not,
    Or,
    PropEq,
    PropIs,
    Rule,
    SubjEq,
    SubjIs,
    ValEq,
    ValIs,
    Var,
    VarEq,
)
from repro.rules.semantics import Assignment, _satisfies

__all__ = ["RuleEvaluator", "count_satisfying", "sigma", "sigma_fraction"]

Cell = Tuple[int, int]


class _CompiledFormula:
    """A formula split into unary / binary / residual constraints per variable."""

    __slots__ = ("formula", "variables", "unary", "binary", "residual", "unsatisfiable")

    def __init__(self, formula: Formula):
        self.formula = formula
        self.variables: List[Var] = sorted(formula.variables())
        self.unary: Dict[Var, List[Formula]] = {v: [] for v in self.variables}
        self.binary: List[Tuple[Var, Var, Formula]] = []
        self.residual: List[Formula] = []
        self.unsatisfiable = False
        for conjunct in formula.conjuncts():
            self._classify(conjunct)

    def _classify(self, conjunct: Formula) -> None:
        atom = conjunct.operand if isinstance(conjunct, Not) else conjunct
        is_atomic = isinstance(atom, Atom)
        if not is_atomic:
            self.residual.append(conjunct)
            return
        variables = sorted(atom.variables())
        if len(variables) == 1:
            self.unary[variables[0]].append(conjunct)
            return
        # Two distinct variables -- but degenerate atoms such as ``c = c``
        # mention a single variable twice and were already covered above.
        if isinstance(atom, (VarEq, ValEq, SubjEq, PropEq)) and atom.left == atom.right:
            # c = c / val(c) = val(c) ... are tautologies; their negations
            # are contradictions.
            if isinstance(conjunct, Not):
                self.unsatisfiable = True
            return
        self.binary.append((variables[0], variables[1], conjunct))

    def binary_between(self, assigned: Var, unassigned: Var) -> List[Formula]:
        """Constraints linking an assigned and an unassigned variable."""
        result = []
        for left, right, constraint in self.binary:
            if {left, right} == {assigned, unassigned}:
                result.append(constraint)
        return result


class RuleEvaluator:
    """Counts satisfying assignments of formulas over one property matrix.

    Parameters
    ----------
    matrix:
        The property-structure view to evaluate against.

    Notes
    -----
    The evaluator is stateless across calls except for the cached cell list,
    so one instance can be reused for many formulas over the same matrix.
    """

    def __init__(self, matrix: PropertyMatrix):
        self._matrix = matrix
        self._all_cells: List[Cell] = [
            (row, col)
            for row in range(matrix.n_subjects)
            for col in range(matrix.n_properties)
        ]

    @property
    def matrix(self) -> PropertyMatrix:
        """The matrix this evaluator is bound to."""
        return self._matrix

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def count(self, formula: Formula) -> int:
        """Return ``|total(ϕ, M)|``."""
        return self._solve(formula, collect=None)

    def iter_solutions(self, formula: Formula) -> Iterator[Assignment]:
        """Yield every satisfying assignment (domain = ``var(ϕ)``)."""
        solutions: List[Assignment] = []
        self._solve(formula, collect=solutions)
        return iter(solutions)

    def sigma_fraction(self, rule: Rule) -> Fraction:
        """Return ``σ_r(M)`` as an exact fraction."""
        total = self.count(rule.antecedent)
        if total == 0:
            return Fraction(1)
        favourable = self.count(rule.combined())
        return Fraction(favourable, total)

    def sigma(self, rule: Rule) -> float:
        """Return ``σ_r(M)`` as a float."""
        return float(self.sigma_fraction(rule))

    # ------------------------------------------------------------------ #
    # Search
    # ------------------------------------------------------------------ #
    def _solve(self, formula: Formula, collect: Optional[List[Assignment]]) -> int:
        compiled = _CompiledFormula(formula)
        if compiled.unsatisfiable:
            return 0
        if not compiled.variables:
            # A variable-free formula is either a tautology or a contradiction;
            # the only assignment is the empty one.
            if _satisfies(self._matrix, {}, formula):
                if collect is not None:
                    collect.append({})
                return 1
            return 0
        domains: Dict[Var, List[Cell]] = {}
        for variable in compiled.variables:
            domains[variable] = self._initial_domain(variable, compiled)
            if not domains[variable]:
                return 0
        return self._search(compiled, domains, {}, collect)

    def _initial_domain(self, variable: Var, compiled: _CompiledFormula) -> List[Cell]:
        constraints = compiled.unary[variable]
        if not constraints:
            return list(self._all_cells)
        domain = []
        for cell in self._all_cells:
            binding = {variable: cell}
            if all(_satisfies(self._matrix, binding, c) for c in constraints):
                domain.append(cell)
        return domain

    def _search(
        self,
        compiled: _CompiledFormula,
        domains: Dict[Var, List[Cell]],
        assignment: Dict[Var, Cell],
        collect: Optional[List[Assignment]],
    ) -> int:
        unassigned = [v for v in compiled.variables if v not in assignment]
        if not unassigned:
            if self._residuals_hold(compiled, assignment, require_all_bound=True):
                if collect is not None:
                    collect.append(dict(assignment))
                return 1
            return 0

        # Product shortcut: if the remaining variables are pairwise
        # unconstrained and no residual constraint still involves an
        # unassigned variable, every combination of their (already filtered)
        # domains completes the assignment.
        if collect is None and self._can_shortcut(compiled, assignment, unassigned):
            if not self._residuals_hold(compiled, assignment, require_all_bound=False):
                return 0
            product = 1
            for variable in unassigned:
                product *= len(domains[variable])
            return product

        # MRV: branch on the unassigned variable with the fewest candidates.
        variable = min(unassigned, key=lambda v: len(domains[v]))
        rest = [v for v in unassigned if v != variable]
        total = 0
        for cell in domains[variable]:
            assignment[variable] = cell
            new_domains = self._forward_check(compiled, domains, assignment, variable, rest)
            if new_domains is not None:
                total += self._search(compiled, new_domains, assignment, collect)
            del assignment[variable]
        return total

    def _forward_check(
        self,
        compiled: _CompiledFormula,
        domains: Dict[Var, List[Cell]],
        assignment: Dict[Var, Cell],
        just_assigned: Var,
        remaining: Sequence[Var],
    ) -> Optional[Dict[Var, List[Cell]]]:
        new_domains = dict(domains)
        for other in remaining:
            constraints = compiled.binary_between(just_assigned, other)
            if not constraints:
                continue
            filtered = []
            for cell in domains[other]:
                binding = {just_assigned: assignment[just_assigned], other: cell}
                if all(_satisfies(self._matrix, binding, c) for c in constraints):
                    filtered.append(cell)
            if not filtered:
                return None
            new_domains[other] = filtered
        return new_domains

    def _can_shortcut(
        self,
        compiled: _CompiledFormula,
        assignment: Dict[Var, Cell],
        unassigned: Sequence[Var],
    ) -> bool:
        unassigned_set = set(unassigned)
        for left, right, _constraint in compiled.binary:
            if left in unassigned_set and right in unassigned_set:
                return False
        for residual in compiled.residual:
            if residual.variables() & unassigned_set:
                return False
        return True

    def _residuals_hold(
        self,
        compiled: _CompiledFormula,
        assignment: Dict[Var, Cell],
        require_all_bound: bool,
    ) -> bool:
        for residual in compiled.residual:
            free = residual.variables() - set(assignment)
            if free:
                if require_all_bound:
                    raise EvaluationError(
                        "internal error: residual constraint with unbound variables"
                    )
                continue
            if not _satisfies(self._matrix, assignment, residual):
                return False
        return True


def count_satisfying(matrix: PropertyMatrix, formula: Formula) -> int:
    """Count ``|total(ϕ, M)|`` using the constraint-propagation evaluator."""
    return RuleEvaluator(matrix).count(formula)


def sigma_fraction(rule: Rule, matrix: PropertyMatrix) -> Fraction:
    """Return ``σ_r(M)`` as an exact fraction using the evaluator."""
    return RuleEvaluator(matrix).sigma_fraction(rule)


def sigma(rule: Rule, matrix: PropertyMatrix) -> float:
    """Return ``σ_r(M)`` as a float using the evaluator."""
    return RuleEvaluator(matrix).sigma(rule)
