"""The built-in structuredness rules of the paper (Sections 2.2 and 3.2).

Every function returns a :class:`~repro.rules.ast.Rule` carrying a display
name, so the experiment harness can report which rule produced which
refinement.  All of them can also be written in the concrete syntax and
parsed with :func:`repro.rules.parser.parse_rule`; tests assert that the
two constructions coincide.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.exceptions import RuleError
from repro.rdf.terms import URI, coerce_uri
from repro.rules.ast import (
    Not,
    PropIs,
    Rule,
    Var,
    VarEq,
    conjunction,
    disjunction,
    prop_is,
    same_prop,
    same_subj,
    val_is,
    var_eq,
)

__all__ = [
    "coverage",
    "coverage_ignoring",
    "similarity",
    "dependency",
    "symmetric_dependency",
    "conditional_dependency",
    "STANDARD_RULES",
    "standard_rules",
]


def coverage() -> Rule:
    """The σCov rule: ``c = c ↦ val(c) = 1``.

    Cov is the ratio of 1-cells in the property-structure view: it heavily
    penalises missing properties.
    """
    c = Var("c")
    return Rule(var_eq(c, c), val_is(c, 1), name="Cov")


def coverage_ignoring(properties: Iterable[object]) -> Rule:
    """A Cov variant whose antecedent excludes some property columns.

    This is the "modified σCov structuredness measure which ignores a
    specific column" of Section 3.2, generalised to a set of columns; the
    paper uses it in Section 7.4 with the four RDF-syntax properties
    (``type``, ``sameAs``, ``subClassOf``, ``label``).
    """
    props = [coerce_uri(p) for p in properties]
    if not props:
        raise RuleError("coverage_ignoring() needs at least one property to ignore")
    c = Var("c")
    antecedent = conjunction(
        var_eq(c, c), *[Not(prop_is(c, p)) for p in props]
    )
    short = ",".join(p.local_name for p in props)
    return Rule(antecedent, val_is(c, 1), name=f"Cov[ignoring {short}]")


def similarity() -> Rule:
    """The σSim rule: two subjects sharing a property column agree on it.

    ``¬(c1 = c2) ∧ prop(c1) = prop(c2) ∧ val(c1) = 1 ↦ val(c2) = 1``

    σSim is the probability that a property held by one randomly chosen
    subject is also held by another randomly chosen subject; it tolerates
    rare "exotic" properties much better than Cov.
    """
    c1, c2 = Var("c1"), Var("c2")
    antecedent = conjunction(
        Not(var_eq(c1, c2)),
        same_prop(c1, c2),
        val_is(c1, 1),
    )
    return Rule(antecedent, val_is(c2, 1), name="Sim")


def dependency(prop1: object, prop2: object) -> Rule:
    """The σDep[p1, p2] rule: subjects having ``p1`` also have ``p2``.

    ``subj(c1) = subj(c2) ∧ prop(c1) = p1 ∧ prop(c2) = p2 ∧ val(c1) = 1 ↦ val(c2) = 1``
    """
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    c1, c2 = Var("c1"), Var("c2")
    antecedent = conjunction(
        same_subj(c1, c2),
        prop_is(c1, p1),
        prop_is(c2, p2),
        val_is(c1, 1),
    )
    return Rule(antecedent, val_is(c2, 1), name=f"Dep[{p1.local_name}, {p2.local_name}]")


def symmetric_dependency(prop1: object, prop2: object) -> Rule:
    """The σSymDep[p1, p2] rule: having either property implies having both.

    ``subj(c1) = subj(c2) ∧ prop(c1) = p1 ∧ prop(c2) = p2 ∧ (val(c1) = 1 ∨ val(c2) = 1)
    ↦ val(c1) = 1 ∧ val(c2) = 1``
    """
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    c1, c2 = Var("c1"), Var("c2")
    antecedent = conjunction(
        same_subj(c1, c2),
        prop_is(c1, p1),
        prop_is(c2, p2),
        disjunction(val_is(c1, 1), val_is(c2, 1)),
    )
    consequent = conjunction(val_is(c1, 1), val_is(c2, 1))
    return Rule(
        antecedent, consequent, name=f"SymDep[{p1.local_name}, {p2.local_name}]"
    )


def conditional_dependency(prop1: object, prop2: object) -> Rule:
    """The disjunctive-consequent dependency variant of Section 3.2.

    ``subj(c1) = subj(c2) ∧ prop(c1) = p1 ∧ prop(c2) = p2
    ↦ val(c1) = 0 ∨ val(c2) = 1``

    It measures the probability that a random subject satisfies the
    implication "if it has p1, then it has p2".
    """
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    c1, c2 = Var("c1"), Var("c2")
    antecedent = conjunction(
        same_subj(c1, c2),
        prop_is(c1, p1),
        prop_is(c2, p2),
    )
    consequent = disjunction(val_is(c1, 0), val_is(c2, 1))
    return Rule(
        antecedent, consequent, name=f"CondDep[{p1.local_name}, {p2.local_name}]"
    )


#: Names of the parameter-free standard rules, for CLI/registry lookups.
STANDARD_RULES = ("Cov", "Sim")


def standard_rules() -> Sequence[Rule]:
    """Return the parameter-free rules used throughout the experiments."""
    return (coverage(), similarity())
