"""Identity-keyed weak caches for per-object derived data.

Several layers derive expensive views from a :class:`SignatureTable` (the
indexed counting view, the encoder's rough-assignment coefficients, the
incremental sweep state).  The tables define *value* equality without
hashing, so a ``WeakKeyDictionary`` cannot hold them; and a plain
``id()``-keyed dict is unsafe because CPython reuses addresses after
garbage collection.  :class:`IdentityWeakCache` combines both: entries are
keyed by ``id()``, guarded by a weak reference that (a) detects address
reuse by identity check and (b) evicts the entry as soon as the key object
dies, via the weakref's finalizer callback — dead keys never linger until
the next probe of the same address.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Dict, Generic, Optional, Tuple, TypeVar

__all__ = ["IdentityWeakCache"]

K = TypeVar("K")
V = TypeVar("V")


class IdentityWeakCache(Generic[K, V]):
    """A cache mapping *object identity* to a derived value.

    The key object must be weak-referenceable.  Values are held strongly
    until the key object is garbage collected, at which point the entry is
    evicted immediately by the weakref callback.
    """

    __slots__ = ("_entries", "_lock")

    def __init__(self) -> None:
        self._entries: Dict[int, Tuple[weakref.ref, V]] = {}
        # Guards the entry dict and makes get_or_create single-flight:
        # these caches hold exactly the derived views (counting tables,
        # encoder coefficients) a threaded service must not build twice.
        self._lock = threading.RLock()

    def get(self, key: K) -> Optional[V]:
        """Return the cached value for ``key`` or ``None``."""
        with self._lock:
            entry = self._entries.get(id(key))
        if entry is None:
            return None
        ref, value = entry
        if ref() is not key:  # address was reused by a different object
            return None
        return value

    def set(self, key: K, value: V) -> V:
        """Cache ``value`` under the identity of ``key``; return ``value``."""
        key_id = id(key)

        def _evict(ref: weakref.ref, key_id: int = key_id) -> None:
            # Only drop the entry this dying reference belongs to: the slot
            # may have been overwritten for a newer object that was handed
            # the same address, and that entry must survive.
            with self._lock:
                entry = self._entries.get(key_id)
                if entry is not None and entry[0] is ref:
                    del self._entries[key_id]

        with self._lock:
            self._entries[key_id] = (weakref.ref(key, _evict), value)
        return value

    def get_or_create(self, key: K, factory: Callable[[K], V]) -> V:
        """Return the cached value for ``key``, creating it via ``factory``.

        Single-flight under threads: the factory runs inside the cache
        lock, so concurrent callers of the same key build the value once.
        """
        with self._lock:
            value = self.get(key)
            if value is None:
                value = self.set(key, factory(key))
            return value

    def prune(self) -> int:
        """Drop any entries whose key object has died; return how many.

        The weakref callbacks normally keep the cache tight on their own;
        ``prune`` exists as a belt-and-braces sweep (and for tests that
        want to assert the steady state without relying on callback
        ordering).
        """
        with self._lock:
            dead = [key_id for key_id, (ref, _) in self._entries.items() if ref() is None]
            for key_id in dead:
                self._entries.pop(key_id, None)
            return len(dead)

    def clear(self) -> None:
        """Drop every entry."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
