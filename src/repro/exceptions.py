"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError` so that callers can catch library failures without
accidentally swallowing unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class RDFError(ReproError):
    """Problems with RDF terms, triples or graphs."""


class ParseError(ReproError):
    """Raised when parsing N-Triples data or rule text fails."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)
        self.line = line
        self.column = column


class RuleError(ReproError):
    """Raised for malformed rules or formulas (e.g. free consequent variables)."""


class EvaluationError(ReproError):
    """Raised when a structuredness function cannot be evaluated."""


class ILPError(ReproError):
    """Raised for malformed ILP models or solver failures."""


class InfeasibleError(ILPError):
    """Raised when an ILP model is proved infeasible and a solution was required."""


class RefinementError(ReproError):
    """Raised for invalid sort refinements or refinement searches."""


class DatasetError(ReproError):
    """Raised when a synthetic dataset specification is invalid."""


class RequestError(ReproError):
    """Raised when a :mod:`repro.api` request object is malformed."""


class SnapshotError(ReproError):
    """Raised when a dataset snapshot cannot be written, opened or trusted.

    Covers every failure mode of :mod:`repro.storage.snapshots`: magic or
    format-version mismatch, missing or truncated segment files, checksum
    drift, and malformed manifests.  A snapshot either loads completely or
    raises — there is no partial load.
    """
