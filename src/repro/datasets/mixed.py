"""A synthetic stand-in for the mixed Drug Companies + Sultans dataset (§7.4).

The semantic-correctness experiment mixes two YAGO explicit sorts —
Drug Companies and Sultans — into a single untyped dataset, solves a
*highest θ for k = 2* refinement, and checks how well the two implicit
sorts recover the original explicit sorts, reporting a confusion matrix,
accuracy, precision and recall (with Drug Company as the positive class).
The paper obtains 74.6% accuracy with the plain Cov rule and 82.1% after
modifying Cov to ignore the RDF-syntax properties (``type``, ``sameAs``,
``subClassOf``, ``label``) that both sorts share.

The synthetic version keeps the essential structure:

* the two sorts have mostly disjoint domain properties (corporate vs
  dynastic) but share a few, so the separation is *not* trivial;
* both sorts carry the four RDF-syntax properties with high frequency,
  which pollutes the plain Cov refinement exactly as in the paper;
* each sort has incomplete data (missing values), so signatures overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.datasets.synthetic import PropertyModel, sample_signature_table
from repro.matrix.signatures import Signature, SignatureTable
from repro.rdf.namespaces import OWL, RDF, RDFS, Namespace, YAGO
from repro.rdf.terms import URI

__all__ = [
    "DRUG_COMPANY_SORT",
    "SULTAN_SORT",
    "MixedDataset",
    "mixed_drug_companies_and_sultans",
]

DRUG_COMPANY_SORT: URI = YAGO.wordnet_drug_company
SULTAN_SORT: URI = YAGO.wordnet_sultan

_COMPANY_NS = Namespace("http://yago-knowledge.org/resource/company/")
_PERSON_NS = Namespace("http://yago-knowledge.org/resource/person/")

#: Properties "defined in the syntax of RDF" shared by both sorts.
SYNTAX_PROPERTIES = (RDF.type, OWL.sameAs, RDFS.subClassOf, RDFS.label)


@dataclass
class MixedDataset:
    """The mixed dataset plus the ground truth needed for evaluation.

    Attributes
    ----------
    table:
        The signature table of the mixed dataset (what refinement sees).
    drug_companies / sultans:
        The signature tables of the two original explicit sorts.
    truth:
        For every signature of the mixed table, how many of its subjects
        are drug companies and how many are sultans.  Signature-level truth
        is enough because a sort refinement can only route whole signature
        sets.
    """

    table: SignatureTable
    drug_companies: SignatureTable
    sultans: SignatureTable
    truth: Dict[Signature, Tuple[int, int]]

    @property
    def n_drug_companies(self) -> int:
        """Total number of drug-company subjects."""
        return self.drug_companies.n_subjects

    @property
    def n_sultans(self) -> int:
        """Total number of sultan subjects."""
        return self.sultans.n_subjects


#: Generic YAGO-style properties shared by the two sorts (besides the
#: RDF-syntax ones).  Their presence is what makes the recovery non-trivial:
#: a poorly-documented sultan and a poorly-documented drug company can end up
#: with exactly the same signature, and a sort refinement (which routes whole
#: signature sets) then cannot separate them.
_SHARED_NS = Namespace("http://yago-knowledge.org/resource/shared/")
HAS_NAME = _SHARED_NS.hasName
LOCATED_IN = _SHARED_NS.locatedIn
ESTABLISHED_ON = _SHARED_NS.establishedOnDate


def _drug_company_models() -> List[PropertyModel]:
    ns = _COMPANY_NS
    return [
        PropertyModel(RDF.type, probability=1.0),
        PropertyModel(RDFS.label, probability=0.95),
        PropertyModel(OWL.sameAs, probability=0.70),
        PropertyModel(RDFS.subClassOf, probability=0.35),
        PropertyModel(HAS_NAME, probability=0.95),
        PropertyModel(LOCATED_IN, probability=0.60),
        PropertyModel(ESTABLISHED_ON, probability=0.45),
        # Domain-specific columns, each missing for a sizeable fraction of
        # companies so that "poorly documented company" signatures exist.
        PropertyModel(ns.hasWebsite, probability=0.40),
        PropertyModel(ns.hasNumberOfEmployees, probability=0.30),
        PropertyModel(ns.hasRevenue, probability=0.25),
        PropertyModel(ns.createdProduct, probability=0.45),
        PropertyModel(ns.ownsCompany, probability=0.10),
    ]


def _sultan_models() -> List[PropertyModel]:
    ns = _PERSON_NS
    return [
        PropertyModel(RDF.type, probability=1.0),
        PropertyModel(RDFS.label, probability=0.95),
        PropertyModel(OWL.sameAs, probability=0.45),
        PropertyModel(RDFS.subClassOf, probability=0.25),
        PropertyModel(HAS_NAME, probability=0.95),
        # Sultans share the generic location/establishment columns at lower
        # rates (palaces, founded dynasties), which creates cross-sort
        # signature overlap among poorly documented entities.
        PropertyModel(LOCATED_IN, probability=0.30),
        PropertyModel(ESTABLISHED_ON, probability=0.15),
        PropertyModel(ns.bornOnDate, probability=0.45),
        PropertyModel(ns.diedOnDate, probability=0.55),
        PropertyModel(
            ns.bornIn,
            conditional_on=ns.bornOnDate,
            probability_if_present=0.6,
            probability_if_absent=0.15,
        ),
        PropertyModel(ns.memberOfDynasty, probability=0.55),
        PropertyModel(ns.reignStart, probability=0.50),
        PropertyModel(ns.hasPredecessor, probability=0.35),
        PropertyModel(ns.hasSuccessor, probability=0.35),
    ]


def mixed_drug_companies_and_sultans(
    n_drug_companies: int = 450,
    n_sultans: int = 400,
    seed: int = 41,
    max_signatures_per_sort: int = 16,
) -> MixedDataset:
    """Build the mixed Drug Companies + Sultans dataset.

    The per-sort signature caps keep the (k = 2, highest θ) ILP instance
    small; the paper's actual sorts are comparably small (the two YAGO
    sorts it uses have only dozens of entities — here we keep hundreds so
    the per-class statistics are stable).
    """
    companies = sample_signature_table(
        _drug_company_models(),
        n_subjects=n_drug_companies,
        seed=seed,
        name="Drug Companies (synthetic)",
        max_signatures=max_signatures_per_sort,
    )
    sultans = sample_signature_table(
        _sultan_models(),
        n_subjects=n_sultans,
        seed=seed + 1,
        name="Sultans (synthetic)",
        max_signatures=max_signatures_per_sort,
    )
    mixed = companies.merge(sultans, name="Drug Companies + Sultans (synthetic)")

    truth: Dict[Signature, Tuple[int, int]] = {}
    for signature in mixed.signatures:
        truth[signature] = (companies.count(signature), sultans.count(signature))
    return MixedDataset(table=mixed, drug_companies=companies, sultans=sultans, truth=truth)
