"""A synthetic stand-in for the DBpedia Persons dataset of Section 7.1.

The paper reports, for ``D_{DBpedia Persons}``:

* 790,703 subjects, 8 properties (excluding ``rdf:type``), 64 signatures;
* property counts: every person has a ``name``; ~40,000 lack a ``surName``;
  420,242 have a ``birthDate``; 323,368 a ``birthPlace``; 241,156 both;
  173,507 a ``deathDate``; 90,246 a ``deathPlace``;
* σCov = 0.54 and σSim = 0.77;
* σSymDep[deathPlace, deathDate] = 0.39 and the dependency values of
  Table 1 (knowing the deathPlace almost always implies knowing the other
  dates/places, the converse being far weaker).

The generator below samples subjects from per-property marginal and
conditional probabilities chosen to reproduce those statistics, then folds
the signature tail so that exactly 64 signatures remain.  The default scale
(20,000 subjects) keeps ILP instances laptop-sized; pass
``n_subjects=790_703`` for a full-scale table (structuredness values are
scale-invariant, only the ILP gets bigger coefficients).
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.synthetic import (
    PropertyModel,
    graph_from_signature_table,
    sample_signature_table,
)
from repro.matrix.signatures import SignatureTable
from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import FOAF, Namespace
from repro.rdf.terms import URI

__all__ = [
    "PERSONS_NAMESPACE",
    "PERSON_SORT",
    "PERSON_PROPERTIES",
    "dbpedia_persons_table",
    "dbpedia_persons_graph",
]

PERSONS_NAMESPACE = Namespace("http://dbpedia.org/ontology/")
PERSON_SORT: URI = FOAF.Person

#: The eight DBpedia Persons properties in the order the paper lists them.
PERSON_PROPERTIES = (
    PERSONS_NAMESPACE.deathPlace,
    PERSONS_NAMESPACE.birthPlace,
    PERSONS_NAMESPACE.description,
    PERSONS_NAMESPACE.name,
    PERSONS_NAMESPACE.deathDate,
    PERSONS_NAMESPACE.birthDate,
    PERSONS_NAMESPACE.givenName,
    PERSONS_NAMESPACE.surName,
)

#: Paper statistics (subject counts) used to derive the sampling model.
PAPER_SUBJECTS = 790_703
PAPER_COUNTS = {
    "name": 790_703,
    "birthDate": 420_242,
    "birthPlace": 323_368,
    "birth_both": 241_156,
    "deathDate": 173_507,
    "deathPlace": 90_246,
    "surName": 790_703 - 40_000,
}


def _sampling_models() -> list[PropertyModel]:
    ns = PERSONS_NAMESPACE
    n = float(PAPER_SUBJECTS)
    p_death_date = PAPER_COUNTS["deathDate"] / n
    p_death_place = PAPER_COUNTS["deathPlace"] / n
    # Table 1: Dep[deathDate, deathPlace] = 0.43, i.e. most subjects with a
    # deathPlace also have a deathDate (Dep[deathPlace, deathDate] ≈ 0.82),
    # and a known deathPlace almost always comes with the birth facts
    # (Dep[deathPlace, birthDate] = 0.77, Dep[deathPlace, birthPlace] = 0.93):
    # the deathPlace is the "hardest fact to acquire", so subjects that have
    # it are the best documented ones.  The conditional probabilities below
    # bake in exactly that structure while keeping the marginal counts of
    # the paper (birthDate 420,242; birthPlace 323,368; both 241,156; ...).
    p_death_place_given_date = 0.43
    p_death_both = p_death_place_given_date * p_death_date

    death_date, death_place = ns.deathDate, ns.deathPlace
    birth_date = ns.birthDate

    def birth_date_probability(present: dict) -> float:
        if present.get(death_place, False):
            return 0.77
        if present.get(death_date, False):
            return 0.87
        return 0.44

    def birth_place_probability(present: dict) -> float:
        if present.get(death_place, False):
            return 0.93
        if present.get(birth_date, False):
            return 0.50
        return 0.18

    return [
        PropertyModel(ns.name, probability=1.0),
        PropertyModel(ns.givenName, probability=0.961),
        PropertyModel(ns.surName, probability=PAPER_COUNTS["surName"] / n),
        PropertyModel(ns.description, probability=0.135),
        PropertyModel(ns.deathDate, probability=p_death_date),
        PropertyModel(
            ns.deathPlace,
            conditional_on=ns.deathDate,
            probability_if_present=p_death_place_given_date,
            probability_if_absent=(p_death_place - p_death_both) / (1 - p_death_date),
        ),
        PropertyModel(ns.birthDate, probability_function=birth_date_probability),
        PropertyModel(ns.birthPlace, probability_function=birth_place_probability),
    ]


def dbpedia_persons_table(
    n_subjects: int = 20_000,
    seed: int = 7,
    max_signatures: Optional[int] = 64,
    name: str = "DBpedia Persons (synthetic)",
) -> SignatureTable:
    """Generate the synthetic DBpedia Persons signature table.

    Parameters
    ----------
    n_subjects:
        Number of person entities to sample (default 20,000; the paper's
        real dataset has 790,703 — use that value for a full-scale run).
    seed:
        Random seed; the default makes the table deterministic.
    max_signatures:
        Cap on distinct signatures, 64 as in the paper (``None`` disables).
    """
    table = sample_signature_table(
        _sampling_models(),
        n_subjects=n_subjects,
        seed=seed,
        name=name,
        max_signatures=max_signatures,
    )
    # Keep the paper's column order for rendering.
    ordered = [p for p in PERSON_PROPERTIES if p in table.properties]
    return SignatureTable(ordered, table.counts(), name=name)


def dbpedia_persons_graph(
    n_subjects: int = 2_000,
    seed: int = 7,
    max_signatures: Optional[int] = 64,
) -> RDFGraph:
    """Generate a typed RDF graph version of the synthetic DBpedia Persons data.

    This is mostly useful for the end-to-end examples (sort extraction,
    N-Triples round-tripping); the refinement experiments work directly on
    the signature table.
    """
    table = dbpedia_persons_table(
        n_subjects=n_subjects, seed=seed, max_signatures=max_signatures
    )
    return graph_from_signature_table(
        table,
        PERSON_SORT,
        namespace=Namespace("http://dbpedia.org/resource/person/"),
    )
