"""A synthetic stand-in for the WordNet Nouns dataset of Section 7.2.

The paper reports, for ``D_{WordNet Nouns}``:

* 79,689 subjects, 12 properties (excluding ``rdf:type``), 53 signatures;
* roughly five dominant, highly complete properties (``gloss``, ``label``,
  ``synsetId``, ``hyponymOf``, ``containsWordSense``) and a long tail of
  rare classification/meronymy properties;
* σCov = 0.44 and σSim = 0.93 — a *highly* structured dataset by Sim and a
  poorly structured one by Cov, because Cov punishes the nearly-empty rare
  columns that Sim all but ignores.

The sampling model below reproduces those two values and the general
signature shape; the signature count is capped at 53 as in the paper.
"""

from __future__ import annotations

from typing import Optional

from repro.datasets.synthetic import (
    PropertyModel,
    graph_from_signature_table,
    sample_signature_table,
)
from repro.matrix.signatures import SignatureTable
from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import Namespace, WORDNET
from repro.rdf.terms import URI

__all__ = [
    "NOUN_SORT",
    "NOUN_PROPERTIES",
    "wordnet_nouns_table",
    "wordnet_nouns_graph",
]

NOUN_SORT: URI = WORDNET.NounSynset

#: The twelve WordNet Nouns properties in the order the paper lists them.
NOUN_PROPERTIES = (
    WORDNET.gloss,
    WORDNET.label,
    WORDNET.synsetId,
    WORDNET.hyponymOf,
    WORDNET.classifiedByTopic,
    WORDNET.containsWordSense,
    WORDNET.memberMeronymOf,
    WORDNET.partMeronymOf,
    WORDNET.substanceMeronymOf,
    WORDNET.classifiedByUsage,
    WORDNET.classifiedByRegion,
    WORDNET.attribute,
)

PAPER_SUBJECTS = 79_689


def _sampling_models() -> list[PropertyModel]:
    wn = WORDNET
    return [
        PropertyModel(wn.gloss, probability=0.995),
        PropertyModel(wn.label, probability=0.999),
        PropertyModel(wn.synsetId, probability=0.999),
        PropertyModel(wn.hyponymOf, probability=0.978),
        PropertyModel(wn.containsWordSense, probability=0.999),
        PropertyModel(wn.classifiedByTopic, probability=0.120),
        PropertyModel(wn.memberMeronymOf, probability=0.095),
        PropertyModel(wn.partMeronymOf, probability=0.060),
        PropertyModel(wn.substanceMeronymOf, probability=0.015),
        PropertyModel(wn.classifiedByUsage, probability=0.010),
        PropertyModel(wn.classifiedByRegion, probability=0.012),
        PropertyModel(wn.attribute, probability=0.008),
    ]


def wordnet_nouns_table(
    n_subjects: int = 15_000,
    seed: int = 11,
    max_signatures: Optional[int] = 53,
    name: str = "WordNet Nouns (synthetic)",
) -> SignatureTable:
    """Generate the synthetic WordNet Nouns signature table.

    Parameters
    ----------
    n_subjects:
        Number of noun synsets to sample (the real dataset has 79,689).
    seed:
        Random seed; the default makes the table deterministic.
    max_signatures:
        Cap on distinct signatures, 53 as in the paper (``None`` disables).
    """
    table = sample_signature_table(
        _sampling_models(),
        n_subjects=n_subjects,
        seed=seed,
        name=name,
        max_signatures=max_signatures,
    )
    ordered = [p for p in NOUN_PROPERTIES if p in table.properties]
    return SignatureTable(ordered, table.counts(), name=name)


def wordnet_nouns_graph(
    n_subjects: int = 2_000,
    seed: int = 11,
    max_signatures: Optional[int] = 53,
) -> RDFGraph:
    """Generate a typed RDF graph version of the synthetic WordNet Nouns data."""
    table = wordnet_nouns_table(n_subjects=n_subjects, seed=seed, max_signatures=max_signatures)
    return graph_from_signature_table(
        table,
        NOUN_SORT,
        namespace=Namespace("http://wordnet.example.org/synset/"),
    )
