"""Synthetic datasets standing in for the paper's evaluation data."""

from repro.datasets.dbpedia_persons import (
    PERSON_PROPERTIES,
    PERSON_SORT,
    dbpedia_persons_graph,
    dbpedia_persons_table,
)
from repro.datasets.mixed import (
    DRUG_COMPANY_SORT,
    MixedDataset,
    SULTAN_SORT,
    mixed_drug_companies_and_sultans,
)
from repro.datasets.synthetic import (
    PropertyModel,
    cap_signatures,
    graph_from_signature_table,
    random_signature_table,
    sample_signature_table,
)
from repro.datasets.wordnet_nouns import (
    NOUN_PROPERTIES,
    NOUN_SORT,
    wordnet_nouns_graph,
    wordnet_nouns_table,
)
from repro.datasets.yago import (
    YagoSortSpec,
    property_histogram,
    signature_histogram,
    yago_sort_sample,
)

__all__ = [
    "PropertyModel",
    "sample_signature_table",
    "cap_signatures",
    "graph_from_signature_table",
    "random_signature_table",
    "PERSON_PROPERTIES",
    "PERSON_SORT",
    "dbpedia_persons_table",
    "dbpedia_persons_graph",
    "NOUN_PROPERTIES",
    "NOUN_SORT",
    "wordnet_nouns_table",
    "wordnet_nouns_graph",
    "YagoSortSpec",
    "yago_sort_sample",
    "signature_histogram",
    "property_histogram",
    "MixedDataset",
    "DRUG_COMPANY_SORT",
    "SULTAN_SORT",
    "mixed_drug_companies_and_sultans",
]
