"""Generic synthetic dataset generation utilities.

The experiments of the paper run on DBpedia Persons, WordNet Nouns and a
sample of YAGO explicit sorts.  Those raw dumps are not available offline,
but every structuredness computation and every ILP instance in the paper
depends on the data only through its *signature table* (signature → number
of subjects).  The dataset modules in this package therefore generate
signature tables (and, when needed, full RDF graphs) whose distributions
match the statistics the paper reports; see DESIGN.md for the
substitution argument.

This module holds the building blocks shared by the concrete dataset
modules: sampling subjects from per-property marginal/conditional
probabilities, capping the number of distinct signatures, and materialising
a signature table as a typed RDF graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import DatasetError
from repro.matrix.signatures import Signature, SignatureTable, group_boolean_rows
from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import RDF, Namespace
from repro.rdf.terms import Literal, URI, coerce_uri

__all__ = [
    "PropertyModel",
    "sample_signature_table",
    "cap_signatures",
    "graph_from_signature_table",
    "random_signature_table",
]


@dataclass
class PropertyModel:
    """A per-property sampling model.

    Attributes
    ----------
    prop:
        The property URI.
    probability:
        Base probability that a subject has the property.
    conditional_on:
        Optional property this one is correlated with.
    probability_if_present / probability_if_absent:
        Conditional probabilities used instead of ``probability`` when
        ``conditional_on`` is set, depending on whether the conditioning
        property was sampled for the subject.
    probability_function:
        Fully general hook: a callable receiving the properties already
        sampled for the subject (property -> bool) and returning the
        probability for this one.  Takes precedence over the other fields;
        used when a property must be correlated with several others (e.g.
        reproducing the dependency structure of Table 1).
    """

    prop: URI
    probability: float = 0.0
    conditional_on: Optional[URI] = None
    probability_if_present: Optional[float] = None
    probability_if_absent: Optional[float] = None
    probability_function: Optional[Callable[[Dict[URI, bool]], float]] = None

    def __post_init__(self) -> None:
        self.prop = coerce_uri(self.prop)
        if self.conditional_on is not None:
            self.conditional_on = coerce_uri(self.conditional_on)
            if self.probability_if_present is None or self.probability_if_absent is None:
                raise DatasetError(
                    f"property {self.prop} is conditional but lacks conditional probabilities"
                )
        for value in (self.probability, self.probability_if_present, self.probability_if_absent):
            if value is not None and not 0.0 <= value <= 1.0:
                raise DatasetError(f"probabilities must lie in [0, 1], got {value}")

    def sample(self, rng: np.random.Generator, present: Dict[URI, bool]) -> bool:
        """Sample whether a subject has this property, given earlier draws."""
        if self.probability_function is not None:
            probability = float(self.probability_function(present))
            if not 0.0 <= probability <= 1.0:
                raise DatasetError(
                    f"probability_function for {self.prop} returned {probability}, "
                    "expected a value in [0, 1]"
                )
        elif self.conditional_on is None:
            probability = self.probability
        elif present.get(self.conditional_on, False):
            probability = float(self.probability_if_present)
        else:
            probability = float(self.probability_if_absent)
        return bool(rng.random() < probability)


def sample_signature_table(
    models: Sequence[PropertyModel],
    n_subjects: int,
    seed: int = 0,
    name: str = "",
    max_signatures: Optional[int] = None,
) -> SignatureTable:
    """Sample ``n_subjects`` subjects from the per-property models.

    Conditional properties must appear *after* the property they condition
    on.  The result is aggregated into a signature table; when
    ``max_signatures`` is given the long tail of rare signatures is folded
    into structurally closest common signatures (see :func:`cap_signatures`).
    """
    if n_subjects < 1:
        raise DatasetError("n_subjects must be positive")
    properties = [model.prop for model in models]
    if len(set(properties)) != len(properties):
        raise DatasetError("duplicate properties in the sampling models")
    known = set()
    for model in models:
        if model.conditional_on is not None and model.conditional_on not in known:
            raise DatasetError(
                f"property {model.prop} conditions on {model.conditional_on}, "
                "which must be listed earlier"
            )
        known.add(model.prop)

    rng = np.random.default_rng(seed)
    # One uniform draw per (subject, model), materialised row-major: this is
    # the *same* random stream the per-subject/per-model loop would consume,
    # so sampled tables are bit-identical to the scalar implementation while
    # the column-wise evaluation below is vectorised across subjects.
    draws = rng.random((n_subjects, len(models)))
    present = np.zeros((n_subjects, len(models)), dtype=bool)
    column_of = {model.prop: j for j, model in enumerate(models)}
    for j, model in enumerate(models):
        if model.probability_function is not None:
            # The fully general hook needs a per-subject dict of earlier
            # draws; only these columns fall back to a Python loop.
            earlier = models[:j]
            probabilities = np.empty(n_subjects)
            for i in range(n_subjects):
                row = {m.prop: bool(present[i, jj]) for jj, m in enumerate(earlier)}
                probability = float(model.probability_function(row))
                if not 0.0 <= probability <= 1.0:
                    raise DatasetError(
                        f"probability_function for {model.prop} returned {probability}, "
                        "expected a value in [0, 1]"
                    )
                probabilities[i] = probability
        elif model.conditional_on is None:
            probabilities = np.full(n_subjects, model.probability)
        else:
            conditioning = present[:, column_of[model.conditional_on]]
            probabilities = np.where(
                conditioning,
                float(model.probability_if_present),
                float(model.probability_if_absent),
            )
        present[:, j] = draws[:, j] < probabilities

    # Group identical rows into signatures with one packbits + unique pass.
    representatives, _inverse, group_sizes = group_boolean_rows(present)
    counts: Dict[Signature, int] = {}
    for g, size in enumerate(group_sizes):
        row = present[representatives[g]]
        signature = frozenset(p for p, has in zip(properties, row) if has)
        counts[signature] = int(size)
    table = SignatureTable(properties, counts, name=name)
    if max_signatures is not None:
        table = cap_signatures(table, max_signatures)
    return table


def cap_signatures(table: SignatureTable, max_signatures: int) -> SignatureTable:
    """Fold rare signatures into their closest frequent signature.

    Keeps the ``max_signatures`` largest signature sets; every other
    signature's subjects are reassigned to the kept signature at smallest
    Hamming distance (ties broken towards the larger signature set).  This
    mirrors how real datasets end up with a bounded number of signatures
    (64 for DBpedia Persons, 53 for WordNet Nouns) despite a much larger
    combinatorial space.
    """
    if max_signatures < 1:
        raise DatasetError("max_signatures must be positive")
    if table.n_signatures <= max_signatures:
        return table
    ordered = list(table.signatures)  # already sorted by decreasing size
    kept = ordered[:max_signatures]
    folded = ordered[max_signatures:]
    counts = {sig: table.count(sig) for sig in kept}
    for signature in folded:
        def distance(candidate: Signature) -> Tuple[int, int]:
            return (len(candidate ^ signature), -table.count(candidate))

        target = min(kept, key=distance)
        counts[target] += table.count(signature)
    return SignatureTable(table.properties, counts, name=table.name)


def graph_from_signature_table(
    table: SignatureTable,
    sort_uri: object,
    namespace: Optional[Namespace] = None,
    value_factory: Optional[Callable[[URI, URI], object]] = None,
) -> RDFGraph:
    """Materialise a signature table as a typed RDF graph.

    Every subject receives one triple per property in its signature plus an
    ``rdf:type`` triple declaring it of ``sort_uri``, so the graph round
    trips through :meth:`RDFGraph.sort_subgraph` / sort extraction.

    Parameters
    ----------
    value_factory:
        Optional callable ``(subject, property) -> object value``; by
        default a literal ``"value of <property local name>"`` is used.
    """
    namespace = namespace or Namespace("http://example.org/entity/")
    sort = coerce_uri(sort_uri)
    graph = RDFGraph(name=table.name)
    dictionary = graph.term_dictionary
    type_id = dictionary.intern(RDF.type)
    sort_id = dictionary.intern(sort)
    index = 0
    for signature in table.signatures:
        properties = sorted(signature, key=str)
        if value_factory is None:
            # The default literal depends only on the property: intern each
            # (property, value) pair once per signature and emit the
            # per-subject triples straight into the ID space.
            pairs = [
                (
                    dictionary.intern(prop),
                    dictionary.intern(Literal(f"value of {prop.local_name}")),
                )
                for prop in properties
            ]
            for _ in range(table.count(signature)):
                subject_id = dictionary.intern(namespace[f"e{index}"])
                index += 1
                graph._add_ids(subject_id, type_id, sort_id)
                for prop_id, value_id in pairs:
                    graph._add_ids(subject_id, prop_id, value_id)
        else:
            for _ in range(table.count(signature)):
                subject = namespace[f"e{index}"]
                index += 1
                graph.add(subject, RDF.type, sort)
                for prop in properties:
                    graph.add(subject, prop, value_factory(subject, prop))
    return graph


def random_signature_table(
    n_properties: int,
    n_signatures: int,
    n_subjects: int,
    seed: int = 0,
    density: float = 0.5,
    zipf_exponent: float = 1.3,
    namespace: Optional[Namespace] = None,
    name: str = "",
) -> SignatureTable:
    """Generate a random signature table with the requested dimensions.

    Used by the YAGO-style scalability study, where what matters is the
    *number* of signatures and properties, not their semantics.

    Parameters
    ----------
    n_properties / n_signatures / n_subjects:
        Requested dimensions (the realised number of signatures can be
        slightly lower when random supports collide).
    density:
        Expected fraction of properties present in a signature.
    zipf_exponent:
        Skew of the signature-set size distribution (larger = more mass on
        the first few signatures, as observed in real data).
    """
    if n_signatures < 1 or n_properties < 1 or n_subjects < n_signatures:
        raise DatasetError("need n_signatures >= 1, n_properties >= 1, n_subjects >= n_signatures")
    namespace = namespace or Namespace("http://example.org/prop/")
    rng = np.random.default_rng(seed)
    properties = [namespace[f"p{i}"] for i in range(n_properties)]

    # Per-property prevalence: a few common columns, a long tail of rare ones.
    prevalence = rng.beta(a=2.0 * density, b=2.0 * (1 - density) + 1e-9, size=n_properties)
    signatures: Dict[Signature, None] = {}
    attempts = 0
    while len(signatures) < n_signatures and attempts < 50 * n_signatures:
        attempts += 1
        mask = rng.random(n_properties) < prevalence
        if not mask.any():
            mask[int(rng.integers(n_properties))] = True
        signatures[frozenset(p for p, keep in zip(properties, mask) if keep)] = None
    sigs = list(signatures)

    # Zipf-like signature-set sizes that sum to n_subjects.
    ranks = np.arange(1, len(sigs) + 1, dtype=float)
    weights = ranks ** (-zipf_exponent)
    weights /= weights.sum()
    sizes = np.maximum(1, np.floor(weights * n_subjects).astype(int))
    # Distribute any remainder over the largest signatures.
    remainder = n_subjects - int(sizes.sum())
    index = 0
    while remainder > 0:
        sizes[index % len(sizes)] += 1
        remainder -= 1
        index += 1
    while remainder < 0:
        target = index % len(sizes)
        if sizes[target] > 1:
            sizes[target] -= 1
            remainder += 1
        index += 1
    counts = {sig: int(size) for sig, size in zip(sigs, sizes)}
    return SignatureTable(properties, counts, name=name)
