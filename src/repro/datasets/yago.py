"""A synthetic stand-in for the YAGO explicit-sort sample of Section 7.3.

The scalability study of the paper draws ~500 explicit sorts from YAGO and
solves a *highest θ for k = 2* problem on each, observing that

* the runtime does not depend on the number of subjects of a sort,
* it grows polynomially (≈ s^2.5) with the number of signatures,
* it grows exponentially (≈ e^{0.28 p}) with the number of properties,
* 99.9% of YAGO sorts have < 350 signatures and 99.8% have < 40 properties.

What matters for reproducing those curves is the joint distribution of
(#signatures, #properties, #subjects) across the sampled sorts, not the
semantics of the sorts themselves.  :func:`yago_sort_sample` generates a
deterministic sample with the same qualitative shape: most sorts are tiny,
a few are large, signature counts follow a heavy-tailed distribution, and
property counts concentrate between 5 and 40.

The defaults are scaled down (both the number of sorts and the per-sort
signature counts) so the full sweep runs in minutes on a laptop with the
HiGHS backend; pass larger values to stress the solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.synthetic import random_signature_table
from repro.exceptions import DatasetError
from repro.matrix.signatures import SignatureTable
from repro.rdf.namespaces import Namespace, YAGO

__all__ = ["YagoSortSpec", "yago_sort_sample", "signature_histogram", "property_histogram"]


@dataclass(frozen=True)
class YagoSortSpec:
    """The structural parameters of one synthetic YAGO explicit sort."""

    name: str
    n_signatures: int
    n_properties: int
    n_subjects: int
    seed: int


def yago_sort_sample(
    n_sorts: int = 60,
    seed: int = 23,
    max_signatures: int = 60,
    max_properties: int = 24,
    max_subjects: int = 5_000,
) -> List[SignatureTable]:
    """Generate a sample of synthetic explicit sorts with YAGO-like shape.

    Parameters
    ----------
    n_sorts:
        Number of explicit sorts in the sample (the paper samples ~500).
    seed:
        Seed for the whole sample (each sort derives its own sub-seed).
    max_signatures / max_properties / max_subjects:
        Upper bounds of the per-sort structural parameters.  The paper's
        bounds are ~350 signatures / ~40 properties / ~10^5 subjects; the
        defaults here are smaller so that a full sweep stays fast — the
        scaling *trends* are what the experiment measures.
    """
    if n_sorts < 1:
        raise DatasetError("n_sorts must be positive")
    rng = np.random.default_rng(seed)
    tables: List[SignatureTable] = []
    for index in range(n_sorts):
        spec = _draw_spec(rng, index, max_signatures, max_properties, max_subjects)
        table = random_signature_table(
            n_properties=spec.n_properties,
            n_signatures=spec.n_signatures,
            n_subjects=spec.n_subjects,
            seed=spec.seed,
            density=float(rng.uniform(0.25, 0.6)),
            namespace=Namespace(f"{YAGO.prefix}{spec.name}/"),
            name=spec.name,
        )
        tables.append(table)
    return tables


def _draw_spec(
    rng: np.random.Generator,
    index: int,
    max_signatures: int,
    max_properties: int,
    max_subjects: int,
) -> YagoSortSpec:
    # Heavy-tailed signature counts: most sorts have a handful of signatures,
    # a few have many (mirroring the log-histogram of Figure 8a, right).
    n_signatures = int(min(max_signatures, max(1, round(rng.lognormal(mean=1.6, sigma=1.0)))))
    # Property counts concentrate between ~5 and ~40 (Figure 8b, right).
    n_properties = int(np.clip(round(rng.normal(loc=14, scale=7)), 3, max_properties))
    # Subject counts span orders of magnitude and are irrelevant to runtime.
    n_subjects = int(
        np.clip(round(rng.lognormal(mean=5.5, sigma=1.2)), n_signatures, max_subjects)
    )
    return YagoSortSpec(
        name=f"sort{index:03d}",
        n_signatures=n_signatures,
        n_properties=n_properties,
        n_subjects=n_subjects,
        seed=1_000 + index,
    )


def signature_histogram(
    tables: Sequence[SignatureTable], bins: Optional[Sequence[int]] = None
) -> List[Tuple[str, int]]:
    """Histogram of per-sort signature counts (Figure 8a, right panel)."""
    values = [table.n_signatures for table in tables]
    return _histogram(values, bins or (1, 2, 5, 10, 20, 50, 100, 200, 350))


def property_histogram(
    tables: Sequence[SignatureTable], bins: Optional[Sequence[int]] = None
) -> List[Tuple[str, int]]:
    """Histogram of per-sort property counts (Figure 8b, right panel)."""
    values = [table.n_properties for table in tables]
    return _histogram(values, bins or (1, 5, 10, 15, 20, 25, 30, 40, 80))


def _histogram(values: Sequence[int], edges: Sequence[int]) -> List[Tuple[str, int]]:
    result: List[Tuple[str, int]] = []
    previous = 0
    for edge in edges:
        count = sum(1 for value in values if previous < value <= edge)
        result.append((f"({previous}, {edge}]", count))
        previous = edge
    overflow = sum(1 for value in values if value > previous)
    if overflow:
        result.append((f"> {previous}", overflow))
    return result
