"""Experiment E2 — Figure 4: DBpedia Persons split into k = 2 implicit sorts.

For each of the three structuredness functions used in the paper — σCov,
σSim and σSymDep[deathPlace, deathDate] — solve a *highest θ for k = 2*
sort refinement of the DBpedia Persons stand-in and report, per implicit
sort, its size, signature count, and σCov/σSim values, mirroring the
captions of Figures 4(a), 4(b) and 4(c).

The paper's headline qualitative findings that this experiment reproduces:

* under Cov, the larger sort contains exactly the people without
  deathDate/deathPlace — "the sort for people that are alive";
* under Sim, the split is more balanced and the second sort gathers the
  subjects about which very little is known;
* under SymDep[deathPlace, deathDate], one sort has σSymDep = 1.0 because
  it drops the deathPlace column entirely, the other has a high value
  because deathDate and deathPlace co-occur in it.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Dataset
from repro.datasets.dbpedia_persons import PERSONS_NAMESPACE
from repro.experiments.base import ExperimentResult, register
from repro.functions import (
    coverage_function,
    similarity_function,
    symmetric_dependency_function,
)
from repro.matrix.horizontal import render_refinement
from repro.rules import coverage, similarity, symmetric_dependency

__all__ = ["run_dbpedia_k2"]


@register("figure4")
def run_dbpedia_k2(
    n_subjects: int = 20_000,
    seed: int = 7,
    sim_max_signatures: int = 12,
    step: float = 0.01,
    solver_time_limit: Optional[float] = 60.0,
    include_sim: bool = True,
    render_figures: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 4 (k = 2 refinements of DBpedia Persons).

    Parameters
    ----------
    n_subjects / seed:
        Scale and seed of the synthetic DBpedia Persons table.
    sim_max_signatures:
        The σSim encoding grows quadratically in the number of signatures
        (the paper itself reports minutes-to-hours per instance with
        CPLEX); the Sim part of the experiment therefore runs on a table
        whose signature tail is folded down to this many signatures.
    step:
        θ-search increment (0.01 in the paper).
    solver_time_limit:
        Per-instance HiGHS time limit in seconds.
    include_sim:
        Allow skipping the (slowest) Sim part.
    render_figures:
        Attach ASCII renderings of the resulting refinements.
    """
    ns = PERSONS_NAMESPACE
    persons = Dataset.builtin("dbpedia-persons", n_subjects=n_subjects, seed=seed)
    persons_small = Dataset.builtin(
        "dbpedia-persons", n_subjects=n_subjects, seed=seed, max_signatures=sim_max_signatures
    )
    cov_fn, sim_fn = coverage_function(), similarity_function()
    symdep_fn = symmetric_dependency_function(ns.deathPlace, ns.deathDate)

    result = ExperimentResult(
        experiment_id="figure4",
        title="Figure 4 — DBpedia Persons, highest-theta sort refinement for k = 2",
        paper_reference={
            "Fig 4a (Cov)": "sorts of 528,593 / 262,110 subjects; Cov 0.73 / 0.71; the large sort "
            "has no deathDate/deathPlace (people that are alive)",
            "Fig 4b (Sim)": "sorts of 387,297 / 403,406 subjects; Sim 0.82 / 0.85; balanced split",
            "Fig 4c (SymDep[deathPlace, deathDate])": "sigma_SymDep 1.0 / 0.82; the 1.0 sort drops "
            "the deathPlace column",
        },
    )

    # One session per dataset handle: the Cov and SymDep runs share the
    # persons session, so the signature table and solver binding are reused.
    persons_session = persons.session(solver_time_limit=solver_time_limit)
    runs = [("Cov", coverage(), persons_session, step)]
    if include_sim:
        small_session = persons_small.session(solver_time_limit=solver_time_limit)
        runs.append(("Sim", similarity(), small_session, max(step, 0.02)))
    runs.append(
        (
            "SymDep[deathPlace, deathDate]",
            symmetric_dependency(ns.deathPlace, ns.deathDate),
            persons_session,
            max(step, 0.02),
        )
    )

    for label, rule, session, rule_step in runs:
        search = session.refine(rule, k=2, step=rule_step)
        refinement = search.refinement
        for sort in refinement.sorts:
            row = {
                "rule": label,
                "theta": search.theta,
                "sort": sort.index + 1,
                "subjects": sort.n_subjects,
                "signatures": sort.n_signatures,
                "Cov": sort.structuredness(cov_fn),
                "Sim": sort.structuredness(sim_fn),
            }
            if label.startswith("SymDep"):
                row["SymDep"] = sort.structuredness(symdep_fn)
                row["uses deathPlace"] = ns.deathPlace in sort.used_properties
            else:
                row["uses deathDate"] = ns.deathDate in sort.used_properties
                row["uses deathPlace"] = ns.deathPlace in sort.used_properties
            result.rows.append(row)
        if render_figures:
            result.figures.append(
                render_refinement(
                    [sort.table for sort in refinement.sorts],
                    parent_properties=session.dataset.table.properties,
                    title=f"[Figure 4 / {label}: theta = {search.theta:.3f}]",
                )
            )
    if include_sim:
        result.notes.append(
            f"The Sim refinement runs on a {sim_max_signatures}-signature folded table to keep "
            "the MILP tractable for HiGHS (the paper reports up to 2h per instance with CPLEX)."
        )
    return result
