"""Experiments E4 & E5 — Tables 1 and 2: dependency structure of DBpedia Persons.

Table 1 tabulates σDep[p1, p2] for every ordered pair of
{deathPlace, birthPlace, deathDate, birthDate}; its headline finding is
that the deathPlace row is uniformly high — knowing where somebody died
implies we know almost everything else about them — while no other row
behaves that way.

Table 2 ranks all unordered property pairs of DBpedia Persons by
σSymDep[p1, p2]; givenName/surName are the most correlated pair (more than
any pair involving the universal ``name``), and the least correlated pairs
all involve deathPlace.
"""

from __future__ import annotations

from itertools import combinations
from typing import Optional

from repro.api import Dataset
from repro.datasets.dbpedia_persons import PERSONS_NAMESPACE, PERSON_PROPERTIES
from repro.experiments.base import ExperimentResult, register

__all__ = ["run_dependency_table", "run_symdep_ranking"]

#: Paper values for Table 1 (rows/columns ordered dP, bP, dD, bD).
PAPER_TABLE1 = {
    ("deathPlace", "deathPlace"): 1.0,
    ("deathPlace", "birthPlace"): 0.93,
    ("deathPlace", "deathDate"): 0.82,
    ("deathPlace", "birthDate"): 0.77,
    ("birthPlace", "deathPlace"): 0.26,
    ("birthPlace", "birthPlace"): 1.0,
    ("birthPlace", "deathDate"): 0.27,
    ("birthPlace", "birthDate"): 0.75,
    ("deathDate", "deathPlace"): 0.43,
    ("deathDate", "birthPlace"): 0.50,
    ("deathDate", "deathDate"): 1.0,
    ("deathDate", "birthDate"): 0.89,
    ("birthDate", "deathPlace"): 0.17,
    ("birthDate", "birthPlace"): 0.57,
    ("birthDate", "deathDate"): 0.37,
    ("birthDate", "birthDate"): 1.0,
}


@register("table1")
def run_dependency_table(n_subjects: int = 20_000, seed: int = 7) -> ExperimentResult:
    """Regenerate Table 1: σDep over the four birth/death properties."""
    ns = PERSONS_NAMESPACE
    session = Dataset.builtin(
        "dbpedia-persons", n_subjects=n_subjects, seed=seed
    ).session()
    properties = [ns.deathPlace, ns.birthPlace, ns.deathDate, ns.birthDate]
    result = ExperimentResult(
        experiment_id="table1",
        title="Table 1 — sigma_Dep[p1, p2] over DBpedia Persons",
        paper_reference={
            "headline": "the deathPlace row is uniformly high (.93/.82/.77): knowing the death "
            "place implies knowing nearly everything else"
        },
    )
    for p1 in properties:
        row: dict = {"p1": p1.local_name}
        for p2 in properties:
            value = session.dependency(p1, p2).value
            row[p2.local_name] = value
            row[f"{p2.local_name} (paper)"] = PAPER_TABLE1[(p1.local_name, p2.local_name)]
        result.rows.append(row)
    return result


#: Paper values for the extremes of Table 2.
PAPER_TABLE2_TOP = [
    ("givenName", "surName", 1.0),
    ("name", "givenName", 0.95),
    ("name", "surName", 0.95),
    ("name", "birthDate", 0.53),
]
PAPER_TABLE2_BOTTOM = [
    ("description", "givenName", 0.14),
    ("deathPlace", "name", 0.11),
    ("deathPlace", "givenName", 0.11),
    ("deathPlace", "surName", 0.11),
]


@register("table2")
def run_symdep_ranking(
    n_subjects: int = 20_000, seed: int = 7, top: int = 4, bottom: int = 4
) -> ExperimentResult:
    """Regenerate Table 2: the σSymDep ranking of DBpedia Persons property pairs."""
    session = Dataset.builtin(
        "dbpedia-persons", n_subjects=n_subjects, seed=seed
    ).session()
    pairs = []
    for p1, p2 in combinations(PERSON_PROPERTIES, 2):
        value = session.dependency(p1, p2, symmetric=True).value
        pairs.append((p1.local_name, p2.local_name, value))
    pairs.sort(key=lambda item: -item[2])

    result = ExperimentResult(
        experiment_id="table2",
        title="Table 2 — sigma_SymDep ranking of DBpedia Persons property pairs",
        paper_reference={
            "top": ", ".join(f"{a}/{b}={v}" for a, b, v in PAPER_TABLE2_TOP),
            "bottom": ", ".join(f"{a}/{b}={v}" for a, b, v in PAPER_TABLE2_BOTTOM),
        },
    )
    for rank, (p1, p2, value) in enumerate(pairs[:top], start=1):
        result.rows.append({"rank": rank, "p1": p1, "p2": p2, "SymDep": value, "end": "top"})
    total = len(pairs)
    for offset, (p1, p2, value) in enumerate(pairs[-bottom:]):
        result.rows.append(
            {"rank": total - bottom + offset + 1, "p1": p1, "p2": p2, "SymDep": value, "end": "bottom"}
        )
    result.notes.append(
        "The paper's headline orderings to check: givenName/surName is the most correlated pair, "
        "and the least correlated pairs involve deathPlace."
    )
    return result
