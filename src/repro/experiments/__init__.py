"""Experiment harness: one module per table/figure of the paper.

Importing this package registers every experiment; use
:func:`repro.experiments.run_experiment` (or the CLI) to run them:

=====================  =======================================================
experiment id          paper artefact
=====================  =======================================================
``overview``           Figures 2 & 3 and the §7.1/§7.2 dataset statistics
``figure4``            Figure 4 — DBpedia Persons, highest θ for k = 2
``figure5``            Figure 5 — DBpedia Persons, lowest k for θ = 0.9
``table1``             Table 1 — σDep over the birth/death properties
``table2``             Table 2 — σSymDep ranking of property pairs
``figure6``            Figure 6 — WordNet Nouns, highest θ for k = 2
``figure7``            Figure 7 — WordNet Nouns, lowest k for fixed θ
``figure8``            Figure 8 — YAGO-style scalability study
``semantic_correctness``  §7.4 — Drug Companies vs Sultans recovery
``reduction``          Theorem 5.1 / Appendix A — 3-coloring reduction check
=====================  =======================================================
"""

from repro.experiments.base import (
    ExperimentResult,
    all_experiments,
    get_experiment,
    register,
    run_experiment,
)
from repro.experiments.dbpedia_k2 import run_dbpedia_k2
from repro.experiments.dbpedia_lowest_k import run_dbpedia_lowest_k
from repro.experiments.dependency_tables import run_dependency_table, run_symdep_ranking
from repro.experiments.overview import run_overview
from repro.experiments.reduction_check import run_reduction_check
from repro.experiments.semantic_correctness import classify_refinement, run_semantic_correctness
from repro.experiments.wordnet import run_wordnet_k2, run_wordnet_lowest_k
from repro.experiments.yago_scalability import (
    fit_exponential,
    fit_power_law,
    run_yago_scalability,
)

__all__ = [
    "ExperimentResult",
    "register",
    "get_experiment",
    "all_experiments",
    "run_experiment",
    "run_overview",
    "run_dbpedia_k2",
    "run_dbpedia_lowest_k",
    "run_dependency_table",
    "run_symdep_ranking",
    "run_wordnet_k2",
    "run_wordnet_lowest_k",
    "run_yago_scalability",
    "run_semantic_correctness",
    "classify_refinement",
    "run_reduction_check",
    "fit_power_law",
    "fit_exponential",
]
