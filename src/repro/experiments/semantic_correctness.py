"""Experiment E9 — Section 7.4: semantic correctness on a mixed dataset.

Two explicit sorts (Drug Companies and Sultans) are mixed into one dataset;
a *highest θ for k = 2* refinement is computed and interpreted as a binary
classifier for Drug Companies.  The paper reports, with the plain Cov rule,
74.6% accuracy / 61.4% precision / 100% recall, improving to 82.1% / 69.2%
/ 100% when Cov is modified to ignore the four RDF-syntax properties
(``type``, ``sameAs``, ``subClassOf``, ``label``) that both sorts share.

The synthetic mixed dataset keeps the same structure (disjoint domain
properties, shared syntax properties, incomplete rows), so the reproduction
target is: good-but-imperfect recovery with plain Cov, and a measurable
improvement when the syntax properties are ignored.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Dataset
from repro.core.refinement import SortRefinement
from repro.datasets import mixed_drug_companies_and_sultans
from repro.datasets.mixed import MixedDataset, SYNTAX_PROPERTIES
from repro.experiments.base import ExperimentResult, register
from repro.report.metrics import ConfusionMatrix
from repro.rules import coverage, coverage_ignoring
from repro.rules.ast import Rule

__all__ = ["run_semantic_correctness", "classify_refinement"]


def classify_refinement(refinement: SortRefinement, dataset: MixedDataset) -> ConfusionMatrix:
    """Score a k ≤ 2 refinement as a Drug-Company classifier.

    The implicit sort containing the larger number of drug-company subjects
    is labelled "classified as Drug Company"; the other (if any) "classified
    as Sultan".  The ground truth is signature-level (a refinement can only
    route whole signature sets), exactly like the paper's evaluation.
    """
    per_sort = []
    for sort in refinement.sorts:
        drug = sum(dataset.truth[sig][0] for sig in sort.signatures)
        sultan = sum(dataset.truth[sig][1] for sig in sort.signatures)
        per_sort.append((drug, sultan))
    if not per_sort:
        return ConfusionMatrix(0, 0, 0, 0)
    drug_sort_index = max(range(len(per_sort)), key=lambda i: per_sort[i][0])
    tp = fp = fn = tn = 0
    for index, (drug, sultan) in enumerate(per_sort):
        if index == drug_sort_index:
            tp += drug
            fp += sultan
        else:
            fn += drug
            tn += sultan
    return ConfusionMatrix(tp=tp, fp=fp, fn=fn, tn=tn)


@register("semantic_correctness")
def run_semantic_correctness(
    n_drug_companies: int = 450,
    n_sultans: int = 400,
    seed: int = 41,
    step: float = 0.02,
    solver_time_limit: Optional[float] = 60.0,
) -> ExperimentResult:
    """Regenerate the Section 7.4 semantic-correctness study."""
    dataset = mixed_drug_companies_and_sultans(
        n_drug_companies=n_drug_companies, n_sultans=n_sultans, seed=seed
    )
    session = Dataset.from_table(dataset.table, name="Drug Companies + Sultans").session(
        solver_time_limit=solver_time_limit
    )
    result = ExperimentResult(
        experiment_id="semantic_correctness",
        title="Section 7.4 — recovering Drug Companies vs Sultans from a mixed dataset",
        paper_reference={
            "plain Cov": "accuracy 74.6%, precision 61.4%, recall 100%",
            "Cov ignoring RDF-syntax properties": "accuracy 82.1%, precision 69.2%, recall 100%",
        },
    )

    variants: list[tuple[str, Rule]] = [
        ("Cov", coverage()),
        ("Cov ignoring syntax properties", coverage_ignoring(SYNTAX_PROPERTIES)),
    ]
    accuracies = {}
    for label, rule in variants:
        search = session.refine(rule, k=2, step=step)
        confusion = classify_refinement(search.refinement, dataset)
        accuracies[label] = confusion.accuracy
        row = {"rule": label, "theta": search.theta, "k": search.refinement.k}
        row.update(confusion.as_dict())
        result.rows.append(row)

    improved = accuracies.get("Cov ignoring syntax properties", 0) >= accuracies.get("Cov", 0)
    result.notes.append(
        "Reproduction target: imperfect recovery with plain Cov, improved (or at least not "
        f"degraded) when the RDF-syntax properties are ignored — observed improvement: {improved}."
    )
    result.notes.append(
        "As the paper remarks, the experiment assumes the two explicit sorts are well "
        "differentiated to begin with, which is exactly the assumption the paper questions."
    )
    return result
