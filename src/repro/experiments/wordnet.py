"""Experiments E6 & E7 — Figures 6 and 7: WordNet Nouns refinements.

Figure 6: highest θ for k = 2 under σCov and σSim.  The paper's findings:

* under Cov the improvement over the un-refined dataset is small (0.44 →
  ~0.55/0.56) because a handful of dominant signatures already covers most
  subjects — k = 2 simply cannot discriminate much;
* under Sim the dataset was already highly structured (0.93), and the
  refinement mostly separates the rows lacking ``gloss``.

Figure 7: lowest k for a fixed threshold — θ = 0.9 under Cov (paper:
k = 31, i.e. essentially one sort per signature, confirming WordNet Nouns
is already a fine-grained sort) and θ = 0.98 under Sim (paper: k = 4,
splitting the four largest signatures apart).
"""

from __future__ import annotations

from typing import Optional

from repro.api import Dataset
from repro.experiments.base import ExperimentResult, register
from repro.functions import coverage_function, similarity_function
from repro.matrix.horizontal import render_refinement
from repro.rdf.namespaces import WORDNET
from repro.rules import coverage, similarity

__all__ = ["run_wordnet_k2", "run_wordnet_lowest_k"]


@register("figure6")
def run_wordnet_k2(
    n_subjects: int = 15_000,
    seed: int = 11,
    sim_max_signatures: int = 12,
    step: float = 0.01,
    solver_time_limit: Optional[float] = 60.0,
    include_sim: bool = True,
    render_figures: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 6 (k = 2 refinements of WordNet Nouns)."""
    cov_fn, sim_fn = coverage_function(), similarity_function()
    result = ExperimentResult(
        experiment_id="figure6",
        title="Figure 6 — WordNet Nouns, highest-theta sort refinement for k = 2",
        paper_reference={
            "Fig 6a (Cov)": "sorts of 14,938 / 64,751 subjects; Cov 0.55 / 0.56 (small gain over 0.44)",
            "Fig 6b (Sim)": "sorts of 7,311 / 72,378 subjects; Sim 0.98 / 0.94; the small sort lacks gloss",
        },
    )
    runs = [
        ("Cov", coverage(), Dataset.builtin("wordnet-nouns", n_subjects=n_subjects, seed=seed), cov_fn)
    ]
    if include_sim:
        runs.append(
            (
                "Sim",
                similarity(),
                Dataset.builtin(
                    "wordnet-nouns",
                    n_subjects=n_subjects,
                    seed=seed,
                    max_signatures=sim_max_signatures,
                ),
                sim_fn,
            )
        )
    for label, rule, dataset, function in runs:
        session = dataset.session(solver_time_limit=solver_time_limit)
        search = session.refine(rule, k=2, step=step)
        refinement = search.refinement
        for sort in refinement.sorts:
            result.rows.append(
                {
                    "rule": label,
                    "theta": search.theta,
                    "sort": sort.index + 1,
                    "subjects": sort.n_subjects,
                    "signatures": sort.n_signatures,
                    "Cov": sort.structuredness(cov_fn),
                    "Sim": sort.structuredness(function if label == "Sim" else sim_fn),
                    "uses gloss": WORDNET.gloss in sort.used_properties,
                    "uses memberMeronymOf": WORDNET.memberMeronymOf in sort.used_properties,
                }
            )
        if render_figures:
            result.figures.append(
                render_refinement(
                    [sort.table for sort in refinement.sorts],
                    parent_properties=dataset.table.properties,
                    title=f"[Figure 6 / {label}: theta = {search.theta:.3f}]",
                )
            )
    result.notes.append(
        "The paper observes the k = 2 Cov refinement improves structuredness only slightly "
        "(0.44 -> ~0.55): WordNet Nouns is dominated by a few large, similar signatures."
    )
    return result


@register("figure7")
def run_wordnet_lowest_k(
    n_subjects: int = 15_000,
    seed: int = 11,
    cov_theta: float = 0.9,
    sim_theta: float = 0.98,
    cov_max_signatures: int = 24,
    sim_max_signatures: int = 12,
    solver_time_limit: Optional[float] = 60.0,
    include_sim: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 7 (lowest-k refinements of WordNet Nouns).

    Parameters
    ----------
    cov_theta / sim_theta:
        The thresholds of Figures 7a (0.9) and 7b (0.98).
    cov_max_signatures:
        The Cov search needs to probe many values of k (the paper finds
        k = 31); capping the signature count keeps the sweep fast while
        preserving the qualitative outcome that k is a large fraction of
        the number of signatures.
    """
    cov_fn, sim_fn = coverage_function(), similarity_function()
    result = ExperimentResult(
        experiment_id="figure7",
        title="Figure 7 — WordNet Nouns, lowest k for a fixed threshold",
        paper_reference={
            "Fig 7a (Cov, theta=0.9)": "k = 31 — almost one sort per signature",
            "Fig 7b (Sim, theta=0.98)": "k = 4 — the four dominant signatures get their own sorts",
        },
    )
    runs = [("Cov", coverage(), cov_theta, cov_max_signatures, cov_fn, "auto")]
    if include_sim:
        runs.append(("Sim", similarity(), sim_theta, sim_max_signatures, sim_fn, "auto"))
    for label, rule, theta, max_signatures, function, direction in runs:
        dataset = Dataset.builtin(
            "wordnet-nouns", n_subjects=n_subjects, seed=seed, max_signatures=max_signatures
        )
        session = dataset.session(solver_time_limit=solver_time_limit)
        search = session.lowest_k(rule, theta=theta, direction=direction)
        table = dataset.table
        refinement = search.refinement
        result.rows.append(
            {
                "rule": label,
                "theta": theta,
                "signatures": table.n_signatures,
                "lowest k": search.k,
                "k / signatures": search.k / table.n_signatures,
                "min sigma": refinement.min_structuredness(function),
                "largest sort": max(refinement.sizes),
                "smallest sort": min(refinement.sizes),
                "probes": search.n_probes,
            }
        )
        result.notes.append(
            f"{label}: lowest k = {search.k} of {table.n_signatures} signatures at theta = {theta}"
        )
    result.notes.append(
        "The qualitative check against the paper: under Cov the lowest k is a large fraction of "
        "the number of signatures (the dataset is already a fine-grained sort), while under Sim "
        "a handful of sorts suffices."
    )
    return result
