"""Experiment E3 — Figure 5: DBpedia Persons, lowest k for a fixed threshold.

The paper fixes θ = 0.9 and searches for the smallest k such that a sort
refinement with that threshold exists, finding k = 9 under σCov
(Figure 5a) and k = 4 under σSim (Figure 5b), with the Cov sorts cleanly
separating alive/dead people by which property subsets they use.
"""

from __future__ import annotations

from typing import Optional

from repro.api import Dataset
from repro.datasets.dbpedia_persons import PERSONS_NAMESPACE
from repro.experiments.base import ExperimentResult, register
from repro.functions import coverage_function, similarity_function
from repro.rules import coverage, similarity

__all__ = ["run_dbpedia_lowest_k"]


@register("figure5")
def run_dbpedia_lowest_k(
    n_subjects: int = 20_000,
    seed: int = 7,
    theta: float = 0.9,
    cov_max_signatures: int = 64,
    sim_max_signatures: int = 12,
    solver_time_limit: Optional[float] = 60.0,
    include_sim: bool = True,
    direction: str = "auto",
) -> ExperimentResult:
    """Regenerate Figure 5 (lowest-k refinements of DBpedia Persons at θ = 0.9).

    Parameters
    ----------
    theta:
        The fixed threshold (0.9 in the paper).
    cov_max_signatures / sim_max_signatures:
        Signature caps for the two parts; Sim is far more expensive (see
        Figure 4 notes), so its table is folded more aggressively.
    include_sim:
        Allow skipping the Sim part.
    """
    cov_fn, sim_fn = coverage_function(), similarity_function()
    result = ExperimentResult(
        experiment_id="figure5",
        title=f"Figure 5 — DBpedia Persons, lowest k with threshold {theta}",
        paper_reference={
            "Fig 5a (Cov, theta=0.9)": "k = 9; sort sizes from 260,585 down to 10,748 subjects; "
            "alive/dead people split by which property subsets they use",
            "Fig 5b (Sim, theta=0.9)": "k = 4; sort sizes from 292,880 down to 87,117 subjects",
        },
    )

    runs = [("Cov", coverage(), cov_max_signatures, cov_fn)]
    if include_sim:
        runs.append(("Sim", similarity(), sim_max_signatures, sim_fn))

    ns = PERSONS_NAMESPACE
    for label, rule, max_signatures, function in runs:
        dataset = Dataset.builtin(
            "dbpedia-persons", n_subjects=n_subjects, seed=seed, max_signatures=max_signatures
        )
        session = dataset.session(solver_time_limit=solver_time_limit)
        search = session.lowest_k(rule, theta=theta, direction=direction)
        refinement = search.refinement
        for sort in refinement.sorts:
            result.rows.append(
                {
                    "rule": label,
                    "k": search.k,
                    "sort": sort.index + 1,
                    "subjects": sort.n_subjects,
                    "signatures": sort.n_signatures,
                    "properties used": len(sort.used_properties),
                    "sigma": sort.structuredness(function),
                    "uses deathDate": ns.deathDate in sort.used_properties,
                    "uses deathPlace": ns.deathPlace in sort.used_properties,
                }
            )
        result.notes.append(
            f"{label}: lowest k = {search.k} at theta = {theta} "
            f"({search.n_probes} ILP probes, {search.total_time:.1f}s)"
        )
    return result
