"""Experiment E10 — Theorem 5.1 / Appendix A: the NP-hardness construction.

This is not a table or figure of the paper, but it is a checkable artefact
of its main theoretical claim: for the fixed 11-variable rule ``r0``, a
graph G is 3-colorable iff the constructed RDF graph ``D_G`` admits a
σ_{r0}-sort refinement with threshold 1 and at most 3 implicit sorts.

The experiment exercises the *constructive* direction end-to-end on a
family of small graphs: it builds ``D_G``, finds a 3-coloring (when one
exists), maps it to a partition and verifies with the rule evaluator that
every part reaches σ_{r0} = 1; for non-3-colorable graphs it confirms that
candidate partitions derived from improper colorings fall short of the
threshold.
"""

from __future__ import annotations

import networkx as nx

from repro.api import Dataset
from repro.experiments.base import ExperimentResult, register
from repro.reduction import (
    build_reduction_matrix,
    find_three_coloring,
    verify_coloring_gives_threshold_one,
)

__all__ = ["run_reduction_check"]


def _graph_family() -> list[tuple[str, nx.Graph]]:
    return [
        ("path P3", nx.path_graph(3)),
        ("triangle K3", nx.complete_graph(3)),
        ("cycle C5", nx.cycle_graph(5)),
        ("bipartite K2,3", nx.complete_bipartite_graph(2, 3)),
        ("clique K4 (not 3-colorable)", nx.complete_graph(4)),
        ("wheel over C5 (not 3-colorable)", nx.wheel_graph(6)),
    ]


@register("reduction")
def run_reduction_check() -> ExperimentResult:
    """Check the 3-coloring reduction on a family of small graphs."""
    result = ExperimentResult(
        experiment_id="reduction",
        title="Theorem 5.1 / Appendix A — 3-coloring reduction sanity check",
        paper_reference={
            "claim": "G is 3-colorable iff D_G has a sigma_r0-sort refinement with "
            "threshold 1 and at most 3 implicit sorts"
        },
    )
    for name, graph in _graph_family():
        matrix = build_reduction_matrix(graph)
        # The constructed D_G through the session facade: its signature
        # table is the instance the decision procedure would refine.
        info = Dataset.from_matrix(matrix, name=f"D_G[{name}]").info
        coloring = find_three_coloring(graph)
        row: dict = {
            "graph": name,
            "nodes": graph.number_of_nodes(),
            "matrix shape": f"{matrix.shape[0]}x{matrix.shape[1]}",
            "signatures": info.n_signatures,
            "3-colorable": coloring is not None,
        }
        if coloring is not None:
            sigmas = verify_coloring_gives_threshold_one(graph, coloring)
            row["min sigma of induced refinement"] = min(sigmas)
            row["refinement reaches threshold 1"] = min(sigmas) >= 1.0
        result.rows.append(row)
    result.notes.append(
        "For 3-colorable graphs, the coloring-induced partition reaches sigma_r0 = 1 on every "
        "part, witnessing the forward direction of the reduction; non-3-colorable graphs have "
        "no proper coloring to start from (the converse direction is Theorem A.2.1)."
    )
    return result
