"""Experiment E1 — dataset overviews (Figures 2 & 3 and the §7.1/§7.2 statistics).

Reproduces, for the DBpedia Persons and WordNet Nouns stand-ins:

* subjects / properties / signature counts;
* σCov and σSim of the whole sort (paper: 0.54 / 0.77 for Persons and
  0.44 / 0.93 for Nouns);
* the "horizontal table" figures as ASCII renderings.
"""

from __future__ import annotations

from repro.api import Dataset
from repro.experiments.base import ExperimentResult, register
from repro.matrix.horizontal import render_signature_table

__all__ = ["run_overview"]


@register("overview")
def run_overview(
    persons_subjects: int = 20_000,
    nouns_subjects: int = 15_000,
    seed: int = 7,
) -> ExperimentResult:
    """Regenerate the dataset-overview statistics and figures.

    Parameters
    ----------
    persons_subjects / nouns_subjects:
        Scale of the synthetic datasets (paper scale: 790,703 and 79,689).
    seed:
        Random seed for the DBpedia Persons generator (the WordNet one has
        its own default seed).
    """
    result = ExperimentResult(
        experiment_id="overview",
        title="Figures 2 & 3 — dataset overviews (DBpedia Persons, WordNet Nouns)",
        paper_reference={
            "DBpedia Persons": "790,703 subjects, 8 properties, 64 signatures, Cov=0.54, Sim=0.77",
            "WordNet Nouns": "79,689 subjects, 12 properties, 53 signatures, Cov=0.44, Sim=0.93",
        },
    )
    persons = Dataset.builtin("dbpedia-persons", n_subjects=persons_subjects, seed=seed)
    nouns = Dataset.builtin("wordnet-nouns", n_subjects=nouns_subjects)
    for dataset, paper_cov, paper_sim in ((persons, 0.54, 0.77), (nouns, 0.44, 0.93)):
        session = dataset.session()
        info = session.info
        result.rows.append(
            {
                "dataset": info.name,
                "subjects": info.n_subjects,
                "properties": info.n_properties,
                "signatures": info.n_signatures,
                "Cov": session.evaluate("Cov").value,
                "Cov (paper)": paper_cov,
                "Sim": session.evaluate("Sim").value,
                "Sim (paper)": paper_sim,
            }
        )
        result.figures.append(
            render_signature_table(dataset.table, max_rows=20, title=f"[{info.name}]")
        )
    result.notes.append(
        "Synthetic stand-ins reproduce the signature distribution reported in the paper; "
        "see DESIGN.md for the substitution argument."
    )
    return result
