"""Experiment E1 — dataset overviews (Figures 2 & 3 and the §7.1/§7.2 statistics).

Reproduces, for the DBpedia Persons and WordNet Nouns stand-ins:

* subjects / properties / signature counts;
* σCov and σSim of the whole sort (paper: 0.54 / 0.77 for Persons and
  0.44 / 0.93 for Nouns);
* the "horizontal table" figures as ASCII renderings.
"""

from __future__ import annotations

from repro.datasets import dbpedia_persons_table, wordnet_nouns_table
from repro.experiments.base import ExperimentResult, register
from repro.functions import coverage, similarity
from repro.matrix.horizontal import render_signature_table

__all__ = ["run_overview"]


@register("overview")
def run_overview(
    persons_subjects: int = 20_000,
    nouns_subjects: int = 15_000,
    seed: int = 7,
) -> ExperimentResult:
    """Regenerate the dataset-overview statistics and figures.

    Parameters
    ----------
    persons_subjects / nouns_subjects:
        Scale of the synthetic datasets (paper scale: 790,703 and 79,689).
    seed:
        Random seed for the DBpedia Persons generator (the WordNet one has
        its own default seed).
    """
    result = ExperimentResult(
        experiment_id="overview",
        title="Figures 2 & 3 — dataset overviews (DBpedia Persons, WordNet Nouns)",
        paper_reference={
            "DBpedia Persons": "790,703 subjects, 8 properties, 64 signatures, Cov=0.54, Sim=0.77",
            "WordNet Nouns": "79,689 subjects, 12 properties, 53 signatures, Cov=0.44, Sim=0.93",
        },
    )
    persons = dbpedia_persons_table(n_subjects=persons_subjects, seed=seed)
    nouns = wordnet_nouns_table(n_subjects=nouns_subjects)
    for table, paper_cov, paper_sim in ((persons, 0.54, 0.77), (nouns, 0.44, 0.93)):
        result.rows.append(
            {
                "dataset": table.name,
                "subjects": table.n_subjects,
                "properties": table.n_properties,
                "signatures": table.n_signatures,
                "Cov": coverage(table),
                "Cov (paper)": paper_cov,
                "Sim": similarity(table),
                "Sim (paper)": paper_sim,
            }
        )
        result.figures.append(
            render_signature_table(table, max_rows=20, title=f"[{table.name}]")
        )
    result.notes.append(
        "Synthetic stand-ins reproduce the signature distribution reported in the paper; "
        "see DESIGN.md for the substitution argument."
    )
    return result
