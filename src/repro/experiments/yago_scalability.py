"""Experiment E8 — Figure 8: scalability on a YAGO-like sample of explicit sorts.

For every sort of a synthetic YAGO-like sample, solve a *highest θ for
k = 2* refinement under σCov and record the total ILP time (encoding plus
all probe solves).  The paper's findings that this experiment reproduces:

* runtime is independent of the number of *subjects* of a sort;
* runtime grows polynomially with the number of *signatures* (the paper
  fits ≈ s^2.5);
* runtime grows exponentially with the number of *properties* (the paper
  fits ≈ e^{0.28 p});
* the overwhelming majority of explicit sorts is small enough for the
  approach to be practical.

The regression exponents measured here depend on the MILP backend (HiGHS
vs CPLEX) and on the reduced sample scale, so the *signs and rough
magnitudes* of the fits are the reproduction target, not their exact
values.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from repro.api import Dataset
from repro.datasets import property_histogram, signature_histogram, yago_sort_sample
from repro.experiments.base import ExperimentResult, register
from repro.rules import coverage

__all__ = ["run_yago_scalability", "fit_power_law", "fit_exponential"]


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Fit ``y ≈ a * x^b`` by least squares in log-log space; return (b, R^2)."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    mask = (x_arr > 0) & (y_arr > 0)
    if mask.sum() < 2:
        return float("nan"), float("nan")
    log_x, log_y = np.log(x_arr[mask]), np.log(y_arr[mask])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predictions = slope * log_x + intercept
    residual = np.sum((log_y - predictions) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(r_squared)


def fit_exponential(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Fit ``y ≈ a * e^{b x}`` by least squares in semi-log space; return (b, R^2)."""
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    mask = y_arr > 0
    if mask.sum() < 2:
        return float("nan"), float("nan")
    log_y = np.log(y_arr[mask])
    slope, intercept = np.polyfit(x_arr[mask], log_y, 1)
    predictions = slope * x_arr[mask] + intercept
    residual = np.sum((log_y - predictions) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return float(slope), float(r_squared)


@register("figure8")
def run_yago_scalability(
    n_sorts: int = 30,
    seed: int = 23,
    max_signatures: int = 40,
    max_properties: int = 20,
    step: float = 0.05,
    solver_time_limit: Optional[float] = 30.0,
    max_probes: int = 8,
    detailed_rows: bool = False,
) -> ExperimentResult:
    """Regenerate Figure 8 (runtime scaling over a sample of explicit sorts).

    Parameters
    ----------
    n_sorts / max_signatures / max_properties:
        Sample size and per-sort structural caps (the paper uses ~500
        sorts, up to ~350 signatures and ~40 properties; the defaults are
        scaled down so the sweep completes in minutes with HiGHS).
    step / max_probes:
        The θ-search is coarsened (bigger steps, few probes) because the
        measured quantity is per-sort ILP effort, not the refinement itself.
    detailed_rows:
        Include one row per sort in addition to the aggregate fits.
    """
    tables = yago_sort_sample(
        n_sorts=n_sorts,
        seed=seed,
        max_signatures=max_signatures,
        max_properties=max_properties,
    )
    rule = coverage()
    measurements = []
    for table in tables:
        session = Dataset.from_table(table).session(solver_time_limit=solver_time_limit)
        started = time.perf_counter()
        search = session.refine(rule, k=2, step=step, max_probes=max_probes)
        elapsed = time.perf_counter() - started
        measurements.append(
            {
                "sort": table.name,
                "subjects": table.n_subjects,
                "signatures": table.n_signatures,
                "properties": table.n_properties,
                "runtime_s": elapsed,
                "probes": search.n_probes,
                "solver_probes": search.n_solver_probes,
                "theta": search.theta,
            }
        )

    signatures = [m["signatures"] for m in measurements]
    properties = [m["properties"] for m in measurements]
    subjects = [m["subjects"] for m in measurements]
    runtimes = [m["runtime_s"] for m in measurements]
    sig_exponent, sig_r2 = fit_power_law(signatures, runtimes)
    prop_rate, prop_r2 = fit_exponential(properties, runtimes)
    subj_exponent, subj_r2 = fit_power_law(subjects, runtimes)

    result = ExperimentResult(
        experiment_id="figure8",
        title="Figure 8 — scalability of the ILP solution over a YAGO-like sort sample",
        paper_reference={
            "runtime vs signatures": "power-law fit ~ s^2.53 (R^2 = 0.72)",
            "runtime vs properties": "exponential fit ~ e^{0.28 p} (R^2 = 0.61)",
            "runtime vs subjects": "no dependence",
            "coverage": "99.9% of YAGO sorts have < 350 signatures; 99.8% have < 40 properties",
        },
    )
    result.rows.append(
        {
            "quantity": "runtime vs #signatures (power-law exponent)",
            "measured": sig_exponent,
            "R2": sig_r2,
            "paper": 2.53,
        }
    )
    result.rows.append(
        {
            "quantity": "runtime vs #properties (exponential rate)",
            "measured": prop_rate,
            "R2": prop_r2,
            "paper": 0.28,
        }
    )
    result.rows.append(
        {
            "quantity": "runtime vs #subjects (power-law exponent, expect ~0)",
            "measured": subj_exponent,
            "R2": subj_r2,
            "paper": 0.0,
        }
    )
    if detailed_rows:
        result.rows.extend(measurements)

    result.figures.append(_histogram_text("signatures per sort", signature_histogram(tables)))
    result.figures.append(_histogram_text("properties per sort", property_histogram(tables)))
    result.notes.append(
        "Absolute runtimes and exact exponents differ from the paper (different solver and "
        "sample scale); the reproduction target is the qualitative scaling: increasing in "
        "signatures and properties, flat in subjects."
    )
    return result


def _histogram_text(title: str, bins: Sequence[tuple]) -> str:
    lines = [f"[{title}]"]
    for label, count in bins:
        lines.append(f"  {label:>12}: {'#' * count} ({count})")
    return "\n".join(lines)
