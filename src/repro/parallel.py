"""The executor facade behind every ``jobs`` knob in the library.

One class, :class:`ParallelExecutor`, owns the thread/process pools used
by parallel rule counting (:mod:`repro.rules.counting`), sharded σ
evaluation (:mod:`repro.matrix.sharded`) and the speculative ILP probes
of the searches (:mod:`repro.core.search`).  The design contract is:

* ``jobs=1`` (the default) is **exactly today's serial code**: ``map``
  degrades to a list comprehension on the calling thread, ``submit`` is
  refused, and no pool is ever created.  Every caller that threads an
  executor through must keep its ``jobs=1`` behaviour byte-identical to
  the pre-parallel implementation.
* ``jobs>1`` parallelises only *where results are provably
  order-independent or consumed in serial order*: ``map`` preserves
  input order, and the searches consume speculative futures in exactly
  the sequence the serial state machine would probe, so results (and
  wire payloads) stay bit-identical to ``jobs=1``.
* Thread pools are the default (the NumPy counting kernels and the
  HiGHS solver release the GIL); ``mode="process"`` fans picklable work
  out across processes for pure-Python workloads.

``resolve_jobs`` is the one place the ``REPRO_JOBS`` environment
variable is honoured: ``jobs=None`` reads it (defaulting to 1), so CI
can exercise every parallel path by exporting ``REPRO_JOBS=2`` without
touching a single call site.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.exceptions import RequestError
from repro.telemetry import current as current_telemetry

__all__ = ["REPRO_JOBS_ENV", "resolve_jobs", "ParallelExecutor"]

#: Environment variable read by :func:`resolve_jobs` when ``jobs`` is None.
REPRO_JOBS_ENV = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[Union[int, str]] = None) -> int:
    """Resolve a ``jobs`` setting to a concrete worker count (>= 1).

    ``None`` reads the ``REPRO_JOBS`` environment variable (defaulting
    to 1 when unset or empty); ``0`` or ``"auto"`` means one job per
    available CPU; a positive integer (or its string spelling) passes
    through.  Anything else raises
    :class:`~repro.exceptions.RequestError`.
    """
    if jobs is None:
        raw = os.environ.get(REPRO_JOBS_ENV)
        if raw is None or not raw.strip():
            return 1
        jobs = raw.strip()
    if isinstance(jobs, str):
        if jobs.lower() == "auto":
            jobs = 0
        else:
            try:
                jobs = int(jobs)
            except ValueError:
                raise RequestError(
                    f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}"
                ) from None
    if isinstance(jobs, bool) or not isinstance(jobs, int):
        raise RequestError(f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}")
    if jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise RequestError(f"jobs must be a positive integer, 0 or 'auto', got {jobs!r}")
    return jobs


class ParallelExecutor:
    """Order-preserving ``map`` plus a speculative ``submit`` surface.

    Parameters
    ----------
    jobs:
        Worker budget, resolved through :func:`resolve_jobs` (``None``
        honours ``REPRO_JOBS``; 1 means strictly serial execution).
    mode:
        Default pool flavour for :meth:`map`: ``"thread"`` (the default;
        right for NumPy kernels and GIL-releasing solvers) or
        ``"process"`` (picklable work, pure-Python CPU-bound loops).

    Pools are created lazily on first parallel use, reused across calls,
    and shut down by :meth:`close` (also a context manager).  With
    ``jobs=1`` no pool ever exists and ``map`` runs the exact serial
    loop a plain list comprehension would.
    """

    def __init__(self, jobs: Optional[Union[int, str]] = None, mode: str = "thread"):
        if mode not in ("thread", "process"):
            raise RequestError(f"mode must be 'thread' or 'process', got {mode!r}")
        self._jobs = resolve_jobs(jobs)
        self._mode = mode
        self._thread_pool: Optional[ThreadPoolExecutor] = None
        self._process_pool: Optional[ProcessPoolExecutor] = None
        # Guards lazy pool creation: searches running on a threaded HTTP
        # server may share one session executor across handler threads.
        self._lock = threading.Lock()

    @property
    def jobs(self) -> int:
        """The resolved worker budget (1 means serial execution)."""
        return self._jobs

    @property
    def mode(self) -> str:
        """The default pool flavour used by :meth:`map`."""
        return self._mode

    @property
    def parallel(self) -> bool:
        """Whether this executor runs anything concurrently at all."""
        return self._jobs > 1

    def _pool(self, mode: str):
        with self._lock:
            if mode == "process":
                if self._process_pool is None:
                    self._process_pool = ProcessPoolExecutor(max_workers=self._jobs)
                return self._process_pool
            if self._thread_pool is None:
                self._thread_pool = ThreadPoolExecutor(
                    max_workers=self._jobs, thread_name_prefix="repro-jobs"
                )
            return self._thread_pool

    def map(
        self,
        fn: Callable,
        items: Union[Sequence, Iterable],
        mode: Optional[str] = None,
    ) -> List:
        """Apply ``fn`` to every item, preserving input order in the result.

        With ``jobs=1`` (or fewer than two items) this is literally
        ``[fn(item) for item in items]`` on the calling thread — the
        serial fallback every caller's determinism contract relies on.
        Exceptions propagate exactly as in the serial loop: the first
        failing item's exception is raised.
        """
        items = list(items)
        if self._jobs <= 1 or len(items) <= 1:
            current_telemetry().incr("parallel.map.serial")
            return [fn(item) for item in items]
        pool = self._pool(mode or self._mode)
        with current_telemetry().span("parallel.map"):
            return list(pool.map(fn, items))

    def submit(self, fn: Callable, /, *args, **kwargs) -> Future:
        """Schedule ``fn(*args, **kwargs)`` on the thread pool; returns a Future.

        This is the speculative-probe surface: the searches launch
        upcoming ILP probes here and consume the futures in serial
        order.  Only meaningful with ``jobs > 1`` — a serial executor
        refuses, because eagerly evaluating a speculative thunk would
        change the ``jobs=1`` behaviour the fallback contract promises.
        """
        if self._jobs <= 1:
            raise RequestError("submit() requires a parallel executor (jobs > 1)")
        current_telemetry().incr("parallel.submit")
        return self._pool("thread").submit(fn, *args, **kwargs)

    def describe(self) -> Dict[str, object]:
        """Serialisable config: the resolved jobs budget and pool mode."""
        return {"jobs": self._jobs, "mode": self._mode}

    def close(self) -> None:
        """Shut down any pools (in-flight futures are cancelled if possible)."""
        with self._lock:
            thread_pool, self._thread_pool = self._thread_pool, None
            process_pool, self._process_pool = self._process_pool, None
        if thread_pool is not None:
            thread_pool.shutdown(wait=False, cancel_futures=True)
        if process_pool is not None:
            process_pool.shutdown(wait=False, cancel_futures=True)

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ParallelExecutor jobs={self._jobs} mode={self._mode!r}>"
