"""A greedy agglomerative baseline for sort refinement.

The paper's exact method is the ILP encoding; related work (property-table
clustering, frequent-itemset mining) uses heuristics instead.  This module
provides a simple, fast, *non-exact* baseline:

* start with every signature set in its own implicit sort (such singleton
  sorts have σ = 1 for Cov/Sim-style rules);
* repeatedly merge the pair of sorts whose merge keeps the minimum
  structuredness highest;
* stop when the requested number of sorts ``k`` is reached
  (:meth:`GreedyRefiner.refine_k`) or when no merge can keep every sort at
  or above the threshold θ (:meth:`GreedyRefiner.refine_threshold`).

It is used (a) as a comparison point in the ablation benchmarks, showing
what exactness buys, and (b) as a fallback for instances that are too large
for the MILP backend.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.refinement import SortRefinement, refinement_from_assignment
from repro.exceptions import RefinementError
from repro.functions.structuredness import Dataset, StructurednessFunction, as_signature_table
from repro.matrix.signatures import Signature, SignatureTable

__all__ = ["GreedyRefiner"]

#: A structuredness evaluator usable by the greedy refiner: any callable
#: from a signature table to a float in [0, 1].
Evaluator = Callable[[SignatureTable], float]


class GreedyRefiner:
    """Greedy agglomerative refinement driven by a structuredness function.

    Parameters
    ----------
    function:
        A :class:`~repro.functions.structuredness.StructurednessFunction`
        or any callable mapping a signature table to a value in [0, 1].
    """

    def __init__(self, function: Evaluator):
        self.function = function
        self._sigma_cache: Dict[Tuple[Signature, ...], float] = {}

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _sigma_of(self, parent: SignatureTable, signatures: Sequence[Signature]) -> float:
        key = tuple(sorted(signatures, key=lambda s: sorted(str(p) for p in s)))
        if key not in self._sigma_cache:
            self._sigma_cache[key] = float(self.function(parent.select(list(key))))
        return self._sigma_cache[key]

    def _build_refinement(
        self,
        parent: SignatureTable,
        groups: List[List[Signature]],
        threshold: Optional[float],
        elapsed: float,
        strategy: str,
    ) -> SortRefinement:
        assignment = {
            signature: index for index, group in enumerate(groups) for signature in group
        }
        name = getattr(self.function, "name", None) or "greedy"
        refinement = refinement_from_assignment(
            parent,
            assignment,
            rule_name=f"greedy[{name}]",
            threshold=threshold,
            metadata={"strategy": strategy, "elapsed": elapsed, "exact": False},
        )
        return refinement

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def refine_k(self, dataset: Dataset, k: int) -> SortRefinement:
        """Merge signature sets down to at most ``k`` implicit sorts.

        At every step the merge that keeps the *minimum* per-sort
        structuredness as high as possible is applied.
        """
        if k < 1:
            raise RefinementError("k must be at least 1")
        parent = as_signature_table(dataset)
        started = time.perf_counter()
        groups: List[List[Signature]] = [[signature] for signature in parent.signatures]
        while len(groups) > k:
            best_pair: Optional[Tuple[int, int]] = None
            best_min_sigma = -1.0
            # Structuredness of the untouched groups does not change, so the
            # post-merge minimum is min(merged sigma, min over others).
            sigmas = [self._sigma_of(parent, group) for group in groups]
            for i in range(len(groups)):
                for j in range(i + 1, len(groups)):
                    merged_sigma = self._sigma_of(parent, groups[i] + groups[j])
                    others = [s for idx, s in enumerate(sigmas) if idx not in (i, j)]
                    candidate_min = min([merged_sigma] + others) if others else merged_sigma
                    if candidate_min > best_min_sigma:
                        best_min_sigma = candidate_min
                        best_pair = (i, j)
            if best_pair is None:  # pragma: no cover - len(groups) > k >= 1 implies pairs exist
                break
            i, j = best_pair
            merged = groups[i] + groups[j]
            groups = [g for idx, g in enumerate(groups) if idx not in (i, j)] + [merged]
        elapsed = time.perf_counter() - started
        return self._build_refinement(parent, groups, None, elapsed, strategy="refine_k")

    def refine_threshold(self, dataset: Dataset, theta: float) -> SortRefinement:
        """Merge signature sets while every implicit sort keeps ``σ ≥ θ``.

        The result is a (not necessarily minimal) refinement with threshold
        θ; the exact minimum k is what the ILP search computes.
        """
        if not 0 <= theta <= 1:
            raise RefinementError("theta must lie in [0, 1]")
        parent = as_signature_table(dataset)
        started = time.perf_counter()
        groups: List[List[Signature]] = [[signature] for signature in parent.signatures]

        # If even singleton sorts fall below theta there is nothing we can do
        # better than reporting them as they are; callers can inspect
        # min_structuredness to detect this.
        improved = True
        while improved and len(groups) > 1:
            improved = False
            best_pair: Optional[Tuple[int, int]] = None
            best_sigma = -1.0
            for i in range(len(groups)):
                for j in range(i + 1, len(groups)):
                    merged_sigma = self._sigma_of(parent, groups[i] + groups[j])
                    if merged_sigma >= theta and merged_sigma > best_sigma:
                        best_sigma = merged_sigma
                        best_pair = (i, j)
            if best_pair is not None:
                i, j = best_pair
                merged = groups[i] + groups[j]
                groups = [g for idx, g in enumerate(groups) if idx not in (i, j)] + [merged]
                improved = True
        elapsed = time.perf_counter() - started
        return self._build_refinement(parent, groups, theta, elapsed, strategy="refine_threshold")
