"""Search strategies on top of the decision procedure (Section 7 set-ups).

The experiments use two complementary formulations:

* **highest θ for a fixed k** — starting from the structuredness of the
  whole dataset (for which the trivial one-sort refinement is always a
  witness), increase θ in small steps and keep the last feasible solution.
  The paper prefers this sequential search over binary search because
  proving an instance infeasible is vastly more expensive than finding a
  witness for a feasible one.
* **lowest k for a fixed θ** — search over k, either upwards from 1
  (enduring a run of infeasible instances) or downwards from the number of
  signatures (solving a run of feasible instances), whichever the caller
  prefers; the paper chooses the direction case by case.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, List, Optional, Union

from repro.core.decision import RefinementDecision, decide_sort_refinement
from repro.core.encoder import SortRefinementEncoder, to_fraction
from repro.core.refinement import SortRefinement
from repro.exceptions import RefinementError
from repro.functions.structuredness import Dataset, as_signature_table
from repro.ilp.scipy_backend import ScipyMilpSolver
from repro.rules.ast import Rule
from repro.rules.counting import sigma_by_signatures_fraction

__all__ = ["SearchStep", "SearchResult", "highest_theta_refinement", "lowest_k_refinement"]


@dataclass
class SearchStep:
    """One probe of the decision procedure during a search."""

    theta: float
    k: int
    feasible: bool
    solve_time: float
    status: str


@dataclass
class SearchResult:
    """The outcome of a refinement search.

    Attributes
    ----------
    refinement:
        The best refinement found (``None`` only if even the first probe
        failed, which cannot happen for the standard searches).
    theta:
        The threshold achieved by ``refinement``.
    k:
        The number of implicit sorts of ``refinement``.
    steps:
        The full search trace.
    """

    refinement: Optional[SortRefinement]
    theta: float
    k: int
    steps: List[SearchStep] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def n_probes(self) -> int:
        """How many ILP instances were solved during the search."""
        return len(self.steps)


def _default_solver(time_limit: Optional[float]) -> ScipyMilpSolver:
    return ScipyMilpSolver(time_limit=time_limit)


def highest_theta_refinement(
    dataset: Dataset,
    rule: Rule,
    k: int,
    step: float = 0.01,
    initial_theta: Optional[Union[float, Fraction]] = None,
    solver: Optional[object] = None,
    solver_time_limit: Optional[float] = None,
    max_probes: int = 200,
    callback: Optional[Callable[[SearchStep], None]] = None,
) -> SearchResult:
    """Find (approximately) the largest θ admitting a refinement with ``k`` sorts.

    Implements the sequential search of Section 7: starting from
    ``θ = σ_r(D)`` (guaranteed feasible via the trivial refinement), the
    threshold is increased by ``step`` until the ILP becomes infeasible;
    the last stored solution is returned.

    Parameters
    ----------
    dataset, rule, k:
        As in :func:`repro.core.decision.decide_sort_refinement`.
    step:
        The θ increment (the paper uses 0.01).
    initial_theta:
        Explicit starting threshold; defaults to σ_r of the whole dataset.
    solver / solver_time_limit:
        Backend configuration; a time-limited probe that fails to find a
        witness is treated as "stop the search" but, like the paper notes,
        this is not a proof of infeasibility.
    max_probes:
        Safety cap on the number of ILP instances solved.
    callback:
        Called with every :class:`SearchStep` as it happens (progress bars,
        logging).
    """
    table = as_signature_table(dataset)
    encoder = SortRefinementEncoder(rule)
    if solver is None:
        solver = _default_solver(solver_time_limit)
    if initial_theta is None:
        # Start from sigma_r(D) (always feasible via the trivial one-sort
        # refinement), floored to a 1/10000 grid so that the threshold
        # fraction stays small and safely below the exact value.
        exact_sigma = sigma_by_signatures_fraction(rule, table)
        initial_theta = Fraction(int(exact_sigma * 10_000), 10_000)
    theta = to_fraction(initial_theta)
    step_fraction = to_fraction(step)
    if step_fraction <= 0:
        raise RefinementError("the theta search step must be positive")

    started = time.perf_counter()
    best: Optional[RefinementDecision] = None
    best_theta = theta
    steps: List[SearchStep] = []
    probes = 0
    while probes < max_probes and theta <= 1:
        decision = decide_sort_refinement(table, rule, theta, k, solver=solver, encoder=encoder)
        probes += 1
        search_step = SearchStep(
            theta=float(theta),
            k=k,
            feasible=decision.feasible,
            solve_time=decision.solve_time,
            status=decision.solution.status,
        )
        steps.append(search_step)
        if callback is not None:
            callback(search_step)
        if not decision.feasible:
            break
        best = decision
        best_theta = theta
        if theta == 1:
            break
        theta = min(Fraction(1), theta + step_fraction)
    total_time = time.perf_counter() - started

    if best is None or best.refinement is None:
        raise RefinementError(
            "the initial threshold was already infeasible; "
            "use initial_theta <= sigma_r(D) (the default) to guarantee a witness"
        )
    refinement = best.refinement
    refinement.metadata["search"] = "highest_theta"
    refinement.metadata["probes"] = probes
    return SearchResult(
        refinement=refinement,
        theta=float(best_theta),
        k=refinement.k,
        steps=steps,
        total_time=total_time,
    )


def lowest_k_refinement(
    dataset: Dataset,
    rule: Rule,
    theta: Union[float, Fraction, str],
    direction: str = "up",
    k_min: int = 1,
    k_max: Optional[int] = None,
    solver: Optional[object] = None,
    solver_time_limit: Optional[float] = None,
    callback: Optional[Callable[[SearchStep], None]] = None,
) -> SearchResult:
    """Find the smallest ``k`` admitting a refinement with threshold ``θ``.

    Parameters
    ----------
    direction:
        ``"up"`` starts at ``k_min`` and increases k until the first
        feasible instance (enduring infeasible probes); ``"down"`` starts at
        ``k_max`` (default: the number of signatures, always feasible
        because singleton-signature sorts have σ = 1 for the rules used in
        the paper) and decreases k while instances remain feasible.  The
        paper reports choosing the direction case by case for efficiency.
        ``"auto"`` first runs the greedy agglomerative baseline to obtain an
        upper bound on k, then searches downward from that bound — this way
        only the final probe is infeasible (infeasible MILP instances are by
        far the slowest ones, as the paper also observes).
    """
    table = as_signature_table(dataset)
    encoder = SortRefinementEncoder(rule)
    if solver is None:
        solver = _default_solver(solver_time_limit)
    theta_fraction = to_fraction(theta)
    if k_max is None:
        k_max = table.n_signatures
    if k_min < 1 or k_max < k_min:
        raise RefinementError(f"invalid k range [{k_min}, {k_max}]")
    if direction not in ("up", "down", "auto"):
        raise RefinementError("direction must be 'up', 'down' or 'auto'")
    if direction == "auto":
        # A greedy upper bound keeps the downward sweep short; fall back to
        # the full range when the heuristic cannot reach the threshold.
        from repro.core.greedy import GreedyRefiner
        from repro.functions.structuredness import best_function_for_rule

        function = best_function_for_rule(rule)
        greedy = GreedyRefiner(function).refine_threshold(table, float(theta_fraction))
        if greedy.min_structuredness(function) >= float(theta_fraction) - 1e-12:
            k_max = min(k_max, max(k_min, greedy.k))
        direction = "down"

    started = time.perf_counter()
    steps: List[SearchStep] = []
    best: Optional[RefinementDecision] = None
    best_k: Optional[int] = None

    def probe(k: int) -> RefinementDecision:
        decision = decide_sort_refinement(
            table, rule, theta_fraction, k, solver=solver, encoder=encoder
        )
        search_step = SearchStep(
            theta=float(theta_fraction),
            k=k,
            feasible=decision.feasible,
            solve_time=decision.solve_time,
            status=decision.solution.status,
        )
        steps.append(search_step)
        if callback is not None:
            callback(search_step)
        return decision

    if direction == "up":
        for k in range(k_min, k_max + 1):
            decision = probe(k)
            if decision.feasible:
                best, best_k = decision, k
                break
    else:
        for k in range(k_max, k_min - 1, -1):
            decision = probe(k)
            if not decision.feasible:
                break
            best, best_k = decision, k

    total_time = time.perf_counter() - started
    if best is None or best.refinement is None or best_k is None:
        raise RefinementError(
            f"no refinement with threshold {float(theta_fraction):.4f} exists with "
            f"k in [{k_min}, {k_max}]"
        )
    refinement = best.refinement
    refinement.metadata["search"] = "lowest_k"
    refinement.metadata["direction"] = direction
    return SearchResult(
        refinement=refinement,
        theta=float(theta_fraction),
        k=best_k,
        steps=steps,
        total_time=total_time,
    )
