"""Search strategies on top of the decision procedure (Section 7 set-ups).

The experiments use two complementary formulations:

* **highest θ for a fixed k** — starting from the structuredness of the
  whole dataset (for which the trivial one-sort refinement is always a
  witness), increase θ in small steps and keep the last feasible solution.
  The paper prefers this sequential search over binary search because
  proving an instance infeasible is vastly more expensive than finding a
  witness for a feasible one.
* **lowest k for a fixed θ** — search over k, either upwards from 1
  (enduring a run of infeasible instances) or downwards from the number of
  signatures (solving a run of feasible instances), whichever the caller
  prefers; the paper chooses the direction case by case.

Both searches are *incremental* (see DESIGN.md, "Incremental sweeps"):

* consecutive probes share one mutable encoder state, so moving between
  ``k`` or θ values re-encodes only the sort blocks / threshold rows that
  actually changed (``use_incremental=False`` falls back to from-scratch
  encoding; the assembled models are bit-identical either way, so the two
  paths return identical results and serve as a cross-check);
* a probe whose feasibility is already *certified* by the best witness
  found so far — the previous solution's exact per-sort σ values cover the
  new threshold, or its non-empty sort count is within the new ``k`` — is
  recorded without invoking the solver at all (``witness_skip=False``
  disables this).  Certification is exact (``Fraction`` arithmetic), so
  skipped probes are guaranteed to agree with what the solver would have
  answered.  Note that while θ, k, feasibility pattern and trace are
  unchanged, the *partition* returned for a witness-certified probe is the
  certifying witness — a valid refinement that may differ from the one the
  solver would have decoded; pass ``witness_skip=False`` to reproduce the
  solver's partitions probe for probe.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.decision import RefinementDecision, decide_sort_refinement
from repro.core.encoder import SortRefinementEncoder, to_fraction
from repro.core.refinement import SortRefinement, refinement_from_assignment
from repro.exceptions import RefinementError
from repro.functions.structuredness import (
    Dataset,
    StructurednessFunction,
    as_signature_table,
    best_function_for_rule,
)
from repro.ilp.registry import resolve_solver
from repro.parallel import ParallelExecutor
from repro.rules.ast import Rule
from repro.rules.counting import sigma_by_signatures_fraction

__all__ = ["SearchStep", "SearchResult", "highest_theta_refinement", "lowest_k_refinement"]

#: Step status recorded when a probe was answered by an exact witness
#: certificate instead of a solver call.
WITNESS_STATUS = "witness"


@dataclass
class SearchStep:
    """One probe of the decision procedure during a search.

    A step with ``status == "witness"`` was answered without a solver call:
    the feasibility was certified exactly by a previously found refinement.
    """

    theta: float
    k: int
    feasible: bool
    solve_time: float
    status: str


@dataclass
class SearchResult:
    """The outcome of a refinement search.

    Attributes
    ----------
    refinement:
        The best refinement found (``None`` only if even the first probe
        failed, which cannot happen for the standard searches).
    theta:
        The threshold achieved by ``refinement``.
    k:
        The number of implicit sorts of ``refinement``.
    steps:
        The full search trace.
    """

    refinement: Optional[SortRefinement]
    theta: float
    k: int
    steps: List[SearchStep] = field(default_factory=list)
    total_time: float = 0.0

    @property
    def n_probes(self) -> int:
        """How many decision probes the search made (including witness-certified ones)."""
        return len(self.steps)

    @property
    def n_solver_probes(self) -> int:
        """How many probes actually invoked the ILP solver."""
        return sum(1 for step in self.steps if step.status != WITNESS_STATUS)


def _exact_min_sigma(function: StructurednessFunction, refinement: SortRefinement) -> Fraction:
    """The smallest per-sort σ of a refinement, as an exact fraction."""
    values = [function.evaluate_fraction(sort.table) for sort in refinement.sorts]
    return min(values) if values else Fraction(1)


def _trivial_refinement(table, rule: Rule, theta: Fraction) -> SortRefinement:
    """The one-sort refinement (always entity preserving and signature closed)."""
    return refinement_from_assignment(
        table,
        {sig: 0 for sig in table.signatures},
        rule_name=rule.name or rule.to_text(),
        threshold=float(theta),
        metadata={"witness": "trivial"},
    )


def _singleton_refinement(table, rule: Rule, theta: Fraction) -> SortRefinement:
    """The one-sort-per-signature refinement (the finest possible one)."""
    return refinement_from_assignment(
        table,
        {sig: index for index, sig in enumerate(table.signatures)},
        rule_name=rule.name or rule.to_text(),
        threshold=float(theta),
        metadata={"witness": "singleton"},
    )


def _merged_witness(
    function: StructurednessFunction,
    witness: SortRefinement,
    theta: Fraction,
) -> Optional[SortRefinement]:
    """Warm-start a ``k``-probe from a ``k+1``-sort witness by merging two sorts.

    Every sort of ``witness`` already meets θ, so a merge produces a valid
    witness with one sort fewer iff the *merged* sort still meets θ — one
    exact σ evaluation per candidate pair, versus an ILP solve.  Pairs are
    tried smallest-first (small sorts disturb the ratio least).  Returns
    ``None`` when no pair certifies; the caller then falls back to the ILP.
    """
    parent = witness.parent
    sorts = witness.sorts
    pairs = sorted(
        ((a, b) for a in range(len(sorts)) for b in range(a + 1, len(sorts))),
        key=lambda ab: sorts[ab[0]].n_subjects + sorts[ab[1]].n_subjects,
    )
    for a, b in pairs:
        merged_signatures = list(sorts[a].signatures) + list(sorts[b].signatures)
        merged_table = parent.select(merged_signatures)
        if function.evaluate_fraction(merged_table) >= theta:
            assignment = {}
            for index, sort in enumerate(sorts):
                target = a if index == b else index
                for sig in sort.signatures:
                    assignment[sig] = target
            return refinement_from_assignment(
                parent,
                assignment,
                rule_name=witness.rule_name,
                threshold=float(theta),
                metadata={"witness": "merge"},
            )
    return None


#: Grid points are identified by (θ as an exact fraction, k).
_ProbePoint = Tuple[Fraction, int]


class _SpeculativeProbes:
    """Runs decision probes, speculatively pre-solving upcoming grid points.

    The searches walk a deterministic (θ, k) grid; with a parallel
    executor, up to ``jobs − 1`` of the next grid points are launched on
    worker threads *before* blocking on the current probe, so their solves
    overlap.  Determinism is preserved by construction:

    * the search state machine (witness certification, stop conditions,
      recording order) runs unchanged on the calling thread and consumes
      probe answers in exactly the serial order;
    * each speculative probe gets its own encoder clone
      (:meth:`SortRefinementEncoder.speculative_clone`) — incremental and
      from-scratch encodings assemble bit-identical models, so a
      speculated answer equals the serial one;
    * a probe the state machine never asks for (the search stopped, or a
      witness certified it) is simply discarded — wasted work, never a
      changed answer.

    With a serial executor (or none) every probe runs inline with the
    shared incremental encoder: byte-identical to the pre-speculation code.
    """

    def __init__(
        self,
        table,
        rule: Rule,
        solver,
        encoder: SortRefinementEncoder,
        use_incremental: bool,
        executor: Optional[ParallelExecutor],
    ):
        self._table = table
        self._rule = rule
        self._solver = solver
        self._encoder = encoder
        self._incremental = use_incremental
        self._executor = executor
        self._futures: Dict[_ProbePoint, object] = {}

    @property
    def speculative(self) -> bool:
        return self._executor is not None and self._executor.parallel

    def _probe(self, theta: Fraction, k: int) -> RefinementDecision:
        # Worker-thread path: clone the encoder so concurrent probes never
        # share mutable encoder state.  The solver backends are stateless
        # per solve() call.
        return decide_sort_refinement(
            self._table,
            self._rule,
            theta,
            k,
            solver=self._solver,
            encoder=self._encoder.speculative_clone(self._table),
            incremental=self._incremental,
        )

    def decide(
        self,
        theta: Fraction,
        k: int,
        upcoming: Sequence[_ProbePoint] = (),
    ) -> RefinementDecision:
        """Answer the (θ, k) probe, pre-launching ``upcoming`` grid points.

        ``upcoming`` lists the grid points the search *may* probe next, in
        order; at most ``jobs − 1`` are kept in flight.  Points no longer
        reachable (not current, not upcoming) are cancelled.
        """
        if not self.speculative:
            return decide_sort_refinement(
                self._table, self._rule, theta, k, solver=self._solver,
                encoder=self._encoder, incremental=self._incremental,
            )
        key = (theta, k)
        future = self._futures.pop(key, None)
        wanted = set(upcoming)
        for stale in [point for point in self._futures if point not in wanted]:
            self._futures.pop(stale).cancel()
        budget = self._executor.jobs - 1
        for point in upcoming:
            if len(self._futures) >= budget:
                break
            if point not in self._futures:
                self._futures[point] = self._executor.submit(self._probe, *point)
        if future is None:
            # Not speculated (first probe, or a cancelled/stale point):
            # solve inline with the shared incremental encoder, exactly as
            # the serial search would.
            return decide_sort_refinement(
                self._table, self._rule, theta, k, solver=self._solver,
                encoder=self._encoder, incremental=self._incremental,
            )
        return future.result()

    def close(self) -> None:
        """Cancel whatever speculation is still pending."""
        for future in self._futures.values():
            future.cancel()
        self._futures.clear()


def highest_theta_refinement(
    dataset: Dataset,
    rule: Rule,
    k: int,
    step: float = 0.01,
    initial_theta: Optional[Union[float, Fraction]] = None,
    solver: Optional[object] = None,
    solver_time_limit: Optional[float] = None,
    max_probes: int = 200,
    callback: Optional[Callable[[SearchStep], None]] = None,
    use_incremental: bool = True,
    witness_skip: bool = True,
    encoder: Optional[SortRefinementEncoder] = None,
    jobs: Optional[Union[int, str]] = None,
    executor: Optional[ParallelExecutor] = None,
) -> SearchResult:
    """Find (approximately) the largest θ admitting a refinement with ``k`` sorts.

    Implements the sequential search of Section 7: starting from
    ``θ = σ_r(D)`` (guaranteed feasible via the trivial refinement), the
    threshold is increased by ``step`` until the ILP becomes infeasible;
    the last stored solution is returned.

    Parameters
    ----------
    dataset, rule, k:
        As in :func:`repro.core.decision.decide_sort_refinement`.
    step:
        The θ increment (the paper uses 0.01).
    initial_theta:
        Explicit starting threshold; defaults to σ_r of the whole dataset.
    solver / solver_time_limit:
        Backend configuration — ``solver`` may be a registered backend name
        (see :mod:`repro.ilp.registry`) or an instance; a time-limited probe
        that fails to find a witness is treated as "stop the search" but,
        like the paper notes, this is not a proof of infeasibility.
    max_probes:
        Safety cap on the number of decision probes (witness-certified
        probes count too, so the θ grid walked is the same either way).
    callback:
        Called with every :class:`SearchStep` as it happens (progress bars,
        logging).
    use_incremental:
        Reuse the encoder's cached constraint blocks between probes
        (``False`` re-encodes every probe from scratch; same models, same
        results, slower).
    witness_skip:
        Skip solver calls for grid thresholds that the last witness's exact
        per-sort σ values already certify as feasible.
    encoder:
        A pre-built :class:`SortRefinementEncoder` for ``rule`` — the
        session layer passes one so consecutive searches over the same
        table share cached case coefficients and sweep state.
    jobs / executor:
        Parallelism budget (see :mod:`repro.parallel`): with more than one
        job, the next θ grid points are ILP-probed speculatively while the
        current probe solves.  ``executor`` takes precedence over ``jobs``
        and is not closed here; an executor built from ``jobs`` is owned
        and closed by this call.  Results are identical for every setting.
    """
    table = as_signature_table(dataset)
    if encoder is None:
        encoder = SortRefinementEncoder(rule)
    solver = resolve_solver(solver, time_limit=solver_time_limit)
    owned_executor: Optional[ParallelExecutor] = None
    if executor is None:
        executor = owned_executor = ParallelExecutor(jobs)
    if initial_theta is None:
        # Start from sigma_r(D) (always feasible via the trivial one-sort
        # refinement), floored to a 1/10000 grid so that the threshold
        # fraction stays small and safely below the exact value.
        exact_sigma = sigma_by_signatures_fraction(rule, table, executor=executor)
        initial_theta = Fraction(int(exact_sigma * 10_000), 10_000)
    theta = to_fraction(initial_theta)
    step_fraction = to_fraction(step)
    if step_fraction <= 0:
        raise RefinementError("the theta search step must be positive")

    started = time.perf_counter()
    function = best_function_for_rule(rule)
    witness: Optional[SortRefinement] = None
    witness_sigma = Fraction(0)
    if witness_skip:
        candidate = _trivial_refinement(table, rule, theta)
        witness_sigma = _exact_min_sigma(function, candidate)
        if witness_sigma >= theta:
            witness = candidate

    prober = _SpeculativeProbes(table, rule, solver, encoder, use_incremental, executor)

    def upcoming_thetas(current: Fraction) -> List[_ProbePoint]:
        points: List[_ProbePoint] = []
        while current < 1 and len(points) < max(0, executor.jobs - 1):
            current = min(Fraction(1), current + step_fraction)
            points.append((current, k))
        return points

    best: Optional[SortRefinement] = None
    best_theta = theta
    steps: List[SearchStep] = []
    probes = 0
    try:
        while probes < max_probes and theta <= 1:
            if witness is not None and witness_sigma >= theta:
                search_step = SearchStep(
                    theta=float(theta), k=k, feasible=True, solve_time=0.0, status=WITNESS_STATUS
                )
                feasible = True
                best, best_theta = witness, theta
            else:
                decision = prober.decide(theta, k, upcoming=upcoming_thetas(theta))
                search_step = SearchStep(
                    theta=float(theta),
                    k=k,
                    feasible=decision.feasible,
                    solve_time=decision.solve_time,
                    status=decision.solution.status,
                )
                feasible = decision.feasible
                if feasible:
                    best, best_theta = decision.refinement, theta
                    if witness_skip:
                        witness = decision.refinement
                        witness_sigma = _exact_min_sigma(function, witness)
            probes += 1
            steps.append(search_step)
            if callback is not None:
                callback(search_step)
            if not feasible:
                break
            if theta == 1:
                break
            theta = min(Fraction(1), theta + step_fraction)
    finally:
        prober.close()
        if owned_executor is not None:
            owned_executor.close()
    total_time = time.perf_counter() - started

    if best is None:
        raise RefinementError(
            "the initial threshold was already infeasible; "
            "use initial_theta <= sigma_r(D) (the default) to guarantee a witness"
        )
    refinement = best
    refinement.threshold = float(best_theta)
    refinement.metadata["search"] = "highest_theta"
    refinement.metadata["probes"] = probes
    return SearchResult(
        refinement=refinement,
        theta=float(best_theta),
        k=refinement.k,
        steps=steps,
        total_time=total_time,
    )


def lowest_k_refinement(
    dataset: Dataset,
    rule: Rule,
    theta: Union[float, Fraction, str],
    direction: str = "up",
    k_min: int = 1,
    k_max: Optional[int] = None,
    solver: Optional[object] = None,
    solver_time_limit: Optional[float] = None,
    callback: Optional[Callable[[SearchStep], None]] = None,
    use_incremental: bool = True,
    witness_skip: bool = True,
    encoder: Optional[SortRefinementEncoder] = None,
    jobs: Optional[Union[int, str]] = None,
    executor: Optional[ParallelExecutor] = None,
) -> SearchResult:
    """Find the smallest ``k`` admitting a refinement with threshold ``θ``.

    Parameters
    ----------
    direction:
        ``"up"`` starts at ``k_min`` and increases k until the first
        feasible instance (enduring infeasible probes); ``"down"`` starts at
        ``k_max`` (default: the number of signatures, always feasible
        because singleton-signature sorts have σ = 1 for the rules used in
        the paper) and decreases k while instances remain feasible.  The
        paper reports choosing the direction case by case for efficiency.
        ``"auto"`` first runs the greedy agglomerative baseline to obtain an
        upper bound on k, then searches downward from that bound — this way
        only the final probe is infeasible (infeasible MILP instances are by
        far the slowest ones, as the paper also observes).
    use_incremental:
        Reuse the encoder's cached constraint blocks between probes; the
        downward sweep then only adds/removes one sort's variable block per
        step.  ``False`` re-encodes from scratch (identical results).
    witness_skip:
        Answer probes whose feasibility is certified exactly by an earlier
        refinement without calling the solver: a witness with ``j ≤ k``
        non-empty sorts (whose per-sort σ values exactly meet θ) settles
        every probe down to ``k = j``.  The greedy bound and the singleton
        refinement are used as initial witnesses when they certify.
    jobs / executor:
        Parallelism budget (see :mod:`repro.parallel`): with more than one
        job, the next ``k`` grid points in search direction are ILP-probed
        speculatively while the current probe solves.  ``executor`` takes
        precedence over ``jobs`` and is not closed here; an executor built
        from ``jobs`` is owned and closed by this call.  Results are
        identical for every setting.
    """
    table = as_signature_table(dataset)
    if encoder is None:
        encoder = SortRefinementEncoder(rule)
    solver = resolve_solver(solver, time_limit=solver_time_limit)
    owned_executor: Optional[ParallelExecutor] = None
    if executor is None:
        executor = owned_executor = ParallelExecutor(jobs)
    theta_fraction = to_fraction(theta)
    if k_max is None:
        k_max = table.n_signatures
    if k_min < 1 or k_max < k_min:
        raise RefinementError(f"invalid k range [{k_min}, {k_max}]")
    if direction not in ("up", "down", "auto"):
        raise RefinementError("direction must be 'up', 'down' or 'auto'")
    function = best_function_for_rule(rule)
    witness: Optional[SortRefinement] = None
    if direction == "auto":
        # A greedy upper bound keeps the downward sweep short; fall back to
        # the full range when the heuristic cannot reach the threshold.
        from repro.core.greedy import GreedyRefiner

        greedy = GreedyRefiner(function).refine_threshold(table, float(theta_fraction))
        if greedy.min_structuredness(function) >= float(theta_fraction) - 1e-12:
            k_max = min(k_max, max(k_min, greedy.k))
            if witness_skip and _exact_min_sigma(function, greedy) >= theta_fraction:
                witness = greedy
        direction = "down"

    started = time.perf_counter()
    steps: List[SearchStep] = []
    best_refinement: Optional[SortRefinement] = None
    best_k: Optional[int] = None

    def record(step: SearchStep) -> None:
        steps.append(step)
        if callback is not None:
            callback(step)

    def witness_step(k: int) -> SearchStep:
        return SearchStep(
            theta=float(theta_fraction), k=k, feasible=True, solve_time=0.0,
            status=WITNESS_STATUS,
        )

    prober = _SpeculativeProbes(table, rule, solver, encoder, use_incremental, executor)

    def probe(k: int, upcoming: Sequence[_ProbePoint]) -> RefinementDecision:
        decision = prober.decide(theta_fraction, k, upcoming=upcoming)
        record(
            SearchStep(
                theta=float(theta_fraction),
                k=k,
                feasible=decision.feasible,
                solve_time=decision.solve_time,
                status=decision.solution.status,
            )
        )
        return decision

    try:
        if direction == "up":
            for k in range(k_min, k_max + 1):
                if witness_skip and k == 1:
                    # The one-sort refinement is the only candidate at k = 1;
                    # its exact σ settles the probe without a solver call.
                    trivial = _trivial_refinement(table, rule, theta_fraction)
                    if _exact_min_sigma(function, trivial) >= theta_fraction:
                        record(witness_step(k))
                        best_refinement, best_k = trivial, k
                        break
                    # An exactly-infeasible trivial refinement does not prove the
                    # ILP infeasible (float tolerances), so fall through.
                decision = probe(
                    k, [(theta_fraction, kk) for kk in range(k + 1, k_max + 1)]
                )
                if decision.feasible:
                    best_refinement, best_k = decision.refinement, k
                    break
        else:
            for k in range(k_max, k_min - 1, -1):
                if witness_skip and witness is not None and witness.k <= k:
                    record(witness_step(k))
                    best_refinement, best_k = witness, k
                    continue
                if witness_skip and witness is not None and witness.k == k + 1:
                    # Warm start: try to merge two sorts of the previous witness
                    # instead of re-solving from scratch.
                    merged = _merged_witness(function, witness, theta_fraction)
                    if merged is not None:
                        witness = merged
                        record(witness_step(k))
                        best_refinement, best_k = witness, k
                        continue
                if (
                    witness_skip
                    and witness is None
                    and k == table.n_signatures
                ):
                    # First probe of a plain downward sweep: the singleton
                    # refinement usually certifies it outright.
                    singleton = _singleton_refinement(table, rule, theta_fraction)
                    if _exact_min_sigma(function, singleton) >= theta_fraction:
                        witness = singleton
                        record(witness_step(k))
                        best_refinement, best_k = witness, k
                        continue
                decision = probe(
                    k, [(theta_fraction, kk) for kk in range(k - 1, k_min - 1, -1)]
                )
                if not decision.feasible:
                    break
                best_refinement, best_k = decision.refinement, k
                if witness_skip and _exact_min_sigma(function, decision.refinement) >= theta_fraction:
                    witness = decision.refinement
    finally:
        prober.close()
        if owned_executor is not None:
            owned_executor.close()

    total_time = time.perf_counter() - started
    if best_refinement is None or best_k is None:
        raise RefinementError(
            f"no refinement with threshold {float(theta_fraction):.4f} exists with "
            f"k in [{k_min}, {k_max}]"
        )
    refinement = best_refinement
    refinement.metadata["search"] = "lowest_k"
    refinement.metadata["direction"] = direction
    return SearchResult(
        refinement=refinement,
        theta=float(theta_fraction),
        k=best_k,
        steps=steps,
        total_time=total_time,
    )
