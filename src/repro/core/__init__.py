"""The paper's primary contribution: ILP-based sort refinement."""

from repro.core.decision import (
    RefinementDecision,
    decide_sort_refinement,
    exists_sort_refinement,
)
from repro.core.encoder import EncodedInstance, SortRefinementEncoder, to_fraction
from repro.core.greedy import GreedyRefiner
from repro.core.refinement import ImplicitSort, SortRefinement, refinement_from_assignment
from repro.core.search import (
    SearchResult,
    SearchStep,
    highest_theta_refinement,
    lowest_k_refinement,
)

__all__ = [
    "ImplicitSort",
    "SortRefinement",
    "refinement_from_assignment",
    "SortRefinementEncoder",
    "EncodedInstance",
    "to_fraction",
    "RefinementDecision",
    "decide_sort_refinement",
    "exists_sort_refinement",
    "SearchResult",
    "SearchStep",
    "highest_theta_refinement",
    "lowest_k_refinement",
    "GreedyRefiner",
]
