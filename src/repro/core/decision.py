"""The decision procedure for ``ExistsSortRefinement(r)``.

This is the direct counterpart of the problem statement in Section 5: given
an RDF graph (or its signature table), a rule ``r``, a rational threshold
``θ`` and a positive integer ``k``, decide whether a σ_r-sort refinement
with threshold θ and at most ``k`` implicit sorts exists — and, when it
does, return one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Union

from repro.core.encoder import EncodedInstance, SortRefinementEncoder
from repro.core.refinement import SortRefinement
from repro.functions.structuredness import Dataset
from repro.ilp.registry import resolve_solver
from repro.ilp.solution import Solution, SolveStatus
from repro.rules.ast import Rule

__all__ = ["RefinementDecision", "exists_sort_refinement", "decide_sort_refinement"]


@dataclass
class RefinementDecision:
    """The outcome of one ``ExistsSortRefinement`` decision.

    Attributes
    ----------
    feasible:
        The answer to the decision problem.
    refinement:
        A witnessing refinement when feasible, otherwise ``None``.
    solution:
        The raw ILP solution (useful for timings and diagnostics).
    instance:
        The encoded ILP instance (useful for model-size statistics).
    """

    feasible: bool
    refinement: Optional[SortRefinement]
    solution: Solution
    instance: EncodedInstance
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def solve_time(self) -> float:
        """Backend solve time in seconds."""
        return self.solution.solve_time

    @property
    def total_time(self) -> float:
        """Encoding plus solve time in seconds."""
        return self.instance.encode_time + self.solution.solve_time

    def __bool__(self) -> bool:
        return self.feasible


def decide_sort_refinement(
    dataset: Dataset,
    rule: Rule,
    theta: Union[float, Fraction, str],
    k: int,
    solver: Optional[object] = None,
    encoder: Optional[SortRefinementEncoder] = None,
    incremental: bool = False,
) -> RefinementDecision:
    """Decide ``ExistsSortRefinement(r)`` on ``dataset`` for ``θ`` and ``k``.

    Parameters
    ----------
    dataset:
        An :class:`~repro.rdf.graph.RDFGraph`, property matrix or signature
        table.
    rule:
        The structuredness rule ``r``.
    theta:
        The threshold; floats are interpreted as nearby exact rationals.
    k:
        The maximum number of implicit sorts.
    solver:
        Any object with a ``solve(model) -> Solution`` method, or a
        registered backend name (see :mod:`repro.ilp.registry`); defaults
        to the HiGHS backend.
    encoder:
        A pre-built encoder (lets the θ-search reuse the case coefficients
        across many thresholds).
    incremental:
        Encode through :meth:`SortRefinementEncoder.encode_incremental`,
        which reuses the k/θ-invariant constraint blocks cached on the
        encoder between probes against the same table.  The model is
        identical to the from-scratch one; only the encoding cost differs.
    """
    if encoder is None:
        encoder = SortRefinementEncoder(rule)
    solver = resolve_solver(solver)
    if incremental:
        instance = encoder.encode_incremental(dataset, k=k, theta=theta)
    else:
        instance = encoder.encode(dataset, k=k, theta=theta)
    solution = solver.solve(instance.model)
    if solution.is_feasible:
        refinement = instance.decode(solution)
        return RefinementDecision(True, refinement, solution, instance)
    feasible = False
    metadata: Dict[str, object] = {}
    if solution.status not in (SolveStatus.INFEASIBLE,):
        # Time limits or solver errors are *not* proofs of infeasibility.
        metadata["inconclusive"] = True
        metadata["status"] = solution.status
    return RefinementDecision(feasible, None, solution, instance, metadata=metadata)


def exists_sort_refinement(
    dataset: Dataset,
    rule: Rule,
    theta: Union[float, Fraction, str],
    k: int,
    solver: Optional[object] = None,
) -> bool:
    """Boolean form of :func:`decide_sort_refinement` (the paper's decision problem)."""
    return decide_sort_refinement(dataset, rule, theta, k, solver=solver).feasible
