"""Sort refinements: entity-preserving partitions closed under signatures.

Definition 4.2 of the paper: given a structuredness function σ and a
threshold θ, a *σ-sort refinement of D with threshold θ* is an entity
preserving partition ``{D_1, ..., D_n}`` of ``D`` such that every part has
``σ(D_i) ≥ θ`` and every part is closed under signatures (structurally
identical subjects are never separated).

Because the parts must be closed under signatures, a refinement is fully
determined by a mapping *signature → implicit sort index*.  That is the
representation used here; expansion back to subject-level partitions of a
:class:`~repro.matrix.property_matrix.PropertyMatrix` or an
:class:`~repro.rdf.graph.RDFGraph` is provided for callers that need the
actual data partition (e.g. to store each implicit sort in its own
property table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import RefinementError
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import Signature, SignatureTable, signature_key
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import URI

__all__ = ["ImplicitSort", "SortRefinement", "refinement_from_assignment"]


@dataclass
class ImplicitSort:
    """One part of a sort refinement.

    Attributes
    ----------
    index:
        Position of the implicit sort inside its refinement (0-based).
    signatures:
        The signatures assigned to this implicit sort.
    table:
        The signature sub-table of the part.  Its property universe is the
        union of the supports of its signatures — i.e. the properties the
        implicit sort *uses* (the paper's ``U_{i,p} = 1`` columns).
    """

    index: int
    signatures: Tuple[Signature, ...]
    table: SignatureTable

    @property
    def n_subjects(self) -> int:
        """Number of subjects (entities) in the implicit sort."""
        return self.table.n_subjects

    @property
    def n_signatures(self) -> int:
        """Number of signature sets in the implicit sort."""
        return len(self.signatures)

    @property
    def used_properties(self) -> Tuple[URI, ...]:
        """Properties used by at least one subject of the implicit sort."""
        return self.table.properties

    def structuredness(self, function: Callable[[SignatureTable], float]) -> float:
        """Evaluate a structuredness function on this implicit sort."""
        return float(function(self.table))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ImplicitSort #{self.index}: {self.n_subjects} subjects, "
            f"{self.n_signatures} signatures, {len(self.used_properties)} properties>"
        )


@dataclass
class SortRefinement:
    """A sort refinement of a dataset, represented at the signature level.

    Attributes
    ----------
    parent:
        The signature table of the refined dataset ``D``.
    sorts:
        The implicit sorts, each a :class:`ImplicitSort`.
    rule_name:
        Display name of the structuredness function/rule used to find it.
    threshold:
        The threshold θ that every implicit sort was required to meet
        (``None`` when the refinement was built by other means).
    metadata:
        Free-form extra information (solver status, timings, search trace).
    """

    parent: SignatureTable
    sorts: List[ImplicitSort]
    rule_name: str = ""
    threshold: Optional[float] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Basic facts
    # ------------------------------------------------------------------ #
    @property
    def k(self) -> int:
        """Number of (non-empty) implicit sorts."""
        return len(self.sorts)

    @property
    def sizes(self) -> Tuple[int, ...]:
        """Subject counts of the implicit sorts."""
        return tuple(sort.n_subjects for sort in self.sorts)

    def assignment(self) -> Dict[Signature, int]:
        """Return the signature -> implicit sort index mapping."""
        result: Dict[Signature, int] = {}
        for sort in self.sorts:
            for signature in sort.signatures:
                result[signature] = sort.index
        return result

    def sort_of_signature(self, signature: Signature) -> ImplicitSort:
        """Return the implicit sort containing ``signature``."""
        target = frozenset(signature)
        for sort in self.sorts:
            if target in sort.signatures:
                return sort
        raise RefinementError(f"signature {signature_key(target)} is not part of this refinement")

    def sort_of_subject(self, subject: object) -> ImplicitSort:
        """Return the implicit sort containing ``subject`` (requires member tracking)."""
        signature = self.parent.signature_of(subject)
        return self.sort_of_signature(signature)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Raise :class:`RefinementError` unless this is a valid refinement.

        Checks the three defining conditions at the signature level:
        the sorts are non-empty, disjoint, and jointly cover every
        signature of the parent (coverage + disjointness make it an entity
        preserving partition; working with whole signatures makes it closed
        under signatures by construction).
        """
        seen: Dict[Signature, int] = {}
        for sort in self.sorts:
            if not sort.signatures:
                raise RefinementError(f"implicit sort #{sort.index} is empty")
            for signature in sort.signatures:
                if signature in seen:
                    raise RefinementError(
                        f"signature {signature_key(signature)} appears in implicit sorts "
                        f"#{seen[signature]} and #{sort.index}"
                    )
                seen[signature] = sort.index
        missing = set(self.parent.signatures) - set(seen)
        if missing:
            raise RefinementError(
                f"{len(missing)} signatures of the parent dataset are not covered"
            )
        extra = set(seen) - set(self.parent.signatures)
        if extra:
            raise RefinementError(
                f"{len(extra)} signatures do not belong to the parent dataset"
            )

    def is_valid(self) -> bool:
        """Boolean form of :meth:`validate`."""
        try:
            self.validate()
        except RefinementError:
            return False
        return True

    # ------------------------------------------------------------------ #
    # Structuredness
    # ------------------------------------------------------------------ #
    def structuredness(self, function: Callable[[SignatureTable], float]) -> List[float]:
        """Evaluate a structuredness function on every implicit sort."""
        return [sort.structuredness(function) for sort in self.sorts]

    def min_structuredness(self, function: Callable[[SignatureTable], float]) -> float:
        """The smallest per-sort structuredness (what a threshold bounds)."""
        values = self.structuredness(function)
        return min(values) if values else 1.0

    def meets_threshold(
        self, function: Callable[[SignatureTable], float], theta: float, tolerance: float = 1e-9
    ) -> bool:
        """Whether every implicit sort satisfies ``σ ≥ θ`` (up to ``tolerance``)."""
        return self.min_structuredness(function) >= theta - tolerance

    # ------------------------------------------------------------------ #
    # Expansion back to data partitions
    # ------------------------------------------------------------------ #
    def partition_matrix(self, matrix: PropertyMatrix) -> List[PropertyMatrix]:
        """Split a property matrix into one sub-matrix per implicit sort.

        Rows are routed by their signature; every row of ``matrix`` must
        have a signature known to the refinement.
        """
        groups: Dict[int, List[URI]] = {sort.index: [] for sort in self.sorts}
        assignment = self.assignment()
        for subject in matrix.subjects:
            signature = matrix.signature_of(subject)
            if signature not in assignment:
                raise RefinementError(
                    f"subject {subject} has signature {signature_key(signature)} "
                    "which is not covered by the refinement"
                )
            groups[assignment[signature]].append(subject)
        return [
            matrix.select_subjects(groups[sort.index], name=f"{matrix.name}/sort{sort.index}")
            for sort in self.sorts
        ]

    def partition_graph(self, graph: RDFGraph, exclude_type: bool = True) -> List[RDFGraph]:
        """Split an RDF graph into one entity-preserving subgraph per implicit sort."""
        matrix = PropertyMatrix.from_graph(graph, exclude_type=exclude_type)
        assignment = self.assignment()
        groups: Dict[int, List[URI]] = {sort.index: [] for sort in self.sorts}
        for subject in matrix.subjects:
            signature = matrix.signature_of(subject)
            if signature not in assignment:
                raise RefinementError(
                    f"subject {subject} has signature {signature_key(signature)} "
                    "which is not covered by the refinement"
                )
            groups[assignment[signature]].append(subject)
        return [
            graph.entity_subgraph(groups[sort.index], name=f"{graph.name}/sort{sort.index}")
            for sort in self.sorts
        ]

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def summary(self, function: Optional[Callable[[SignatureTable], float]] = None) -> str:
        """Return a compact multi-line description of the refinement."""
        lines = [
            f"Sort refinement of {self.parent.name or 'dataset'} "
            f"({self.parent.n_subjects} subjects, {self.parent.n_signatures} signatures)"
        ]
        if self.rule_name:
            lines.append(f"  rule: {self.rule_name}")
        if self.threshold is not None:
            lines.append(f"  threshold: {self.threshold:.4f}")
        for sort in self.sorts:
            line = (
                f"  sort {sort.index + 1}: {sort.n_subjects} subjects, "
                f"{sort.n_signatures} signatures, {len(sort.used_properties)} properties"
            )
            if function is not None:
                line += f", sigma = {sort.structuredness(function):.4f}"
            lines.append(line)
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<SortRefinement k={self.k} of {self.parent.name or 'dataset'}>"


def refinement_from_assignment(
    parent: SignatureTable,
    assignment: Mapping[Signature, int],
    rule_name: str = "",
    threshold: Optional[float] = None,
    metadata: Optional[Dict[str, object]] = None,
) -> SortRefinement:
    """Build a :class:`SortRefinement` from a signature -> sort index mapping.

    Empty sorts are dropped and the remaining ones re-indexed in order of
    decreasing subject count (largest implicit sort first, matching how the
    paper presents its figures).
    """
    groups: Dict[int, List[Signature]] = {}
    for signature in parent.signatures:
        sig = frozenset(signature)
        if sig not in assignment:
            raise RefinementError(
                f"assignment does not cover signature {signature_key(sig)}"
            )
        groups.setdefault(assignment[sig], []).append(sig)

    parts: List[Tuple[List[Signature], SignatureTable]] = []
    for _original_index, signatures in sorted(groups.items()):
        table = parent.select(signatures)
        parts.append((signatures, table))
    parts.sort(key=lambda item: -item[1].n_subjects)

    sorts = [
        ImplicitSort(index=i, signatures=tuple(signatures), table=table)
        for i, (signatures, table) in enumerate(parts)
    ]
    refinement = SortRefinement(
        parent=parent,
        sorts=sorts,
        rule_name=rule_name,
        threshold=threshold,
        metadata=dict(metadata or {}),
    )
    refinement.validate()
    return refinement
