"""The ILP encoding of ``ExistsSortRefinement(r)`` (Section 6).

Given a rule ``r = ϕ1 ↦ ϕ2``, a signature table for the dataset ``D``, a
threshold ``θ = θ1/θ2`` and a maximum number of implicit sorts ``k``, the
encoder produces an ILP model with:

* ``X_{i,µ} ∈ {0,1}`` — signature ``µ`` is placed in implicit sort ``i``;
* ``U_{i,p} ∈ {0,1}`` — implicit sort ``i`` uses property ``p``;
* ``T_{i,τ} ∈ {0,1}`` — the rough variable assignment ``τ`` is *consistent*
  in implicit sort ``i`` (all its signatures and properties are present);

and the constraints of Section 6.2:

1. every signature is assigned to exactly one implicit sort;
2. ``U_{i,p}`` is 1 exactly when some signature with ``p`` in its support is
   placed in sort ``i``;
3. ``T_{i,τ}`` is 1 exactly when every signature and property mentioned by
   ``τ`` is present in sort ``i`` (the standard 2-constraint AND
   linearisation);
4. the threshold constraint
   ``θ2 · Σ_τ count(ϕ1 ∧ ϕ2, τ, M) · T_{i,τ}  ≥  θ1 · Σ_τ count(ϕ1, τ, M) · T_{i,τ}``
   for every implicit sort ``i``;
5. (optionally) the symmetry-breaking hash constraints of Section 6.3.

Implementation notes (the "implementation details" of the paper, §6.3, plus
two engineering refinements documented in DESIGN.md):

* rough assignments with ``count(ϕ1, τ, M) = 0`` are never materialised —
  they cannot influence either side of the threshold constraint;
* rough assignments that mention the same *set* of (signature, property)
  pairs are merged into a single T variable whose coefficients are the
  summed counts — their T variables would be forced equal anyway;
* the hash exponent is capped (default 2^20) to avoid the numerical
  instability the paper reports for large signature counts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from repro.caching import IdentityWeakCache
from repro.exceptions import RefinementError
from repro.functions.structuredness import Dataset, as_signature_table
from repro.ilp.model import Constraint, LinExpr, Model, Variable
from repro.ilp.solution import Solution
from repro.matrix.signatures import Signature, SignatureTable, signature_key
from repro.rdf.terms import URI
from repro.rules.ast import Rule
from repro.rules.counting import enumerate_rough_assignments
from repro.core.refinement import SortRefinement, refinement_from_assignment
from repro.telemetry import current as current_telemetry

__all__ = ["EncodedInstance", "SortRefinementEncoder", "to_fraction"]

#: A rough-assignment key: the (signature, property) pairs the case mentions.
#: When equivalent cases are grouped the key is the sorted tuple of *distinct*
#: pairs; otherwise it is the per-variable tuple of pairs in variable order.
CaseKey = Tuple[Tuple[Signature, URI], ...]


def _pair_sort_key(pair: Tuple[Signature, URI]) -> Tuple[Tuple[str, ...], str]:
    signature, prop = pair
    return (signature_key(signature), str(prop))


def to_fraction(theta: Union[float, int, str, Fraction], max_denominator: int = 10_000) -> Fraction:
    """Normalise a threshold to an exact fraction ``θ1/θ2``.

    The paper requires θ to be rational precisely so the threshold
    constraint can be written with integer coefficients; floats are
    converted via ``limit_denominator`` so that e.g. ``0.9`` really means
    ``9/10`` rather than its binary approximation.
    """
    if isinstance(theta, Fraction):
        fraction = theta
    elif isinstance(theta, int):
        fraction = Fraction(theta)
    elif isinstance(theta, str):
        fraction = Fraction(theta)
    else:
        fraction = Fraction(theta).limit_denominator(max_denominator)
    if fraction < 0 or fraction > 1:
        raise RefinementError(f"threshold must lie in [0, 1], got {theta!r}")
    return fraction


@dataclass
class EncodedInstance:
    """An encoded ILP instance together with its variable dictionaries."""

    model: Model
    table: SignatureTable
    rule: Rule
    k: int
    theta: Fraction
    x_vars: Dict[Tuple[int, Signature], Variable]
    u_vars: Dict[Tuple[int, URI], Variable]
    t_vars: Dict[Tuple[int, CaseKey], Variable]
    case_counts: Dict[CaseKey, Tuple[int, int]]
    encode_time: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def n_cases(self) -> int:
        """Number of grouped rough assignments (per implicit sort)."""
        return len(self.case_counts)

    def statistics(self) -> Dict[str, object]:
        """Model-size statistics plus encoding metadata."""
        stats: Dict[str, object] = dict(self.model.statistics())
        stats.update(
            {
                "signatures": self.table.n_signatures,
                "properties": self.table.n_properties,
                "cases": self.n_cases,
                "k": self.k,
                "theta": float(self.theta),
                "encode_time": self.encode_time,
            }
        )
        return stats

    def decode(self, solution: Solution) -> SortRefinement:
        """Turn a feasible ILP solution into a :class:`SortRefinement`."""
        solution.require_feasible()
        assignment: Dict[Signature, int] = {}
        for (index, signature), variable in self.x_vars.items():
            if solution.int_value(variable) == 1:
                if signature in assignment:
                    raise RefinementError(
                        f"solver assigned signature {signature_key(signature)} to two sorts"
                    )
                assignment[signature] = index
        missing = [s for s in self.table.signatures if s not in assignment]
        if missing:
            raise RefinementError(
                f"solver left {len(missing)} signatures unassigned (solution is not integral?)"
            )
        return refinement_from_assignment(
            self.table,
            assignment,
            rule_name=self.rule.name or self.rule.to_text(),
            threshold=float(self.theta),
            metadata={
                "solver_status": solution.status,
                "solver_backend": solution.backend,
                "solve_time": solution.solve_time,
                "k_requested": self.k,
            },
        )


class SortRefinementEncoder:
    """Builds ILP instances for ``ExistsSortRefinement(r)``.

    Parameters
    ----------
    rule:
        The structuredness rule ``r``.
    symmetry_breaking:
        How to break the permutation symmetry between implicit sorts:

        * ``"hash"`` (or ``True``) — the paper's Section 6.3 constraints
          ``hash(i) ≤ hash(i+1)`` with capped powers of two.  Helps CPLEX
          according to the paper, but the large, heavily tied coefficients
          can slow HiGHS down dramatically on larger ``k``.
        * ``"anchor"`` (the default) — pin the largest signature set to the
          first implicit sort.  Removes a factor ``k`` of the symmetry with
          a single tiny constraint and never hurts.
        * ``"none"`` (or ``False``) — no symmetry breaking.
    hash_exponent_cap:
        Largest exponent used in the hash (larger signatures collide); keeps
        coefficients small enough for double-precision solvers.
    group_equivalent_cases:
        Merge rough assignments using the same set of (signature, property)
        pairs into one T variable (exact reformulation, fewer variables).
    """

    def __init__(
        self,
        rule: Rule,
        symmetry_breaking: Union[str, bool] = "anchor",
        hash_exponent_cap: int = 20,
        group_equivalent_cases: bool = True,
        exact_threshold_coefficients: bool = False,
    ):
        self.rule = rule
        if symmetry_breaking is True:
            symmetry_breaking = "hash"
        elif symmetry_breaking is False:
            symmetry_breaking = "none"
        if symmetry_breaking not in ("hash", "anchor", "none"):
            raise RefinementError(
                f"symmetry_breaking must be 'hash', 'anchor' or 'none', got {symmetry_breaking!r}"
            )
        self.symmetry_breaking = symmetry_breaking
        self.hash_exponent_cap = hash_exponent_cap
        self.group_equivalent_cases = group_equivalent_cases
        self.exact_threshold_coefficients = exact_threshold_coefficients
        self._case_cache: IdentityWeakCache = IdentityWeakCache()
        self._sweep_cache: IdentityWeakCache = IdentityWeakCache()

    # ------------------------------------------------------------------ #
    # Rough-assignment coefficients
    # ------------------------------------------------------------------ #
    def compute_cases(self, table: SignatureTable) -> Dict[CaseKey, Tuple[int, int]]:
        """Compute ``count(ϕ1, τ, M)`` / ``count(ϕ1 ∧ ϕ2, τ, M)`` per grouped case.

        Results are cached per signature table (the θ-search re-encodes the
        same table many times with different thresholds).
        """
        cached = self._case_cache.get(table)
        if cached is not None:
            return cached
        grouped: Dict[CaseKey, List[int]] = {}
        for case in enumerate_rough_assignments(self.rule, table):
            if self.group_equivalent_cases:
                key: CaseKey = tuple(
                    sorted(set(case.assignment.values()), key=_pair_sort_key)
                )
            else:
                key = tuple(case.assignment[v] for v in sorted(case.assignment))
            bucket = grouped.setdefault(key, [0, 0])
            bucket[0] += case.total
            bucket[1] += case.favourable
        cases = {key: (total, favourable) for key, (total, favourable) in grouped.items()}
        return self._case_cache.set(table, cases)

    def speculative_clone(self, table: SignatureTable) -> "SortRefinementEncoder":
        """A same-config encoder for a concurrent speculative probe.

        Encoders share :class:`~repro.solvers.model.Variable` objects
        across incremental encodings, so two probes encoding concurrently
        must not share one encoder.  The clone copies the configuration
        and pre-seeds its case cache with this encoder's (computed if
        necessary) coefficients for ``table`` — the expensive part of
        probe assembly — so speculation costs one extra model build, not
        a re-enumeration of the rough cases.
        """
        clone = SortRefinementEncoder(
            self.rule,
            symmetry_breaking=self.symmetry_breaking,
            hash_exponent_cap=self.hash_exponent_cap,
            group_equivalent_cases=self.group_equivalent_cases,
            exact_threshold_coefficients=self.exact_threshold_coefficients,
        )
        clone._case_cache.set(table, self.compute_cases(table))
        return clone

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #
    def encode(
        self,
        dataset: Dataset,
        k: int,
        theta: Union[float, Fraction, str],
    ) -> EncodedInstance:
        """Encode ``ExistsSortRefinement(r)`` for the dataset, ``k`` and ``θ``."""
        if k < 1:
            raise RefinementError("the number of implicit sorts k must be at least 1")
        table = as_signature_table(dataset)
        theta_fraction = to_fraction(theta)
        started = time.perf_counter()
        cases = self.compute_cases(table)

        model = Model(name=f"sort-refinement[{self.rule.name or 'rule'}, k={k}, theta={theta_fraction}]")
        signatures = table.signatures
        properties = table.properties
        # Iterate supports in property-universe order (not frozenset order),
        # so the emitted model is identical across hash seeds and the solver
        # breaks ties the same way on every run.
        supports: Dict[Signature, Tuple[URI, ...]] = {
            sig: tuple(p for p in properties if p in sig) for sig in signatures
        }
        property_to_signatures: Dict[URI, List[Signature]] = {
            p: [sig for sig in signatures if p in sig] for p in properties
        }

        x_vars: Dict[Tuple[int, Signature], Variable] = {}
        u_vars: Dict[Tuple[int, URI], Variable] = {}
        t_vars: Dict[Tuple[int, CaseKey], Variable] = {}

        for i in range(k):
            for s_index, sig in enumerate(signatures):
                x_vars[(i, sig)] = model.add_binary(f"X[{i},{s_index}]")
            for p in properties:
                u_vars[(i, p)] = model.add_binary(f"U[{i},{p.local_name}]")
            for c_index, key in enumerate(cases):
                t_vars[(i, key)] = model.add_binary(f"T[{i},{c_index}]")

        # (1) every signature lands in exactly one implicit sort
        for sig in signatures:
            expr = LinExpr.sum(x_vars[(i, sig)] for i in range(k))
            model.add_constraint(
                Constraint(expr, lower=1.0, upper=1.0), name=f"assign[{signature_key(sig)[:1]}]"
            )

        # (2) U_{i,p} tracks whether sort i uses property p
        for i in range(k):
            for sig in signatures:
                for p in supports[sig]:
                    model.add_constraint(x_vars[(i, sig)] <= u_vars[(i, p)])
            for p in properties:
                providers = property_to_signatures[p]
                if providers:
                    total = LinExpr.sum(x_vars[(i, sig)] for sig in providers)
                    model.add_constraint(u_vars[(i, p)] <= total)
                else:
                    model.add_constraint(u_vars[(i, p)] <= 0)

        # (3) T_{i,τ} is the AND of the X/U literals the case mentions
        for i in range(k):
            for key in cases:
                literals: List[Variable] = []
                for sig, prop in key:
                    literals.append(x_vars[(i, sig)])
                    literals.append(u_vars[(i, prop)])
                # Deduplicate literals: a case may reuse a signature or property.
                unique_literals = list(dict.fromkeys(literals))
                count = len(unique_literals)
                t_var = t_vars[(i, key)]
                literal_sum = LinExpr.sum(unique_literals)
                model.add_constraint(literal_sum <= t_var + (count - 1))
                model.add_constraint(count * t_var <= literal_sum)

        # (4) the threshold constraint per implicit sort.
        #
        # The paper's form uses the integer coefficients θ2·fav − θ1·total.
        # For thresholds with large denominators (e.g. the *exact* σ_r(D) of
        # a big dataset used as the starting point of the θ-search) those
        # integers overflow the double precision a MILP solver works in, so
        # by default the constraint is written with the equivalent float
        # coefficients fav − θ·total, whose magnitude stays bounded by the
        # largest count.  Set ``exact_threshold_coefficients=True`` to use
        # the literal integer form (fine for small instances / exact tests).
        theta1, theta2 = theta_fraction.numerator, theta_fraction.denominator
        theta_float = float(theta_fraction)
        for i in range(k):
            expr = LinExpr()
            for key, (total, favourable) in cases.items():
                if self.exact_threshold_coefficients:
                    coefficient: float = theta2 * favourable - theta1 * total
                else:
                    coefficient = favourable - theta_float * total
                if coefficient != 0:
                    expr = expr + coefficient * t_vars[(i, key)]
            model.add_constraint(expr >= 0, name=f"threshold[{i}]")

        # (5) symmetry breaking between the k implicit sorts.
        if self.symmetry_breaking == "hash" and k > 1:
            # The paper's Section 6.3 form: hash(i) <= hash(i+1).
            hash_expressions = []
            for i in range(k):
                expr = LinExpr()
                for j, sig in enumerate(signatures):
                    weight = 2 ** min(j, self.hash_exponent_cap)
                    expr = expr + weight * x_vars[(i, sig)]
                hash_expressions.append(expr)
            for i in range(k - 1):
                model.add_constraint(hash_expressions[i] <= hash_expressions[i + 1])
        elif self.symmetry_breaking == "anchor" and k > 1 and signatures:
            # Pin the largest signature set (the first, tables are sorted by
            # size) to the first implicit sort.
            anchor = x_vars[(0, signatures[0])]
            model.add_constraint(Constraint(LinExpr({anchor: 1.0}), lower=1, upper=1))

        encode_time = time.perf_counter() - started
        current_telemetry().observe("encoder.encode", encode_time)
        return EncodedInstance(
            model=model,
            table=table,
            rule=self.rule,
            k=k,
            theta=theta_fraction,
            x_vars=x_vars,
            u_vars=u_vars,
            t_vars=t_vars,
            case_counts=cases,
            encode_time=encode_time,
            metadata={
                "symmetry_breaking": self.symmetry_breaking,
                "group_equivalent_cases": self.group_equivalent_cases,
            },
        )

    # ------------------------------------------------------------------ #
    # Incremental encoding (the k-sweep / θ-sweep fast path)
    # ------------------------------------------------------------------ #
    def encode_incremental(
        self,
        dataset: Dataset,
        k: int,
        theta: Union[float, Fraction, str],
    ) -> EncodedInstance:
        """Encode ``ExistsSortRefinement(r)`` by mutating a cached sweep state.

        Produces a model **identical** to :meth:`encode` (same variables in
        the same order, same constraints with the same coefficients), but
        instead of rebuilding everything it keeps one
        :class:`_SweepState` per signature table and mutates it between
        probes: each implicit sort's variable block and its k/θ-invariant
        constraints (the U-link and T-AND families — the bulk of the model)
        are built once and re-attached; moving from ``k`` to ``k ± 1``
        merely adds or drops one sort's block, and moving between
        thresholds swaps the ``k`` threshold rows.  A search that probes
        many (k, θ) pairs against the same table therefore pays the full
        encoding cost once, not once per probe.

        Because the assembled models share ``Variable`` objects, only the
        most recently assembled instance per encoder/table may be handed to
        a solver (earlier instances' variable indexes are re-pointed).  The
        search strategies solve strictly sequentially, so this is safe; use
        :meth:`encode` when several live instances are needed at once.

        :meth:`encode` deliberately does *not* share the emission code with
        this path: it is an independently written reference implementation,
        which is what makes the bit-identity assertion in
        ``tests/test_incremental_search.py`` a meaningful cross-check
        rather than a tautology.  A change to the encoding must be made in
        both places (the identity test fails loudly if one is missed).
        """
        if k < 1:
            raise RefinementError("the number of implicit sorts k must be at least 1")
        table = as_signature_table(dataset)
        theta_fraction = to_fraction(theta)
        started = time.perf_counter()
        state = self._sweep_state(table)
        while len(state.blocks) < k:
            state.blocks.append(self._build_block(state, len(state.blocks)))

        model = Model(
            name=f"sort-refinement[{self.rule.name or 'rule'}, k={k}, theta={theta_fraction}]"
        )
        variables = model.variables
        for i in range(k):
            block = state.blocks[i]
            for variable in block.ordered_vars:
                variable.index = len(variables)
                variables.append(variable)

        # (1) every signature lands in exactly one implicit sort (k-dependent,
        # cached per k because a sweep revisits the same k many times).
        assignment = state.assignment_cache.get(k)
        if assignment is None:
            assignment = []
            for sig in state.signatures:
                expr = LinExpr.sum(state.blocks[i].x[sig] for i in range(k))
                assignment.append(
                    Constraint(expr, lower=1.0, upper=1.0, name=f"assign[{signature_key(sig)[:1]}]")
                )
            state.assignment_cache[k] = assignment
        model.constraints.extend(assignment)

        # (2) + (3): the cached per-sort constraint families.
        for i in range(k):
            model.constraints.extend(state.blocks[i].link_constraints)
        for i in range(k):
            model.constraints.extend(state.blocks[i].and_constraints)

        # (4) the threshold constraint per implicit sort (θ-dependent, cached
        # per (sort, θ) because a k-sweep revisits the same θ at every k).
        for i in range(k):
            model.constraints.append(self._threshold_constraint(state, i, theta_fraction))

        # (5) symmetry breaking between the k implicit sorts.
        if self.symmetry_breaking == "hash" and k > 1:
            constraints = state.hash_cache.get(k)
            if constraints is None:
                for i in range(k):
                    block = state.blocks[i]
                    if block.hash_expr is None:
                        expr = LinExpr()
                        for j, sig in enumerate(state.signatures):
                            weight = 2 ** min(j, self.hash_exponent_cap)
                            expr = expr + weight * block.x[sig]
                        block.hash_expr = expr
                constraints = [
                    state.blocks[i].hash_expr <= state.blocks[i + 1].hash_expr
                    for i in range(k - 1)
                ]
                state.hash_cache[k] = constraints
            model.constraints.extend(constraints)
        elif self.symmetry_breaking == "anchor" and k > 1 and state.signatures:
            if state.anchor is None:
                anchor = state.blocks[0].x[state.signatures[0]]
                state.anchor = Constraint(LinExpr({anchor: 1.0}), lower=1, upper=1)
            model.constraints.append(state.anchor)

        x_vars = {
            (i, sig): state.blocks[i].x[sig] for i in range(k) for sig in state.signatures
        }
        u_vars = {
            (i, p): state.blocks[i].u[p] for i in range(k) for p in state.properties
        }
        t_vars = {
            (i, key): state.blocks[i].t[key] for i in range(k) for key in state.cases
        }
        encode_time = time.perf_counter() - started
        current_telemetry().observe("encoder.encode_incremental", encode_time)
        return EncodedInstance(
            model=model,
            table=table,
            rule=self.rule,
            k=k,
            theta=theta_fraction,
            x_vars=x_vars,
            u_vars=u_vars,
            t_vars=t_vars,
            case_counts=state.cases,
            encode_time=encode_time,
            metadata={
                "symmetry_breaking": self.symmetry_breaking,
                "group_equivalent_cases": self.group_equivalent_cases,
                "incremental": True,
            },
        )

    def _sweep_state(self, table: SignatureTable) -> "_SweepState":
        state = self._sweep_cache.get(table)
        if state is None:
            state = self._sweep_cache.set(table, _SweepState(table, self.compute_cases(table)))
        return state

    def _build_block(self, state: "_SweepState", i: int) -> "_SortBlock":
        """Create implicit sort ``i``'s variables and its k/θ-invariant constraints."""
        block = _SortBlock()
        block.x = {
            sig: Variable(f"X[{i},{s_index}]", 0, 1, is_integer=True)
            for s_index, sig in enumerate(state.signatures)
        }
        block.u = {
            p: Variable(f"U[{i},{p.local_name}]", 0, 1, is_integer=True)
            for p in state.properties
        }
        block.t = {
            key: Variable(f"T[{i},{c_index}]", 0, 1, is_integer=True)
            for c_index, key in enumerate(state.cases)
        }
        block.ordered_vars = (
            list(block.x.values()) + list(block.u.values()) + list(block.t.values())
        )

        # (2) U_{i,p} tracks whether sort i uses property p.
        link: List[Constraint] = []
        for sig in state.signatures:
            x_var = block.x[sig]
            for p in state.supports[sig]:
                link.append(x_var <= block.u[p])
        for p in state.properties:
            providers = state.property_to_signatures[p]
            if providers:
                total = LinExpr.sum(block.x[sig] for sig in providers)
                link.append(block.u[p] <= total)
            else:
                link.append(block.u[p] <= 0)
        block.link_constraints = link

        # (3) T_{i,τ} is the AND of the X/U literals the case mentions.
        ands: List[Constraint] = []
        for key in state.cases:
            literals: List[Variable] = []
            for sig, prop in key:
                literals.append(block.x[sig])
                literals.append(block.u[prop])
            unique_literals = list(dict.fromkeys(literals))
            count = len(unique_literals)
            t_var = block.t[key]
            literal_sum = LinExpr.sum(unique_literals)
            ands.append(literal_sum <= t_var + (count - 1))
            ands.append(count * t_var <= literal_sum)
        block.and_constraints = ands
        return block

    def _threshold_constraint(
        self, state: "_SweepState", i: int, theta_fraction: Fraction
    ) -> Constraint:
        block = state.blocks[i]
        cached = block.threshold_cache.get(theta_fraction)
        if cached is not None:
            return cached
        theta1, theta2 = theta_fraction.numerator, theta_fraction.denominator
        theta_float = float(theta_fraction)
        coefficients: Dict[Variable, float] = {}
        for key, (total, favourable) in state.cases.items():
            if self.exact_threshold_coefficients:
                coefficient: float = theta2 * favourable - theta1 * total
            else:
                coefficient = favourable - theta_float * total
            if coefficient != 0:
                coefficients[block.t[key]] = 1.0 * coefficient
        constraint = Constraint(LinExpr(coefficients), lower=0.0, name=f"threshold[{i}]")
        block.threshold_cache[theta_fraction] = constraint
        return constraint


class _SortBlock:
    """One implicit sort's variables and its k/θ-invariant constraints."""

    __slots__ = (
        "x",
        "u",
        "t",
        "ordered_vars",
        "link_constraints",
        "and_constraints",
        "threshold_cache",
        "hash_expr",
    )

    def __init__(self) -> None:
        self.x: Dict[Signature, Variable] = {}
        self.u: Dict[URI, Variable] = {}
        self.t: Dict[CaseKey, Variable] = {}
        self.ordered_vars: List[Variable] = []
        self.link_constraints: List[Constraint] = []
        self.and_constraints: List[Constraint] = []
        self.threshold_cache: Dict[Fraction, Constraint] = {}
        self.hash_expr: Optional[LinExpr] = None


class _SweepState:
    """Everything :meth:`SortRefinementEncoder.encode_incremental` reuses between probes."""

    # NOTE: no reference to the table itself — the sweep cache is weakly
    # keyed by the table, and a strong back-reference from the value would
    # pin the entry forever.
    __slots__ = (
        "cases",
        "signatures",
        "properties",
        "supports",
        "property_to_signatures",
        "blocks",
        "assignment_cache",
        "hash_cache",
        "anchor",
    )

    def __init__(self, table: SignatureTable, cases: Dict[CaseKey, Tuple[int, int]]):
        self.cases = cases
        self.signatures: Tuple[Signature, ...] = table.signatures
        self.properties: Tuple[URI, ...] = table.properties
        # Property-universe iteration order keeps the emitted constraints
        # independent of the hash seed (see SortRefinementEncoder.encode).
        self.supports: Dict[Signature, Tuple[URI, ...]] = {
            sig: tuple(p for p in self.properties if p in sig) for sig in self.signatures
        }
        self.property_to_signatures: Dict[URI, List[Signature]] = {
            p: [sig for sig in self.signatures if p in sig] for p in self.properties
        }
        self.blocks: List[_SortBlock] = []
        self.assignment_cache: Dict[int, List[Constraint]] = {}
        self.hash_cache: Dict[int, List[Constraint]] = {}
        self.anchor: Optional[Constraint] = None
