"""Sharded signature tables: the row-partitioned associative view.

The signature table is a sparse associative array (signature × property →
count), and like any associative array its *row* partition distributes
trivially: every structuredness aggregate used in this library is a sum
over signatures, so splitting the signatures into S shards lets S workers
count independently and merge by addition.  :class:`ShardedSignatureTable`
implements exactly that partition:

* shards fold **signatures, never subjects** — all members of a signature
  set land in the same shard, so each shard is itself a valid
  :class:`~repro.matrix.signatures.SignatureTable` over the *full*
  property universe (never a restricted one: σ denominators depend on
  ``|P(D)|``, and per-shard rule evaluation must see the same columns the
  whole table does);
* the shard of a signature is a **content hash** (CRC-32 of its sorted
  property strings), deterministic across processes, hash seeds and
  insertion orders — the same signature lands in the same shard on every
  worker of a pool, which is what makes shard-merged counts reproducible;
* one-variable rule counts and σ fractions merge additively across
  shards (multi-variable rules need cross-shard assignments and fall back
  to whole-table counting, chunked by first-variable candidates instead);
* :meth:`apply_delta` keeps the sharding incrementally consistent with
  ``SignatureTable.apply_delta``: only shards whose signatures changed
  are rebuilt, the rest are reused object-identically, and the result
  equals a from-scratch ``ShardedSignatureTable`` of the patched table.

The wrapper exposes a ``table`` attribute holding the unsharded parent,
so every API that accepts ``.table``-bearing objects (the free
structuredness functions, the searches) accepts a sharded table too.
"""

from __future__ import annotations

import zlib
from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.exceptions import RDFError
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import Signature, SignatureTable, signature_key
from repro.rdf.graph import GraphDelta

__all__ = ["ShardedSignatureTable", "shard_of_signature"]


def shard_of_signature(signature: Signature, n_shards: int) -> int:
    """The shard index of a signature: a content hash of its sorted support.

    Uses CRC-32 over the signature's sorted property strings, so the
    assignment is identical across processes and ``PYTHONHASHSEED``
    values (Python's own ``hash`` is salted and would shard differently
    on every worker).
    """
    if n_shards < 1:
        raise RDFError(f"n_shards must be >= 1, got {n_shards}")
    payload = "\x1f".join(signature_key(signature)).encode("utf-8")
    return zlib.crc32(payload) % n_shards


class ShardedSignatureTable:
    """A signature table folded into S content-addressed shards.

    Parameters
    ----------
    table:
        The parent :class:`SignatureTable` (kept as :attr:`table`; all
        shard tables share its property universe).
    n_shards:
        Number of shards S.  Empty shards are legal (an empty
        ``SignatureTable`` over the full property universe).

    ``stats`` counts shard (re)builds and reuses so tests can prove that
    incremental refreshes only touch the dirty shards.
    """

    __slots__ = (
        "table",
        "_n_shards",
        "_shards",
        "_assignment",
        "stats",
        "__weakref__",
    )

    def __init__(self, table: SignatureTable, n_shards: int = 1):
        if n_shards < 1:
            raise RDFError(f"n_shards must be >= 1, got {n_shards}")
        self.table = table
        self._n_shards = n_shards
        self._assignment: Dict[Signature, int] = {
            sig: shard_of_signature(sig, n_shards) for sig in table.signatures
        }
        built = self._materialise_shards(table, range(n_shards))
        self._shards: Tuple[SignatureTable, ...] = tuple(
            built[index] for index in range(n_shards)
        )
        self.stats: Dict[str, int] = {
            "shards_built": n_shards,
            "shards_rebuilt": 0,
            "shards_reused": 0,
            "refreshes": 0,
        }

    def _materialise_shards(
        self, table: SignatureTable, indices
    ) -> Dict[int, SignatureTable]:
        """Build the requested shard tables in ONE pass over the signatures.

        The signature stream is partitioned into per-shard count/member
        mappings first and only then materialised, so constructing S shards
        costs one scan of the parent table instead of S — which is what
        lets a freshly loaded (possibly out-of-core-built, disk-resident)
        table be sharded without re-touching its signatures per shard, and
        an incremental refresh rebuild only its dirty shards without
        scanning the clean ones.
        """
        wanted = set(indices)
        counts_by: Dict[int, Dict[Signature, int]] = {index: {} for index in wanted}
        members_by: Optional[Dict[int, Dict[Signature, tuple]]] = (
            {index: {} for index in wanted} if table.has_members else None
        )
        assignment = self._assignment
        for sig, count in table.counts().items():
            index = assignment[sig]
            if index not in wanted:
                continue
            counts_by[index][sig] = count
            if members_by is not None:
                members_by[index][sig] = table.members_of(sig)
        shards: Dict[int, SignatureTable] = {}
        for index in wanted:
            label = f"{table.name}[shard {index}/{self._n_shards}]" if table.name else ""
            shards[index] = SignatureTable(
                table.properties,
                counts_by[index],
                members=members_by[index] if members_by is not None else None,
                name=label,
            )
        return shards

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        """The number of shards S."""
        return self._n_shards

    @property
    def shards(self) -> Tuple[SignatureTable, ...]:
        """The shard tables, in shard-index order (some may be empty)."""
        return self._shards

    def shard_of(self, signature: Signature) -> int:
        """The shard index a signature folds into (content-hash, stable)."""
        return shard_of_signature(frozenset(signature), self._n_shards)

    @property
    def n_subjects(self) -> int:
        """Total subjects (equals the parent table's count; additive check)."""
        return self.table.n_subjects

    @property
    def n_signatures(self) -> int:
        """Total distinct signatures across all shards."""
        return self.table.n_signatures

    @property
    def properties(self) -> Tuple:
        """The shared property universe (identical in every shard)."""
        return self.table.properties

    # ------------------------------------------------------------------ #
    # Shard-merged counting
    # ------------------------------------------------------------------ #
    def rule_counts(self, rule, executor=None) -> Tuple[int, int]:
        """``(total, favourable)`` concrete-assignment counts of ``rule``.

        One-variable rules are counted per shard and summed — every
        rough case touches exactly one signature, so the shard partition
        splits the case set disjointly and the merge is plain integer
        addition (exact, associative, order-independent).  Multi-variable
        rules need assignments spanning shards, so they are counted over
        the parent table (parallelised there by chunking the first
        variable's candidates).  ``executor`` is an optional
        :class:`~repro.parallel.ParallelExecutor`; shards are mapped on
        threads (the counting kernels are NumPy reductions).
        """
        from repro.rules.counting import rule_counts as count_table

        if len(rule.variables()) != 1:
            return count_table(rule, self.table, executor=executor)
        results = (
            executor.map(lambda shard: count_table(rule, shard), self._shards, mode="thread")
            if executor is not None
            else [count_table(rule, shard) for shard in self._shards]
        )
        total = sum(t for t, _f in results)
        favourable = sum(f for _t, f in results)
        return total, favourable

    def sigma_fraction(self, rule, executor=None) -> Fraction:
        """σ_r over the sharded table as an exact fraction (shard-merged)."""
        total, favourable = self.rule_counts(rule, executor=executor)
        if total == 0:
            return Fraction(1)
        return Fraction(favourable, total)

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, matrix: PropertyMatrix, delta: GraphDelta
    ) -> "ShardedSignatureTable":
        """Patch the parent table and refresh only the dirty shards.

        Mirrors :meth:`SignatureTable.apply_delta` (same arguments, same
        exactness guarantee): the result equals
        ``ShardedSignatureTable(self.table.apply_delta(matrix, delta), S)``
        but reuses every shard whose signatures the delta left untouched.
        """
        new_table = self.table.apply_delta(matrix, delta)
        return self.refreshed(new_table, subjects=delta.subjects)

    def refreshed(
        self, new_table: SignatureTable, subjects=None
    ) -> "ShardedSignatureTable":
        """Re-shard around an already-patched parent table.

        ``subjects`` optionally names the subjects a delta touched; their
        old/new signatures bound the set of dirty shards.  Without it
        (or without member tracking) dirty signatures are found by
        diffing the count/member mappings.  A changed property universe
        forces a full rebuild — support rows of *every* shard change
        width.  Cumulative ``stats`` carry over so reuse is observable.
        """
        if new_table.properties != self.table.properties:
            fresh = ShardedSignatureTable(new_table, self._n_shards)
            for key in ("shards_rebuilt", "shards_reused", "refreshes"):
                fresh.stats[key] = self.stats[key]
            fresh.stats["shards_built"] += self.stats["shards_built"]
            fresh.stats["refreshes"] += 1
            return fresh

        changed: set = set()
        if subjects is not None and self.table.has_members and new_table.has_members:
            for subject in subjects:
                for table in (self.table, new_table):
                    try:
                        changed.add(table.signature_of(subject))
                    except RDFError:
                        pass
        else:
            old_counts = self.table.counts()
            new_counts = new_table.counts()
            for sig in set(old_counts) | set(new_counts):
                if old_counts.get(sig) != new_counts.get(sig):
                    changed.add(sig)
                elif self.table.has_members and new_table.has_members:
                    if self.table.members_of(sig) != new_table.members_of(sig):
                        changed.add(sig)

        dirty = {shard_of_signature(sig, self._n_shards) for sig in changed}
        fresh = ShardedSignatureTable.__new__(ShardedSignatureTable)
        fresh.table = new_table
        fresh._n_shards = self._n_shards
        fresh._assignment = {
            sig: shard_of_signature(sig, self._n_shards) for sig in new_table.signatures
        }
        rebuilt = fresh._materialise_shards(new_table, dirty)
        fresh._shards = tuple(
            rebuilt[index] if index in dirty else self._shards[index]
            for index in range(self._n_shards)
        )
        fresh.stats = dict(self.stats)
        fresh.stats["shards_rebuilt"] += len(dirty)
        fresh.stats["shards_reused"] += self._n_shards - len(dirty)
        fresh.stats["refreshes"] += 1
        return fresh

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShardedSignatureTable):
            return NotImplemented
        return self._n_shards == other._n_shards and self.table == other.table

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def describe(self) -> Dict[str, object]:
        """Serialisable topology facts: shard count and per-shard sizes."""
        return {
            "n_shards": self._n_shards,
            "shard_signatures": [shard.n_signatures for shard in self._shards],
            "shard_subjects": [shard.n_subjects for shard in self._shards],
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<ShardedSignatureTable {self._n_shards} shards over "
            f"{self.table.n_signatures} signatures>"
        )
