"""Property-structure views: matrices, signatures and figure rendering."""

from repro.matrix.horizontal import render_refinement, render_signature_table
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.sharded import ShardedSignatureTable, shard_of_signature
from repro.matrix.signatures import Signature, SignatureTable, signature_key

__all__ = [
    "PropertyMatrix",
    "Signature",
    "SignatureTable",
    "ShardedSignatureTable",
    "shard_of_signature",
    "signature_key",
    "render_signature_table",
    "render_refinement",
]
