"""Signatures and signature tables.

Definition 4.1 of the paper: the *signature* of a subject ``s`` in ``D`` is
the function ``sig(s, D) : P(D) → {0, 1}`` telling which properties ``s``
has.  A *signature set* is the set of subjects sharing a signature, and its
*size* is the number of such subjects.

Signatures are the workhorse of the whole approach: every structuredness
function used in the paper depends on ``M(D)`` only through the multiset of
signatures, and the ILP encoding assigns whole signature sets (not
individual entities) to implicit sorts.  Representing a 790,703-subject
dataset by its 64 signatures is the "view of our input data that still
maintains all the properties of the data in terms of their fitness
characteristics, yet occupies substantially less space".

In this library a signature is simply a ``frozenset`` of property URIs (its
support), and :class:`SignatureTable` maps each signature to its size and,
optionally, to the concrete member subjects.

Internally the table is columnar: alongside the frozenset view it keeps the
signature supports as **packed bitset rows** (``np.packbits`` of the
``n_signatures × n_properties`` boolean support matrix) and the signature-
set sizes as an ``int64`` count vector.  Every aggregate the closed-form
structuredness functions need (``n_ones``, per-property counts, pairwise
both/either counts) is a vectorised reduction over those arrays, and
:meth:`from_matrix` groups matrix rows into signatures with one
``np.unique`` pass over the packed rows instead of hashing a frozenset per
subject.  See DESIGN.md, "Interned-ID architecture".
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import RDFError
from repro.matrix.property_matrix import PropertyMatrix
from repro.rdf.graph import GraphDelta, RDFGraph
from repro.rdf.terms import URI, coerce_uri

__all__ = ["Signature", "SignatureTable", "signature_key", "group_boolean_rows"]

#: A signature is represented by its support: the frozenset of properties set to 1.
Signature = FrozenSet[URI]


def signature_key(signature: Signature) -> Tuple[str, ...]:
    """A deterministic sort key for signatures (sorted property strings)."""
    return tuple(sorted(str(p) for p in signature))


def group_boolean_rows(data: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group identical rows of a boolean matrix in one vectorised pass.

    Rows are packed into bitsets (``np.packbits``) and deduplicated with
    ``np.unique``.  Returns ``(representatives, inverse, counts)`` where
    ``representatives[g]`` is the index of one row of group ``g`` (all rows
    of a group are identical, so the choice carries no information),
    ``inverse[i]`` is the group of row ``i``, and ``counts[g]`` the group
    size.  Shared by :meth:`SignatureTable.from_matrix` and the synthetic
    dataset sampler so the packing/grouping edge cases live in one place.
    """
    n_rows = data.shape[0]
    packed = (
        np.packbits(data, axis=1)
        if data.shape[1]
        else np.zeros((n_rows, 0), dtype=np.uint8)
    )
    if packed.shape[1]:
        _unique, inverse, counts = np.unique(
            packed, axis=0, return_inverse=True, return_counts=True
        )
        inverse = inverse.ravel()
    else:
        inverse = np.zeros(n_rows, dtype=np.int64)
        counts = np.array([n_rows], dtype=np.int64) if n_rows else np.zeros(0, dtype=np.int64)
    representatives = np.empty(len(counts), dtype=np.int64)
    representatives[inverse] = np.arange(n_rows)
    return representatives, inverse, counts


class SignatureTable:
    """The signature view of an RDF graph: signature -> size (+ optional members).

    Parameters
    ----------
    properties:
        The property universe ``P(D)`` (column order is preserved and used
        for matrix expansion and rendering).
    counts:
        Mapping from signature (frozenset of properties) to the number of
        subjects with that signature.  Every property mentioned by a
        signature must belong to ``properties``.
    members:
        Optional mapping from signature to the list of member subjects.
        When provided, lengths must agree with ``counts``; it allows
        refinements computed at the signature level to be mapped back to
        concrete entities and triples.
    name:
        Optional human-readable dataset name.
    """

    __slots__ = (
        "_properties",
        "_signatures",
        "_counts",
        "_members",
        "_member_index",
        "_count_vec",
        "_support_bits",
        "_support_bool",
        "name",
        "__weakref__",
    )

    def __init__(
        self,
        properties: Sequence[URI],
        counts: Mapping[Signature, int],
        members: Optional[Mapping[Signature, Sequence[URI]]] = None,
        name: str = "",
    ):
        self._properties: Tuple[URI, ...] = tuple(coerce_uri(p) for p in properties)
        if len(set(self._properties)) != len(self._properties):
            raise RDFError("duplicate properties in signature table")
        property_set = set(self._properties)

        normalised: Dict[Signature, int] = {}
        for signature, count in counts.items():
            sig = frozenset(coerce_uri(p) for p in signature)
            if not sig <= property_set:
                missing = sorted(str(p) for p in sig - property_set)
                raise RDFError(f"signature uses unknown properties: {missing}")
            if count < 0:
                raise RDFError("signature counts must be non-negative")
            if count == 0:
                continue
            normalised[sig] = normalised.get(sig, 0) + int(count)

        # Deterministic order: largest signature sets first (as in the
        # paper's figures), ties broken by the property names.
        ordered = sorted(normalised.items(), key=lambda item: (-item[1], signature_key(item[0])))
        self._signatures: Tuple[Signature, ...] = tuple(sig for sig, _ in ordered)
        self._counts: Dict[Signature, int] = dict(ordered)

        # Columnar view: count vector + packed bitset rows over the property
        # universe, aligned with self._signatures / self._properties.
        self._count_vec: np.ndarray = np.fromiter(
            (count for _sig, count in ordered), dtype=np.int64, count=len(ordered)
        )
        property_index = {p: j for j, p in enumerate(self._properties)}
        support = np.zeros((len(self._signatures), len(self._properties)), dtype=bool)
        for i, sig in enumerate(self._signatures):
            for p in sig:
                support[i, property_index[p]] = True
        self._support_bool: np.ndarray = support
        self._support_bits: np.ndarray = (
            np.packbits(support, axis=1)
            if support.size
            else np.zeros((len(self._signatures), 0), dtype=np.uint8)
        )

        self._members: Optional[Dict[Signature, Tuple[URI, ...]]] = None
        if members is not None:
            collected: Dict[Signature, Tuple[URI, ...]] = {}
            for signature, subject_list in members.items():
                sig = frozenset(coerce_uri(p) for p in signature)
                if sig not in self._counts:
                    if not subject_list:
                        continue
                    raise RDFError(f"members given for unknown signature {signature_key(sig)}")
                collected[sig] = tuple(coerce_uri(s) for s in subject_list)
            for sig, count in self._counts.items():
                if sig not in collected:
                    raise RDFError("members mapping must cover every signature")
                if len(collected[sig]) != count:
                    raise RDFError(
                        f"signature {signature_key(sig)} has count {count} but "
                        f"{len(collected[sig])} members"
                    )
            self._members = collected
        # Lazily built subject -> signature reverse index (requires
        # members); apply_delta carries an updated copy forward so chained
        # mutations never pay the O(n_subjects) rebuild.
        self._member_index: Optional[Dict[URI, Signature]] = None
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_matrix(cls, matrix: PropertyMatrix, name: Optional[str] = None) -> "SignatureTable":
        """Group the rows of a :class:`PropertyMatrix` into signature sets.

        The grouping is one vectorised pass: rows are packed into bitsets
        (``np.packbits``) and deduplicated with ``np.unique``, so the cost
        per *subject* is a few bytes of packed row, not a frozenset hash.
        Only the (few) distinct signatures are materialised as frozensets.
        """
        data = matrix.data
        properties = matrix.properties
        subjects = matrix.subjects
        if len(subjects) == 0:
            return cls(properties, {}, members={}, name=name if name is not None else matrix.name)
        # One representative row per group gives the support of its signature.
        representatives, inverse, group_counts = group_boolean_rows(data)
        n_groups = len(group_counts)
        signatures = [
            frozenset(p for j, p in enumerate(properties) if data[representatives[g], j])
            for g in range(n_groups)
        ]
        counts: Dict[Signature, int] = {
            signatures[g]: int(group_counts[g]) for g in range(n_groups)
        }
        # Stable argsort by group recovers each group's members in row order.
        order = np.argsort(inverse, kind="stable")
        boundaries = np.cumsum(group_counts)
        members: Dict[Signature, Tuple[URI, ...]] = {}
        start = 0
        for g, stop in enumerate(boundaries):
            members[signatures[g]] = tuple(subjects[i] for i in order[start:stop])
            start = stop
        return cls(
            properties,
            counts,
            members=members,
            name=name if name is not None else matrix.name,
        )

    @classmethod
    def from_graph(
        cls,
        graph: RDFGraph,
        exclude_type: bool = True,
        properties: Optional[Sequence[URI]] = None,
        name: Optional[str] = None,
    ) -> "SignatureTable":
        """Build the signature table of an RDF graph (via its property matrix)."""
        matrix = PropertyMatrix.from_graph(
            graph, exclude_type=exclude_type, properties=properties
        )
        return cls.from_matrix(matrix, name=name if name is not None else graph.name)

    @classmethod
    def from_counts(
        cls,
        properties: Sequence[URI],
        counts: Mapping[Iterable[URI], int],
        name: str = "",
    ) -> "SignatureTable":
        """Build a table directly from (property-collection -> count) pairs."""
        normalised = {frozenset(coerce_uri(p) for p in sig): count for sig, count in counts.items()}
        return cls(properties, normalised, name=name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def properties(self) -> Tuple[URI, ...]:
        """The property universe ``P(D)`` in column order."""
        return self._properties

    @property
    def signatures(self) -> Tuple[Signature, ...]:
        """All signatures, largest signature set first."""
        return self._signatures

    @property
    def n_signatures(self) -> int:
        """Number of distinct signatures ``|Λ(D)|``."""
        return len(self._signatures)

    @property
    def n_properties(self) -> int:
        """Number of properties ``|P(D)|``."""
        return len(self._properties)

    @property
    def n_subjects(self) -> int:
        """Total number of subjects ``|S(D)|``."""
        return int(self._count_vec.sum())

    @property
    def has_members(self) -> bool:
        """Whether concrete member subjects are tracked."""
        return self._members is not None

    def count(self, signature: Iterable[URI]) -> int:
        """Return the size of the signature set for ``signature`` (0 if absent)."""
        return self._counts.get(frozenset(coerce_uri(p) for p in signature), 0)

    def counts(self) -> Dict[Signature, int]:
        """Return a copy of the signature -> size mapping."""
        return dict(self._counts)

    def support(self, signature: Signature) -> Signature:
        """Return ``supp(µ)``, i.e. the signature itself as a property set."""
        return signature

    def members_of(self, signature: Iterable[URI]) -> Tuple[URI, ...]:
        """Return the member subjects of a signature set (requires members)."""
        if self._members is None:
            raise RDFError("this signature table does not track member subjects")
        return self._members.get(frozenset(coerce_uri(p) for p in signature), ())

    def _member_index_map(self) -> Dict[URI, Signature]:
        """The subject -> signature reverse index (built once, lazily)."""
        if self._members is None:
            raise RDFError("this signature table does not track member subjects")
        if self._member_index is None:
            self._member_index = {
                subject: signature
                for signature, subjects in self._members.items()
                for subject in subjects
            }
        return self._member_index

    def signature_of(self, subject: object) -> Signature:
        """Return the signature of a tracked subject (requires members)."""
        signature = self._member_index_map().get(coerce_uri(subject))
        if signature is None:
            raise RDFError(f"subject {subject!r} is not tracked by this signature table")
        return signature

    # ------------------------------------------------------------------ #
    # Aggregates used by the closed-form structuredness functions
    # ------------------------------------------------------------------ #
    def n_cells(self) -> int:
        """``|S(D)| * |P(D)|``, the denominator of Cov."""
        return self.n_subjects * self.n_properties

    def n_ones(self) -> int:
        """Total number of (subject, property) facts: ``sum_µ |S(µ)| * |supp(µ)|``."""
        if not self._signatures:
            return 0
        support_sizes = self._support_bool.sum(axis=1)
        return int(self._count_vec @ support_sizes)

    def _column(self, prop: URI) -> Optional[np.ndarray]:
        """The boolean signature-membership column of ``prop`` (None if absent)."""
        try:
            j = self._properties.index(prop)
        except ValueError:
            return None
        return self._support_bool[:, j]

    def property_count(self, prop: object) -> int:
        """Number of subjects that have ``prop``."""
        column = self._column(coerce_uri(prop))
        if column is None:
            return 0
        return int(self._count_vec @ column)

    def property_counts(self) -> Dict[URI, int]:
        """Mapping property -> number of subjects having it."""
        totals = self._count_vec @ self._support_bool if self._signatures else np.zeros(
            self.n_properties, dtype=np.int64
        )
        return {p: int(totals[j]) for j, p in enumerate(self._properties)}

    def property_count_vector(self) -> np.ndarray:
        """Per-property subject counts aligned with :attr:`properties`."""
        if not self._signatures:
            return np.zeros(self.n_properties, dtype=np.int64)
        return np.asarray(self._count_vec @ self._support_bool, dtype=np.int64)

    def both_count(self, prop1: object, prop2: object) -> int:
        """Number of subjects having both properties."""
        col1 = self._column(coerce_uri(prop1))
        col2 = self._column(coerce_uri(prop2))
        if col1 is None or col2 is None:
            return 0
        return int(self._count_vec @ (col1 & col2))

    def either_count(self, prop1: object, prop2: object) -> int:
        """Number of subjects having at least one of the two properties."""
        col1 = self._column(coerce_uri(prop1))
        col2 = self._column(coerce_uri(prop2))
        if col1 is None and col2 is None:
            return 0
        if col1 is None:
            col1 = np.zeros(len(self._signatures), dtype=bool)
        if col2 is None:
            col2 = np.zeros(len(self._signatures), dtype=bool)
        return int(self._count_vec @ (col1 | col2))

    def count_vector(self) -> np.ndarray:
        """Signature-set sizes as an integer vector aligned with :attr:`signatures`."""
        return self._count_vec.copy()

    def support_matrix(self) -> np.ndarray:
        """Boolean matrix of shape (n_signatures, n_properties): signature supports."""
        return self._support_bool.copy()

    def packed_support_matrix(self) -> np.ndarray:
        """The signature supports as packed bitset rows (``np.packbits`` layout).

        Shape ``(n_signatures, ceil(n_properties / 8))``, dtype ``uint8``;
        bit ``j`` of a row (MSB-first within each byte) is property ``j``.
        """
        return self._support_bits.copy()

    # ------------------------------------------------------------------ #
    # Incremental maintenance
    # ------------------------------------------------------------------ #
    def apply_delta(
        self, matrix: PropertyMatrix, delta: GraphDelta, name: Optional[str] = None
    ) -> "SignatureTable":
        """Re-group only the touched subjects after a graph mutation.

        ``matrix`` must be the *already mutated* property matrix (the
        result of :meth:`PropertyMatrix.apply_delta`, or an equal rebuild)
        and ``self`` the signature table of the pre-delta matrix with
        member tracking.  The result equals
        ``SignatureTable.from_matrix(matrix)`` exactly — same signatures,
        counts, member sets and member order — but only the delta's
        subjects move between signature sets.  (The constructor still
        re-normalises every member tuple and support row, so a patch is
        O(subjects) with small constants — what it saves over
        ``from_matrix`` is the packbits/unique grouping pass and the
        per-subject membership assembly, the dominant rebuild costs.)

        Requires row-sorted provenance (``from_matrix`` of a
        ``from_graph`` matrix), whose member tuples are sorted by subject;
        sorted order is preserved so chained deltas stay bit-identical to
        rebuilds.
        """
        if self._members is None:
            raise RDFError(
                "apply_delta requires a signature table that tracks member "
                "subjects (build it with from_matrix/from_graph)"
            )
        index = dict(self._member_index_map())
        counts: Dict[Signature, int] = dict(self._counts)
        members: Dict[Signature, Tuple[URI, ...]] = dict(self._members)
        removals: Dict[Signature, set] = {}
        additions: Dict[Signature, List[URI]] = {}
        for subject in sorted(delta.subjects):
            old_sig = index.get(subject)
            new_sig = (
                frozenset(matrix.properties_of(subject))
                if matrix.has_subject(subject)
                else None
            )
            if old_sig == new_sig:
                continue
            if old_sig is not None:
                removals.setdefault(old_sig, set()).add(subject)
            if new_sig is None:
                del index[subject]
            else:
                additions.setdefault(new_sig, []).append(subject)
                index[subject] = new_sig
        for signature, gone in removals.items():
            remaining = tuple(s for s in members[signature] if s not in gone)
            if remaining:
                members[signature] = remaining
                counts[signature] = len(remaining)
            else:
                del members[signature]
                del counts[signature]
        for signature, fresh in additions.items():
            combined = tuple(sorted(members.get(signature, ()) + tuple(fresh)))
            members[signature] = combined
            counts[signature] = len(combined)
        table = SignatureTable(
            matrix.properties,
            counts,
            members=members,
            name=self.name if name is None else name,
        )
        table._member_index = index
        return table

    # ------------------------------------------------------------------ #
    # Derived tables
    # ------------------------------------------------------------------ #
    def select(self, signatures: Iterable[Signature], name: str = "") -> "SignatureTable":
        """Return the sub-table containing only the given signatures.

        This is how an implicit sort is represented at the signature level:
        the property universe is restricted to the union of supports of the
        selected signatures (the properties the implicit sort *uses*, i.e.
        the paper's ``U_{i,p}`` variables set to 1), which is exactly what
        evaluating ``σ_r`` over the implicit sort requires.
        """
        wanted = [frozenset(coerce_uri(p) for p in sig) for sig in signatures]
        unknown = [sig for sig in wanted if sig not in self._counts]
        if unknown:
            raise RDFError(f"unknown signatures requested: {[signature_key(s) for s in unknown]}")
        used: set = set()
        for sig in wanted:
            used |= sig
        properties = tuple(p for p in self._properties if p in used)
        counts = {sig: self._counts[sig] for sig in wanted}
        members = None
        if self._members is not None:
            members = {sig: self._members[sig] for sig in wanted}
        return SignatureTable(properties, counts, members=members, name=name or self.name)

    def restrict_properties(self, properties: Iterable[URI], name: str = "") -> "SignatureTable":
        """Project the table onto a property subset, merging equal signatures.

        Used by rules that ignore some properties (e.g. the modified Cov
        rule of Section 7.4 that drops the RDF-syntax properties).
        """
        keep = [coerce_uri(p) for p in properties]
        keep_set = set(keep)
        counts: Dict[Signature, int] = {}
        members: Optional[Dict[Signature, List[URI]]] = {} if self._members is not None else None
        for sig, count in self._counts.items():
            projected = frozenset(p for p in sig if p in keep_set)
            counts[projected] = counts.get(projected, 0) + count
            if members is not None:
                members.setdefault(projected, []).extend(self._members[sig])
        member_arg = None
        if members is not None:
            member_arg = {sig: tuple(subs) for sig, subs in members.items()}
        ordered_props = tuple(p for p in self._properties if p in keep_set)
        extra = tuple(p for p in keep if p not in self._properties)
        return SignatureTable(ordered_props + extra, counts, members=member_arg, name=name or self.name)

    def merge(self, other: "SignatureTable", name: str = "") -> "SignatureTable":
        """Return the union of two signature tables (summing counts).

        Member subjects are kept only when both tables track them.
        """
        properties = list(self._properties)
        for p in other.properties:
            if p not in properties:
                properties.append(p)
        counts: Dict[Signature, int] = dict(self._counts)
        for sig, count in other.counts().items():
            counts[sig] = counts.get(sig, 0) + count
        members = None
        if self._members is not None and other._members is not None:
            members_acc: Dict[Signature, List[URI]] = {
                sig: list(subs) for sig, subs in self._members.items()
            }
            for sig, subs in other._members.items():
                members_acc.setdefault(sig, []).extend(subs)
            members = {sig: tuple(subs) for sig, subs in members_acc.items()}
        return SignatureTable(properties, counts, members=members, name=name)

    def scale(self, factor: float, minimum: int = 1, name: str = "") -> "SignatureTable":
        """Return a table with every signature-set size multiplied by ``factor``.

        Sizes are rounded and floored at ``minimum`` so that no signature
        disappears.  Member subjects are dropped (they no longer exist).
        Used to produce laptop-scale versions of the paper's datasets whose
        structuredness values match the full-scale ones closely (all the
        functions are ratios of counts, so uniform scaling preserves them
        up to rounding).
        """
        if factor <= 0:
            raise RDFError("scale factor must be positive")
        counts = {
            sig: max(minimum, int(round(count * factor))) for sig, count in self._counts.items()
        }
        return SignatureTable(self._properties, counts, name=name or self.name)

    def to_matrix(self, subject_prefix: str = "http://example.org/subject/") -> PropertyMatrix:
        """Expand the table into a full :class:`PropertyMatrix`.

        When member subjects are tracked they become the row labels;
        otherwise synthetic subject URIs ``<prefix><i>`` are minted.
        """
        subjects: List[URI] = []
        if self._members is not None:
            for sig in self._signatures:
                subjects.extend(self._members[sig])
        else:
            subjects = [URI(f"{subject_prefix}{i}") for i in range(self.n_subjects)]
        # Expand each signature's support row once per member subject.
        data = np.repeat(self._support_bool, self._count_vec, axis=0)
        return PropertyMatrix(data, subjects, self._properties, name=self.name)

    def to_graph(self, subject_prefix: str = "http://example.org/subject/") -> RDFGraph:
        """Expand the table into an RDF graph (via :meth:`to_matrix`)."""
        return self.to_matrix(subject_prefix=subject_prefix).to_graph()

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._signatures)

    def __iter__(self):
        return iter(self._signatures)

    def __contains__(self, signature: object) -> bool:
        if not isinstance(signature, (frozenset, set)):
            return False
        return frozenset(signature) in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SignatureTable):
            return NotImplemented
        return self._properties == other._properties and self._counts == other._counts

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<SignatureTable{label}: {self.n_subjects} subjects, "
            f"{self.n_properties} properties, {self.n_signatures} signatures>"
        )
