"""ASCII rendering of the "horizontal table" view of an RDF graph.

Figures 2, 3, 4, 5, 6 and 7 of the paper visualise a dataset (or an
implicit sort) as its horizontal table: one column per property, rows
grouped into signature sets ordered by decreasing size, black cells for
present properties and white cells for nulls.  This module reproduces those
figures as text so that the experiment harness can print recognisable
counterparts of the paper's figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.matrix.signatures import Signature, SignatureTable
from repro.rdf.terms import URI

__all__ = ["render_signature_table", "render_refinement", "signature_block_rows"]


def _short_name(prop: URI, width: int) -> str:
    name = prop.local_name if isinstance(prop, URI) else str(prop)
    return name[:width]


def signature_block_rows(table: SignatureTable, max_rows: int) -> List[tuple]:
    """Compute (signature, display_rows) pairs scaled to at most ``max_rows`` rows.

    Every signature set is given a number of display rows proportional to
    its size (at least one row), so the rendering conveys relative sizes
    like the paper's figures do.
    """
    total = table.n_subjects
    if total == 0:
        return []
    blocks: List[tuple] = []
    for signature in table.signatures:
        count = table.count(signature)
        rows = max(1, int(round(max_rows * count / total)))
        blocks.append((signature, rows))
    return blocks


def render_signature_table(
    table: SignatureTable,
    max_rows: int = 24,
    cell_full: str = "#",
    cell_empty: str = ".",
    show_counts: bool = True,
    show_header: bool = True,
    properties: Optional[Sequence[URI]] = None,
    title: Optional[str] = None,
) -> str:
    """Render a signature table as an ASCII horizontal-table figure.

    Parameters
    ----------
    table:
        The signature table to draw.
    max_rows:
        Approximate number of data rows in the rendering.
    cell_full / cell_empty:
        Characters used for 1-cells ("black") and 0-cells ("white").
    show_counts:
        Append the signature-set size to the right of each block.
    show_header:
        Print a compact property header above the matrix.
    properties:
        Optional explicit column order (defaults to the table's order).
        Allowing an explicit order lets refinements be drawn with the same
        columns as the parent dataset, as in the paper's figures.
    title:
        Optional title line.
    """
    props = tuple(properties) if properties is not None else table.properties
    lines: List[str] = []
    if title:
        lines.append(title)
    if show_header:
        width = max((len(p.local_name if isinstance(p, URI) else str(p)) for p in props), default=0)
        width = min(width, 18)
        for offset in range(width):
            header_chars = []
            for p in props:
                name = _short_name(p, width).ljust(width)
                header_chars.append(name[offset])
            lines.append("  " + " ".join(header_chars))
        lines.append("  " + "-" * max(1, 2 * len(props) - 1))
    for signature, rows in signature_block_rows(table, max_rows):
        row_cells = " ".join(cell_full if p in signature else cell_empty for p in props)
        for i in range(rows):
            suffix = ""
            if show_counts and i == 0:
                suffix = f"   |{table.count(signature)}|"
            lines.append("  " + row_cells + suffix)
    if show_counts:
        lines.append(
            f"  ({table.n_subjects} subjects, {table.n_properties} properties, "
            f"{table.n_signatures} signatures)"
        )
    return "\n".join(lines)


def render_refinement(
    parts: Sequence[SignatureTable],
    parent_properties: Optional[Sequence[URI]] = None,
    max_rows: int = 16,
    labels: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render the implicit sorts of a refinement side by side (stacked).

    Mirrors the paper's sub-figures: every implicit sort is drawn with the
    *same* columns as the parent dataset for easy comparison, even when an
    implicit sort does not use a column.
    """
    sections: List[str] = []
    if title:
        sections.append(title)
    for index, part in enumerate(parts):
        label = labels[index] if labels is not None and index < len(labels) else f"implicit sort {index + 1}"
        sections.append(
            render_signature_table(
                part,
                max_rows=max_rows,
                properties=parent_properties,
                title=f"[{label}]",
            )
        )
    return "\n\n".join(sections)
