"""The property-structure view ``M(D)`` of an RDF graph.

Section 2.1 of the paper defines, for an RDF graph ``D``, the
``|S(D)| × |P(D)|`` 0/1 matrix ``M(D)`` with ``M(D)[s, p] = 1`` iff subject
``s`` has property ``p`` in ``D``.  :class:`PropertyMatrix` materialises
that view as a NumPy boolean array together with the row (subject) and
column (property) labels, and offers the handful of selections the rest of
the library needs: row subsets (entity-preserving partitions act on rows),
column subsets (rules that ignore properties), and conversion to the
signature representation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.exceptions import RDFError
from repro.rdf.graph import GraphDelta, RDFGraph
from repro.rdf.namespaces import RDF
from repro.rdf.terms import URI, coerce_uri

__all__ = ["PropertyMatrix"]


def _sorted_merge(
    base: Sequence[URI], additions: Sequence[URI], removals: Set[URI]
) -> Sequence[URI]:
    """Merge sorted ``base`` with sorted ``additions`` minus ``removals``.

    A two-pointer merge: O(len(base) + len(additions)) instead of
    re-sorting the whole universe; mutations touch few labels, the
    universe holds many.
    """
    if not additions and not removals:
        return base
    kept: List[URI] = [x for x in base if x not in removals] if removals else list(base)
    if not additions:
        return kept
    merged: List[URI] = []
    i = j = 0
    while i < len(kept) and j < len(additions):
        if kept[i] <= additions[j]:
            merged.append(kept[i])
            i += 1
        else:
            merged.append(additions[j])
            j += 1
    merged.extend(kept[i:])
    merged.extend(additions[j:])
    return merged


class PropertyMatrix:
    """A labelled boolean matrix: rows are subjects, columns are properties.

    Instances are immutable once built; all "modifying" operations return a
    new matrix.

    Parameters
    ----------
    data:
        Boolean array of shape ``(len(subjects), len(properties))``.
    subjects:
        Row labels, in row order.
    properties:
        Column labels, in column order.
    name:
        Optional human-readable name.
    """

    __slots__ = ("_data", "_subjects", "_properties", "_subject_index", "_property_index", "name")

    def __init__(
        self,
        data: np.ndarray,
        subjects: Sequence[URI],
        properties: Sequence[URI],
        name: str = "",
    ):
        array = np.asarray(data, dtype=bool)
        if array.ndim != 2:
            raise RDFError("property matrix data must be two-dimensional")
        if array.shape != (len(subjects), len(properties)):
            raise RDFError(
                f"matrix shape {array.shape} does not match "
                f"{len(subjects)} subjects x {len(properties)} properties"
            )
        self._data = array
        self._subjects: Tuple[URI, ...] = tuple(coerce_uri(s) for s in subjects)
        self._properties: Tuple[URI, ...] = tuple(coerce_uri(p) for p in properties)
        if len(set(self._subjects)) != len(self._subjects):
            raise RDFError("duplicate subject labels in property matrix")
        if len(set(self._properties)) != len(self._properties):
            raise RDFError("duplicate property labels in property matrix")
        self._subject_index: Dict[URI, int] = {s: i for i, s in enumerate(self._subjects)}
        self._property_index: Dict[URI, int] = {p: j for j, p in enumerate(self._properties)}
        self.name = name

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_graph(
        cls,
        graph: RDFGraph,
        exclude_type: bool = True,
        properties: Optional[Sequence[URI]] = None,
        name: Optional[str] = None,
    ) -> "PropertyMatrix":
        """Build ``M(D)`` from an RDF graph in one vectorised pass.

        ``exclude_type`` drops the ``rdf:type`` column (the paper always
        reports property counts "excluding the type property").  An explicit
        ``properties`` sequence fixes the column set and order (columns not
        present in the graph are all-zero).

        The graph hands over its distinct (subject ID, property ID) pairs as
        NumPy arrays; rows and columns are then filled by a single fancy-
        indexed assignment instead of per-subject Python loops.
        """
        subjects = sorted(graph.subjects())
        if properties is None:
            props = sorted(graph.properties(exclude_type=exclude_type))
        else:
            props = [coerce_uri(p) for p in properties]
            if exclude_type:
                props = [p for p in props if p != RDF.type]
        data = np.zeros((len(subjects), len(props)), dtype=bool)
        if subjects and props:
            s_ids, p_ids = graph.subject_property_ids(exclude_type=exclude_type)
            if s_ids.size:
                dictionary = graph.term_dictionary
                # Dense ID -> row/column translation tables (IDs are dense
                # int32, so a flat array beats a dict lookup per pair).
                n_ids = len(dictionary)
                id_of = dictionary.id_of
                row_of = np.full(n_ids, -1, dtype=np.int64)
                subject_ids = np.fromiter(
                    (id_of(s) for s in subjects), dtype=np.int64, count=len(subjects)
                )
                row_of[subject_ids] = np.arange(len(subjects))
                col_of = np.full(n_ids, -1, dtype=np.int64)
                prop_ids = np.fromiter(
                    (id_of(p) for p in props), dtype=np.int64, count=len(props)
                )
                present = prop_ids >= 0
                col_of[prop_ids[present]] = np.flatnonzero(present)
                rows = row_of[s_ids]
                cols = col_of[p_ids]
                keep = cols >= 0
                data[rows[keep], cols[keep]] = True
        return cls(data, subjects, props, name=name if name is not None else graph.name)

    def apply_delta(
        self,
        graph: RDFGraph,
        delta: GraphDelta,
        exclude_type: bool = True,
        name: Optional[str] = None,
    ) -> "PropertyMatrix":
        """Re-derive only the touched subjects' rows after a graph mutation.

        ``self`` must be the :meth:`from_graph` matrix (default sorted
        row/column order, full property universe, same ``exclude_type``)
        of the graph state *before* the delta, and ``graph`` the mutated
        graph.  The result is equal to ``PropertyMatrix.from_graph(graph,
        exclude_type=exclude_type)`` — bit-identical rows, labels and
        order — but only the delta's subjects are recomputed: untouched
        rows are block-copied and the subject/property universes are
        updated by sorted merge instead of a full re-sort.
        """
        touched_subjects = sorted(delta.subjects)
        touched_properties = sorted(delta.properties)
        if exclude_type:
            touched_properties = [p for p in touched_properties if p != RDF.type]

        # Universe updates: a touched label enters when the graph now uses
        # it, leaves when its last triple disappeared.
        removed_subjects = {
            s for s in touched_subjects
            if s in self._subject_index and not graph.has_subject(s)
        }
        added_subjects = [
            s for s in touched_subjects
            if s not in self._subject_index and graph.has_subject(s)
        ]
        removed_properties = {
            p for p in touched_properties
            if p in self._property_index and not graph.has_predicate(p)
        }
        added_properties = [
            p for p in touched_properties
            if p not in self._property_index and graph.has_predicate(p)
        ]
        subjects = _sorted_merge(self._subjects, added_subjects, removed_subjects)
        properties = _sorted_merge(self._properties, added_properties, removed_properties)

        recompute = [s for s in touched_subjects if graph.has_subject(s)]
        recompute_set = set(recompute)
        row_pos = {s: i for i, s in enumerate(subjects)}
        col_pos = {p: j for j, p in enumerate(properties)}
        data = np.zeros((len(subjects), len(properties)), dtype=bool)

        # Block-copy every surviving untouched row.  Untouched rows are
        # all-zero in added columns (a brand-new property is only had by
        # touched subjects) and had only zeros in dropped columns (a
        # property with a surviving 1-cell still exists in the graph).
        keep = [s for s in self._subjects if s not in removed_subjects and s not in recompute_set]
        if keep and self._data.size:
            old_rows = np.fromiter(
                (self._subject_index[s] for s in keep), dtype=np.int64, count=len(keep)
            )
            new_rows = np.fromiter((row_pos[s] for s in keep), dtype=np.int64, count=len(keep))
            if removed_properties or added_properties:
                surviving = [p for p in self._properties if p not in removed_properties]
                old_cols = np.fromiter(
                    (self._property_index[p] for p in surviving),
                    dtype=np.int64,
                    count=len(surviving),
                )
                new_cols = np.fromiter(
                    (col_pos[p] for p in surviving), dtype=np.int64, count=len(surviving)
                )
                data[new_rows[:, None], new_cols[None, :]] = self._data[
                    old_rows[:, None], old_cols[None, :]
                ]
            else:
                data[new_rows, :] = self._data[old_rows, :]

        try:
            for s in recompute:
                row = data[row_pos[s]]
                for p in graph.properties_of(s, exclude_type=exclude_type):
                    row[col_pos[p]] = True
        except KeyError as error:
            raise RDFError(
                f"delta does not match this matrix: property {error} of touched "
                f"subject {s!r} is not a column (was the matrix built from the "
                "pre-delta state of this graph?)"
            ) from None
        return PropertyMatrix(
            data, subjects, properties, name=self.name if name is None else name
        )

    @classmethod
    def from_rows(
        cls,
        rows: Dict[URI, Iterable[URI]],
        properties: Optional[Sequence[URI]] = None,
        name: str = "",
    ) -> "PropertyMatrix":
        """Build a matrix from a mapping subject -> iterable of properties it has."""
        subjects = sorted(coerce_uri(s) for s in rows)
        if properties is None:
            prop_set = set()
            for props in rows.values():
                prop_set.update(coerce_uri(p) for p in props)
            props = sorted(prop_set)
        else:
            props = [coerce_uri(p) for p in properties]
        data = np.zeros((len(subjects), len(props)), dtype=bool)
        property_index = {p: j for j, p in enumerate(props)}
        for i, subject in enumerate(subjects):
            for prop in rows[subject]:
                j = property_index.get(coerce_uri(prop))
                if j is not None:
                    data[i, j] = True
        return cls(data, subjects, props, name=name)

    # ------------------------------------------------------------------ #
    # Basic accessors
    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The underlying boolean array (a read-only view)."""
        view = self._data.view()
        view.setflags(write=False)
        return view

    @property
    def subjects(self) -> Tuple[URI, ...]:
        """Row labels in row order."""
        return self._subjects

    @property
    def properties(self) -> Tuple[URI, ...]:
        """Column labels in column order."""
        return self._properties

    @property
    def shape(self) -> Tuple[int, int]:
        """``(number of subjects, number of properties)``."""
        return self._data.shape

    @property
    def n_subjects(self) -> int:
        """Number of rows (``|S(D)|``)."""
        return self._data.shape[0]

    @property
    def n_properties(self) -> int:
        """Number of columns (``|P(D)|``)."""
        return self._data.shape[1]

    @property
    def n_cells(self) -> int:
        """Total number of cells ``|S(D)| * |P(D)|``."""
        return int(self._data.size)

    @property
    def n_ones(self) -> int:
        """Number of cells containing 1 (i.e. number of (subject, property) facts)."""
        return int(self._data.sum())

    def subject_index(self, subject: object) -> int:
        """Return the row index of ``subject`` (raises ``RDFError`` if absent)."""
        try:
            return self._subject_index[coerce_uri(subject)]
        except KeyError:
            raise RDFError(f"subject {subject!r} is not a row of this matrix") from None

    def property_index(self, prop: object) -> int:
        """Return the column index of ``prop`` (raises ``RDFError`` if absent)."""
        try:
            return self._property_index[coerce_uri(prop)]
        except KeyError:
            raise RDFError(f"property {prop!r} is not a column of this matrix") from None

    def has_subject(self, subject: object) -> bool:
        """Return whether ``subject`` labels a row."""
        try:
            return coerce_uri(subject) in self._subject_index
        except RDFError:
            return False

    def has_property_column(self, prop: object) -> bool:
        """Return whether ``prop`` labels a column."""
        try:
            return coerce_uri(prop) in self._property_index
        except RDFError:
            return False

    def cell(self, subject: object, prop: object) -> int:
        """Return ``M[s, p]`` as 0 or 1."""
        return int(self._data[self.subject_index(subject), self.property_index(prop)])

    def cell_by_index(self, row: int, column: int) -> int:
        """Return ``M[row, column]`` as 0 or 1 using positional indexes."""
        return int(self._data[row, column])

    def row(self, subject: object) -> np.ndarray:
        """Return the boolean row of ``subject``."""
        return self._data[self.subject_index(subject)].copy()

    def column(self, prop: object) -> np.ndarray:
        """Return the boolean column of ``prop``."""
        return self._data[:, self.property_index(prop)].copy()

    def property_counts(self) -> Dict[URI, int]:
        """Return, for every property, how many subjects have it."""
        sums = self._data.sum(axis=0)
        return {p: int(sums[j]) for j, p in enumerate(self._properties)}

    def properties_of(self, subject: object) -> Tuple[URI, ...]:
        """Return the properties that ``subject`` has, in column order."""
        row = self._data[self.subject_index(subject)]
        return tuple(p for j, p in enumerate(self._properties) if row[j])

    # ------------------------------------------------------------------ #
    # Selections
    # ------------------------------------------------------------------ #
    def select_subjects(self, subjects: Iterable[URI], name: str = "") -> "PropertyMatrix":
        """Return the row-submatrix for ``subjects`` (keeping all columns).

        Row selections keep every column because a sort refinement is an
        *entity preserving* partition: the implicit sorts share the original
        property universe even when some columns become all-zero (the paper
        draws all sub-figures with the same columns for comparability).
        """
        wanted = [coerce_uri(s) for s in subjects]
        rows = [self.subject_index(s) for s in wanted]
        data = self._data[rows, :] if rows else np.zeros((0, self.n_properties), dtype=bool)
        return PropertyMatrix(data, wanted, self._properties, name=name or self.name)

    def select_properties(self, properties: Iterable[URI], name: str = "") -> "PropertyMatrix":
        """Return the column-submatrix for ``properties`` (keeping all rows)."""
        wanted = [coerce_uri(p) for p in properties]
        cols = [self.property_index(p) for p in wanted]
        data = self._data[:, cols] if cols else np.zeros((self.n_subjects, 0), dtype=bool)
        return PropertyMatrix(data, self._subjects, wanted, name=name or self.name)

    def drop_properties(self, properties: Iterable[URI], name: str = "") -> "PropertyMatrix":
        """Return a matrix without the given property columns."""
        dropped = {coerce_uri(p) for p in properties}
        keep = [p for p in self._properties if p not in dropped]
        return self.select_properties(keep, name=name)

    def used_properties(self) -> Tuple[URI, ...]:
        """Return the properties that at least one row actually has."""
        sums = self._data.sum(axis=0)
        return tuple(p for j, p in enumerate(self._properties) if sums[j] > 0)

    def trim_unused_properties(self) -> "PropertyMatrix":
        """Drop all-zero property columns."""
        return self.select_properties(self.used_properties())

    # ------------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------------ #
    def signature_of(self, subject: object) -> frozenset:
        """Return the signature of ``subject`` as a frozenset of property URIs.

        This is the paper's ``sig(s, D)`` represented by its support
        ``{p | sig(s, D)(p) = 1}``.
        """
        return frozenset(self.properties_of(subject))

    def coverage(self) -> float:
        """Return the Cov value of the matrix directly: ``sum(M) / (|S| |P|)``.

        Provided as a convenience and as a cross-check for the rule-based
        and signature-based implementations.
        """
        if self.n_cells == 0:
            return 1.0
        return float(self.n_ones) / float(self.n_cells)

    def to_graph(self, namespace_prefix: str = "http://example.org/value/") -> RDFGraph:
        """Materialise the matrix back into an RDF graph.

        Each 1-cell ``(s, p)`` becomes a triple ``(s, p, <prefix>s/p)``.
        The reverse of :meth:`from_graph` up to object values, which the
        property-structure view discards by design.
        """
        graph = RDFGraph(name=self.name)
        for i, subject in enumerate(self._subjects):
            row = self._data[i]
            for j, prop in enumerate(self._properties):
                if row[j]:
                    graph.add(subject, prop, URI(f"{namespace_prefix}{i}/{j}"))
        return graph

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PropertyMatrix):
            return NotImplemented
        return (
            self._subjects == other._subjects
            and self._properties == other._properties
            and bool(np.array_equal(self._data, other._data))
        )

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<PropertyMatrix{label}: {self.n_subjects} x {self.n_properties}>"
