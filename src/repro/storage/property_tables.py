"""Materialising sort refinements as relational property tables.

The paper motivates structuredness with data-management decisions — storage
layouts, indexing, query processing — and its related work (Section 8)
frames a refined sort as a *property table*: one relational table per
implicit sort, with a column per property the sort uses.  This module
closes that loop: given a :class:`~repro.core.refinement.SortRefinement`
and the RDF graph it refines, it produces one property table per implicit
sort, reports their null ratios (which is exactly ``1 − Cov``), and exports
them as CSV.

A refinement with higher per-sort structuredness yields property tables
with fewer NULLs — the practical pay-off of the whole approach.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.refinement import SortRefinement
from repro.exceptions import RefinementError
from repro.matrix.property_matrix import PropertyMatrix
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Term, URI

__all__ = ["PropertyTable", "build_property_tables", "null_ratio_report"]

#: The column name used for the subject key of every property table.
SUBJECT_COLUMN = "subject"
#: Separator used when a subject has several values for one property.
VALUE_SEPARATOR = "|"


@dataclass
class PropertyTable:
    """A relational property table for one implicit sort.

    Attributes
    ----------
    name:
        Table name (derived from the refinement and the sort index).
    columns:
        Property columns, in a stable order (the subject key column is kept
        separately and always comes first when exporting).
    rows:
        One dict per entity, mapping column -> string value or ``None``.
    """

    name: str
    columns: Tuple[URI, ...]
    rows: List[Dict[URI, Optional[str]]] = field(default_factory=list)
    subjects: List[URI] = field(default_factory=list)

    @property
    def n_rows(self) -> int:
        """Number of entities stored in the table."""
        return len(self.rows)

    @property
    def n_columns(self) -> int:
        """Number of property columns (excluding the subject key)."""
        return len(self.columns)

    @property
    def n_cells(self) -> int:
        """Number of property cells (rows × columns)."""
        return self.n_rows * self.n_columns

    @property
    def n_nulls(self) -> int:
        """Number of NULL property cells."""
        return sum(1 for row in self.rows for column in self.columns if row.get(column) is None)

    @property
    def null_ratio(self) -> float:
        """Fraction of NULL cells (0.0 for an empty table).

        This equals ``1 − Cov`` of the implicit sort restricted to the
        columns the table has, which is why refinements with high Cov give
        storage-friendly tables.
        """
        if self.n_cells == 0:
            return 0.0
        return self.n_nulls / self.n_cells

    def column_names(self, local: bool = True) -> List[str]:
        """Return printable column names (local names by default)."""
        names = [SUBJECT_COLUMN]
        names.extend(column.local_name if local else str(column) for column in self.columns)
        return names

    def to_csv(self, local_names: bool = True) -> str:
        """Serialise the table as CSV text (subject key first, NULLs empty)."""
        output = io.StringIO()
        writer = csv.writer(output)
        writer.writerow(self.column_names(local=local_names))
        for subject, row in zip(self.subjects, self.rows):
            writer.writerow(
                [str(subject)] + [row.get(column) or "" for column in self.columns]
            )
        return output.getvalue()

    def write_csv(self, path: Union[str, Path], local_names: bool = True) -> Path:
        """Write the CSV serialisation to ``path`` and return the path."""
        path = Path(path)
        path.write_text(self.to_csv(local_names=local_names), encoding="utf-8")
        return path

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<PropertyTable {self.name!r}: {self.n_rows} rows x {self.n_columns} columns, "
            f"null ratio {self.null_ratio:.2f}>"
        )


def _format_values(values: Sequence[Term]) -> Optional[str]:
    if not values:
        return None
    return VALUE_SEPARATOR.join(sorted(str(value) for value in values))


def build_property_tables(
    refinement: SortRefinement,
    graph: RDFGraph,
    exclude_type: bool = True,
    table_prefix: Optional[str] = None,
) -> List[PropertyTable]:
    """Build one property table per implicit sort of ``refinement``.

    Parameters
    ----------
    refinement:
        A sort refinement of the entities of ``graph`` (signature-level).
    graph:
        The RDF graph holding the actual property values.
    exclude_type:
        Drop ``rdf:type`` columns (matching how the refinement was computed).
    table_prefix:
        Prefix for table names; defaults to the graph (or parent dataset) name.
    """
    prefix = table_prefix or graph.name or refinement.parent.name or "dataset"
    matrix = PropertyMatrix.from_graph(graph, exclude_type=exclude_type)
    assignment = refinement.assignment()

    subjects_per_sort: Dict[int, List[URI]] = {sort.index: [] for sort in refinement.sorts}
    for subject in matrix.subjects:
        signature = matrix.signature_of(subject)
        if signature not in assignment:
            raise RefinementError(
                f"subject {subject} has a signature not covered by the refinement"
            )
        subjects_per_sort[assignment[signature]].append(subject)

    tables: List[PropertyTable] = []
    for sort in refinement.sorts:
        columns = tuple(sort.used_properties)
        table = PropertyTable(name=f"{prefix}_sort{sort.index + 1}", columns=columns)
        for subject in subjects_per_sort[sort.index]:
            row: Dict[URI, Optional[str]] = {}
            for column in columns:
                row[column] = _format_values(sorted(graph.objects(subject, column), key=str))
            table.rows.append(row)
            table.subjects.append(subject)
        tables.append(table)
    return tables


def null_ratio_report(
    tables: Sequence[PropertyTable], baseline: Optional[PropertyTable] = None
) -> List[Dict[str, object]]:
    """Summarise the storage quality of a set of property tables.

    Returns one row per table (rows, columns, null ratio) plus, when a
    ``baseline`` single-table layout is given, a comparison row showing how
    many NULL cells the refined layout saves over the horizontal table of
    the whole dataset.
    """
    report: List[Dict[str, object]] = []
    for table in tables:
        report.append(
            {
                "table": table.name,
                "rows": table.n_rows,
                "columns": table.n_columns,
                "nulls": table.n_nulls,
                "null ratio": table.null_ratio,
            }
        )
    if baseline is not None:
        refined_nulls = sum(table.n_nulls for table in tables)
        report.append(
            {
                "table": f"(baseline) {baseline.name}",
                "rows": baseline.n_rows,
                "columns": baseline.n_columns,
                "nulls": baseline.n_nulls,
                "null ratio": baseline.null_ratio,
            }
        )
        report.append(
            {
                "table": "(savings of the refined layout)",
                "rows": sum(table.n_rows for table in tables),
                "columns": "",
                "nulls": baseline.n_nulls - refined_nulls,
                "null ratio": (baseline.null_ratio - (refined_nulls / baseline.n_cells))
                if baseline.n_cells
                else 0.0,
            }
        )
    return report
