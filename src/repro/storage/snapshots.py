"""Persistent dataset snapshots: a versioned, checksummed binary artifact store.

The paper's workload is many structuredness queries over a few large fixed
graphs, yet without persistence every process — CLI run, example script,
each pool worker — re-parses N-Triples and rebuilds the whole
graph → ``PropertyMatrix`` → ``SignatureTable`` chain from scratch.  A
*snapshot* persists that chain once so any later process reopens it
I/O-bound instead of rebuild-bound, the same trick D4M-style systems use
when they persist associative-array artifacts for layered APIs to reopen
without reconstruction (see DESIGN.md, "Persistence & snapshots").

On-disk layout — one directory per snapshot::

    <path>/
      manifest.json       magic, format version, stages, per-segment
                          byte sizes and SHA-256 checksums, dataset name,
                          mutation generation
      <segment>.npy       one plain ``.npy`` file per array segment,
                          loadable with ``np.load(..., mmap_mode="r")``

Segments (all aligned with the interned-ID architecture):

===================  ========================================================
``terms_blob``       UTF-8 bytes of every interned term, concatenated
``terms_offsets``    ``int64[n_terms + 1]`` slice offsets into the blob
``terms_kinds``      ``uint8[n_terms]``: 0 = URI, 1 = Literal
``graph_triples``    ``int32[n_triples, 3]`` (s, p, o) term IDs, SPO order
``matrix_data``      ``bool[n_subjects, n_properties]`` — M(D) cells
``matrix_subject_ids``    ``int32`` row labels as term IDs, row order
``matrix_property_ids``   ``int32`` column labels as term IDs, column order
``table_support``    ``bool[n_signatures, n_table_properties]`` supports
``table_counts``     ``int64[n_signatures]`` signature-set sizes
``table_property_ids``    ``int32`` the table's property universe as IDs
``table_member_ids`` ``int32`` member subjects as IDs, concatenated per
                     signature in table order (present iff members tracked)
===================  ========================================================

Failure modes are strict and structured: magic or version mismatch, a
missing/truncated segment, checksum drift and malformed manifests all raise
:class:`~repro.exceptions.SnapshotError` — a snapshot loads completely or
not at all, never partially.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import SnapshotError
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable, Signature
from repro.rdf.graph import RDFGraph
from repro.rdf.interning import TermDictionary
from repro.rdf.terms import Literal, Term, URI

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "MANIFEST_NAME",
    "SnapshotInfo",
    "Snapshot",
    "check_snapshot_target",
    "EncodedChain",
    "encode_chain",
    "SnapshotWriter",
    "write_encoded_snapshot",
    "write_snapshot",
    "open_snapshot",
    "inspect_snapshot",
]

#: File-format identity: a manifest whose magic differs is not a snapshot.
SNAPSHOT_MAGIC = "repro-snapshot"

#: Current on-disk format version.  Version history and compatibility rules
#: live in DESIGN.md, "Persistence & snapshots".
SNAPSHOT_VERSION = 1

#: Name of the manifest file inside a snapshot directory.
MANIFEST_NAME = "manifest.json"

_KIND_URI = 0
_KIND_LITERAL = 1

#: Segment name -> expected dtype (shape is validated per segment below).
_SEGMENT_DTYPES = {
    "terms_blob": np.uint8,
    "terms_offsets": np.int64,
    "terms_kinds": np.uint8,
    "graph_triples": np.int32,
    "matrix_data": np.bool_,
    "matrix_subject_ids": np.int32,
    "matrix_property_ids": np.int32,
    "table_support": np.bool_,
    "table_counts": np.int64,
    "table_property_ids": np.int32,
    "table_member_ids": np.int32,
}


def _sha256_file(path: Path) -> str:
    """Streaming SHA-256 of a file's bytes."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _canonical_manifest_bytes(manifest: Dict[str, object]) -> bytes:
    """The manifest's canonical JSON form (checksum field excluded)."""
    body = {key: value for key, value in manifest.items() if key != "checksum"}
    return json.dumps(body, sort_keys=True, separators=(",", ":")).encode("utf-8")


@dataclass(frozen=True)
class SnapshotInfo:
    """The verified identity of one snapshot: manifest metadata, no arrays.

    Returned by :func:`write_snapshot`, :func:`inspect_snapshot` and
    exposed as :attr:`Snapshot.info`; the ``repro snapshot inspect`` CLI
    command renders it.
    """

    #: Filesystem path of the snapshot directory.
    path: str
    #: On-disk format version (see ``SNAPSHOT_VERSION``).
    format_version: int
    #: Dataset display name recorded at save time.
    name: str
    #: Mutation generation of the dataset when it was saved.
    generation: int
    #: Which chain stages the snapshot persists (subset of graph/matrix/table).
    stages: Tuple[str, ...]
    #: Whether the table segment tracks concrete member subjects.
    table_has_members: bool
    #: Entity counts recorded at save time (terms, triples, subjects, ...).
    counts: Dict[str, int] = field(default_factory=dict)
    #: Segment name -> {"file", "bytes", "sha256"}.
    segments: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: ``repro <version>`` string of the writer.
    created_by: str = ""

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serialisable rendering (the ``snapshot inspect`` payload)."""
        return {
            "path": self.path,
            "format_version": self.format_version,
            "name": self.name,
            "generation": self.generation,
            "stages": list(self.stages),
            "table_has_members": self.table_has_members,
            "counts": dict(self.counts),
            "segments": {name: dict(meta) for name, meta in self.segments.items()},
            "created_by": self.created_by,
        }

    @property
    def total_bytes(self) -> int:
        """Total payload size across every segment file."""
        return sum(int(meta["bytes"]) for meta in self.segments.values())


# --------------------------------------------------------------------- #
# Writing
# --------------------------------------------------------------------- #
def _encode_terms(dictionary: TermDictionary) -> Dict[str, np.ndarray]:
    """Lower a term dictionary to its three snapshot segments."""
    encoded = [str(term).encode("utf-8") for term in dictionary]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(b) for b in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    kinds = np.fromiter(
        (
            _KIND_LITERAL if isinstance(term, Literal) else _KIND_URI
            for term in dictionary
        ),
        dtype=np.uint8,
        count=len(dictionary),
    )
    return {"terms_blob": blob, "terms_offsets": offsets, "terms_kinds": kinds}


def _ids_of(dictionary: TermDictionary, terms: Sequence[Term]) -> np.ndarray:
    """Intern ``terms`` (appending strangers) and return their IDs."""
    intern = dictionary.intern
    return np.fromiter((intern(t) for t in terms), dtype=np.int32, count=len(terms))


def check_snapshot_target(path: object, *, overwrite: bool = False) -> None:
    """Raise :class:`SnapshotError` unless a snapshot may be written at ``path``.

    A non-existent path is always fine; an existing one needs
    ``overwrite=True`` *and* must already be a snapshot directory (the
    replace machinery refuses to delete arbitrary directories).  Callers
    that do expensive work before writing (``Dataset.save`` builds the
    whole chain) run this first so the refusal is instant.
    """
    target = Path(path)
    if target.exists():
        if not overwrite:
            raise SnapshotError(
                f"snapshot path {str(target)!r} already exists (pass overwrite=True to replace it)"
            )
        if not (target.is_dir() and (target / MANIFEST_NAME).exists()):
            raise SnapshotError(
                f"refusing to overwrite {str(target)!r}: it is not a snapshot directory"
            )


@dataclass
class EncodedChain:
    """An artifact chain lowered to its snapshot segments, not yet on disk.

    Produced by :func:`encode_chain`, consumed by
    :func:`write_encoded_snapshot`.  The split exists for callers holding
    a lock over a *live* chain (``Dataset.save``): encoding must happen
    under the lock — the graph and its dictionary are mutated in place by
    deltas — but the arrays here are private copies, so the expensive part
    (segment writes and SHA-256 hashing) can run with the lock released.
    """

    #: Segment name -> array, exactly as it will be written.
    arrays: Dict[str, np.ndarray]
    #: Which chain stages are present (subset of graph/matrix/table).
    stages: Tuple[str, ...]
    #: Entity counts for the manifest.
    counts: Dict[str, int]
    #: Whether the table segment tracks member subjects.
    table_has_members: bool
    #: Fallback display name harvested from the artifacts.
    default_name: str


def encode_chain(
    graph: Optional[RDFGraph] = None,
    matrix: Optional[PropertyMatrix] = None,
    table: Optional[SignatureTable] = None,
) -> EncodedChain:
    """Lower an artifact chain to snapshot segment arrays (no disk I/O).

    At least one stage must be given; whichever stages are present are
    encoded (a table-born dataset has no graph to save — the manifest
    records exactly which stages a snapshot carries).  The returned
    arrays are independent copies of the inputs.
    """
    if graph is None and matrix is None and table is None:
        raise SnapshotError("a snapshot needs at least one of graph, matrix or table")

    # One shared ID space for every segment.  A graph brings its own
    # dictionary (whose IDs the triple segment must use); otherwise a
    # fresh dictionary interns exactly the labels the segments mention.
    dictionary = graph.term_dictionary if graph is not None else TermDictionary()

    arrays: Dict[str, np.ndarray] = {}
    stages: List[str] = []
    counts: Dict[str, int] = {}

    if graph is not None:
        stages.append("graph")
        arrays["graph_triples"] = graph.triple_ids()
        counts["triples"] = len(graph)
    if matrix is not None:
        stages.append("matrix")
        arrays["matrix_data"] = np.array(matrix.data, dtype=bool)
        arrays["matrix_subject_ids"] = _ids_of(dictionary, matrix.subjects)
        arrays["matrix_property_ids"] = _ids_of(dictionary, matrix.properties)
        counts["subjects"] = matrix.n_subjects
        counts["properties"] = matrix.n_properties
    table_has_members = False
    if table is not None:
        stages.append("table")
        arrays["table_support"] = table.support_matrix()
        arrays["table_counts"] = table.count_vector()
        arrays["table_property_ids"] = _ids_of(dictionary, table.properties)
        counts["signatures"] = table.n_signatures
        counts.setdefault("subjects", table.n_subjects)
        counts.setdefault("properties", table.n_properties)
        if table.has_members:
            table_has_members = True
            members: List[URI] = []
            for signature in table.signatures:
                members.extend(table.members_of(signature))
            arrays["table_member_ids"] = _ids_of(dictionary, members)

    # The dictionary segments go last: encoding the other segments may have
    # interned additional labels, and every ID they use must decode.
    arrays.update(_encode_terms(dictionary))
    counts["terms"] = len(dictionary)

    default_name = (table.name if table is not None else "") or (
        graph.name if graph is not None else ""
    )
    return EncodedChain(
        arrays=arrays,
        stages=tuple(stages),
        counts=counts,
        table_has_members=table_has_members,
        default_name=default_name,
    )


class SnapshotWriter:
    """An incremental snapshot writer: stage segments one at a time, swap atomically.

    The streaming-capable half of :func:`write_encoded_snapshot`, usable on
    its own by builders whose segments never exist in memory all at once
    (the out-of-core pipeline in :mod:`repro.storage.outofcore`).  Segments
    are assembled in a sibling staging directory — either handed over as
    complete arrays (:meth:`add_array`) or created as writable ``.npy``
    memory-maps to be filled block by block (:meth:`create_segment`) — and
    :meth:`finalise` then hashes every file, writes the manifest and
    performs the same atomic move-aside/rename/delete swap the one-shot
    writer has always used: at every instant the target path holds either
    a complete snapshot or (first save) nothing.

    A writer is single-use: after :meth:`finalise` or :meth:`abort` it is
    spent.  Abandoning one without calling either leaks the staging
    directory, so builders should abort in their failure paths.
    """

    def __init__(self, path: object, *, overwrite: bool = False):
        check_snapshot_target(path, overwrite=overwrite)
        self._target = Path(path)
        # Unique staging/aside names: concurrent saves to one path (two
        # threads share a PID) must never clobber each other's in-flight
        # directories — each writer gets its own and the final renames race
        # harmlessly (last rename wins a complete snapshot).
        self._token = f"{os.getpid()}-{uuid.uuid4().hex[:12]}"
        self._staging = self._target.with_name(f"{self._target.name}.tmp-{self._token}")
        self._staging.mkdir(parents=True)
        self._files: Dict[str, Path] = {}
        self._memmaps: List[np.memmap] = []
        self._spent = False

    @property
    def staging_dir(self) -> Path:
        """The staging directory segments are assembled in (renamed on finalise)."""
        return self._staging

    def _register(self, segment_name: str) -> Path:
        if self._spent:
            raise SnapshotError("this SnapshotWriter was already finalised or aborted")
        if segment_name not in _SEGMENT_DTYPES:
            raise SnapshotError(f"unknown snapshot segment {segment_name!r}")
        if segment_name in self._files:
            raise SnapshotError(f"segment {segment_name!r} was already staged")
        file_path = self._staging / f"{segment_name}.npy"
        self._files[segment_name] = file_path
        return file_path

    def add_array(self, segment_name: str, array: np.ndarray) -> None:
        """Stage a complete in-memory array as one segment file."""
        file_path = self._register(segment_name)
        np.save(file_path, np.ascontiguousarray(array), allow_pickle=False)

    def create_segment(
        self, segment_name: str, shape: Tuple[int, ...], dtype: object
    ) -> np.ndarray:
        """Create a writable ``.npy`` memory-map for a segment; fill it blockwise.

        This is how the out-of-core builder writes arrays larger than RAM:
        the file is allocated up front (zero-filled) and the caller scatters
        row blocks into the returned map.  The map is flushed and released
        by :meth:`finalise`; the dtype must match the segment's declared
        dtype so a reopened snapshot validates.
        """
        file_path = self._register(segment_name)
        expected = np.dtype(_SEGMENT_DTYPES[segment_name])
        if np.dtype(dtype) != expected:
            raise SnapshotError(
                f"segment {segment_name!r} must have dtype {expected}, got {np.dtype(dtype)}"
            )
        # Zero-element arrays cannot be memory-mapped; np.lib.format still
        # writes a valid header, so fall back to a plain save.
        if int(np.prod(shape)) == 0:
            array = np.zeros(shape, dtype=dtype)
            np.save(file_path, array, allow_pickle=False)
            return array
        mm = np.lib.format.open_memmap(file_path, mode="w+", dtype=dtype, shape=shape)
        self._memmaps.append(mm)
        return mm

    def finalise(
        self,
        *,
        name: str = "",
        generation: int = 0,
        stages: Sequence[str] = (),
        counts: Optional[Dict[str, int]] = None,
        table_has_members: bool = False,
    ) -> SnapshotInfo:
        """Hash every staged segment, write the manifest, swap into place."""
        if self._spent:
            raise SnapshotError("this SnapshotWriter was already finalised or aborted")

        from repro import __version__

        target, staging, token = self._target, self._staging, self._token
        try:
            for mm in self._memmaps:
                mm.flush()
            self._memmaps.clear()
            segments: Dict[str, Dict[str, object]] = {}
            for segment_name in sorted(self._files):
                file_path = self._files[segment_name]
                segments[segment_name] = {
                    "file": file_path.name,
                    "bytes": file_path.stat().st_size,
                    "sha256": _sha256_file(file_path),
                }
            manifest: Dict[str, object] = {
                "magic": SNAPSHOT_MAGIC,
                "format_version": SNAPSHOT_VERSION,
                "created_by": f"repro {__version__}",
                "name": name,
                "generation": int(generation),
                "stages": list(stages),
                "table_has_members": bool(table_has_members),
                "counts": dict(counts or {}),
                "segments": segments,
            }
            manifest["checksum"] = hashlib.sha256(
                _canonical_manifest_bytes(manifest)
            ).hexdigest()
            with open(staging / MANIFEST_NAME, "w", encoding="utf-8") as handle:
                json.dump(manifest, handle, indent=2, sort_keys=True)
                handle.write("\n")
            # Move the old snapshot aside (cheap rename), swing the new one
            # into place, only then delete the old bytes: a crash anywhere in
            # between leaves either the old or the new snapshot at ``path``.
            # Concurrent writers race on the two renames; each loss mode means
            # another writer's *complete* snapshot got there first, so losing
            # is benign — never an error, never a partial state at ``path``.
            replaced = target.with_name(f"{target.name}.old-{token}")
            moved_aside = False
            if target.exists():
                try:
                    os.rename(target, replaced)
                    moved_aside = True
                except FileNotFoundError:
                    pass  # a concurrent writer already swapped the old one away
            try:
                os.rename(staging, target)
            except OSError:
                if (target / MANIFEST_NAME).exists():
                    # Lost the final rename: a complete snapshot from a
                    # concurrent writer is in place; ours is redundant.
                    shutil.rmtree(staging)
                    manifest = _read_manifest(target)
                else:
                    raise
            if moved_aside:
                shutil.rmtree(replaced)
        except Exception:
            self.abort()
            raise
        self._spent = True
        return _info_from_manifest(target, manifest)

    def abort(self) -> None:
        """Discard the staging directory (idempotent; safe in failure paths)."""
        self._memmaps.clear()
        self._spent = True
        shutil.rmtree(self._staging, ignore_errors=True)


def write_encoded_snapshot(
    path: object,
    encoded: EncodedChain,
    *,
    name: str = "",
    generation: int = 0,
    overwrite: bool = False,
) -> SnapshotInfo:
    """Write an :class:`EncodedChain` as a snapshot directory at ``path``.

    The write is atomic (see :class:`SnapshotWriter`, which this wraps):
    segments and manifest are assembled in a sibling temporary directory,
    an existing snapshot is moved aside, the staging directory is renamed
    into place and only then is the old snapshot deleted — at every
    instant ``path`` either holds a complete snapshot or (for a
    first-time save) nothing.

    Raises :class:`~repro.exceptions.SnapshotError` when ``path`` exists
    and ``overwrite`` is false, or exists and is not a snapshot.
    """
    writer = SnapshotWriter(path, overwrite=overwrite)
    try:
        for segment_name, array in encoded.arrays.items():
            writer.add_array(segment_name, array)
    except Exception:
        writer.abort()
        raise
    return writer.finalise(
        name=name or encoded.default_name,
        generation=generation,
        stages=encoded.stages,
        counts=encoded.counts,
        table_has_members=encoded.table_has_members,
    )


def write_snapshot(
    path: object,
    *,
    graph: Optional[RDFGraph] = None,
    matrix: Optional[PropertyMatrix] = None,
    table: Optional[SignatureTable] = None,
    name: str = "",
    generation: int = 0,
    overwrite: bool = False,
) -> SnapshotInfo:
    """Persist an artifact chain as a snapshot directory at ``path``.

    Convenience composition of :func:`encode_chain` and
    :func:`write_encoded_snapshot` — see those for the stage rules and
    the atomicity guarantees.  Callers serialising a chain that a
    concurrent thread may mutate should call the two halves themselves,
    encoding under their lock and writing outside it (``Dataset.save``
    does).
    """
    return write_encoded_snapshot(
        path,
        encode_chain(graph=graph, matrix=matrix, table=table),
        name=name,
        generation=generation,
        overwrite=overwrite,
    )


def _info_from_manifest(path: Path, manifest: Dict[str, object]) -> SnapshotInfo:
    return SnapshotInfo(
        path=str(path),
        format_version=int(manifest["format_version"]),
        name=str(manifest.get("name", "")),
        generation=int(manifest.get("generation", 0)),
        stages=tuple(manifest.get("stages", ())),
        table_has_members=bool(manifest.get("table_has_members", False)),
        counts={k: int(v) for k, v in dict(manifest.get("counts", {})).items()},
        segments={k: dict(v) for k, v in dict(manifest.get("segments", {})).items()},
        created_by=str(manifest.get("created_by", "")),
    )


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #
def _read_manifest(path: Path) -> Dict[str, object]:
    """Read and structurally validate ``manifest.json`` (magic, version, checksum)."""
    if not path.is_dir():
        raise SnapshotError(f"snapshot path {str(path)!r} is not a directory")
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.exists():
        raise SnapshotError(f"snapshot {str(path)!r} has no {MANIFEST_NAME}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    # ValueError covers both JSONDecodeError and UnicodeDecodeError, so a
    # byte-corrupted manifest still raises the structured error.
    except (OSError, ValueError) as error:
        raise SnapshotError(f"snapshot manifest {str(manifest_path)!r} is unreadable: {error}") from None
    if not isinstance(manifest, dict) or manifest.get("magic") != SNAPSHOT_MAGIC:
        raise SnapshotError(
            f"{str(path)!r} is not a repro snapshot (bad or missing magic)"
        )
    version = manifest.get("format_version")
    if version != SNAPSHOT_VERSION:
        raise SnapshotError(
            f"snapshot {str(path)!r} has format version {version!r}; this build "
            f"of repro reads version {SNAPSHOT_VERSION} (rebuild the snapshot "
            "with 'repro snapshot build')"
        )
    recorded = manifest.get("checksum")
    actual = hashlib.sha256(_canonical_manifest_bytes(manifest)).hexdigest()
    if recorded != actual:
        raise SnapshotError(
            f"snapshot manifest {str(manifest_path)!r} failed its checksum "
            f"(recorded {str(recorded)[:12]}…, actual {actual[:12]}…): the "
            "manifest was modified or corrupted"
        )
    segments = manifest.get("segments")
    if not isinstance(segments, dict):
        raise SnapshotError(f"snapshot {str(path)!r} manifest has no segment index")
    for segment_name, meta in segments.items():
        if segment_name not in _SEGMENT_DTYPES:
            raise SnapshotError(
                f"snapshot {str(path)!r} declares unknown segment {segment_name!r}"
            )
        file_name = str(meta.get("file", ""))
        if not file_name or os.path.basename(file_name) != file_name:
            raise SnapshotError(
                f"snapshot segment {segment_name!r} has an invalid file name {file_name!r}"
            )
    return manifest


class Snapshot:
    """An opened, verified snapshot handle with lazy per-segment loading.

    Opening validates the manifest (magic, format version, manifest
    checksum) and every segment file's existence, exact byte size and —
    unless ``verify=False`` — SHA-256 checksum.  Array segments are then
    loaded on demand, memory-mapped read-only by default so reopening a
    large dataset is I/O-bound (pages fault in as they are touched), not
    rebuild-bound.  Construct via :func:`open_snapshot`.
    """

    def __init__(self, path: object, *, mmap: bool = True, verify: bool = True):
        self._path = Path(path)
        self._mmap = mmap
        self._manifest = _read_manifest(self._path)
        self._segments: Dict[str, Dict[str, object]] = self._manifest["segments"]  # type: ignore[assignment]
        self._terms: Optional[List[Term]] = None
        for segment_name, meta in self._segments.items():
            file_path = self._path / str(meta["file"])
            if not file_path.exists():
                raise SnapshotError(
                    f"snapshot {str(self._path)!r} is missing segment file {meta['file']!r}"
                )
            size = file_path.stat().st_size
            if size != int(meta["bytes"]):
                raise SnapshotError(
                    f"snapshot segment {segment_name!r} is truncated or padded: "
                    f"expected {meta['bytes']} bytes, found {size}"
                )
            if verify and _sha256_file(file_path) != meta["sha256"]:
                raise SnapshotError(
                    f"snapshot segment {segment_name!r} failed its SHA-256 checksum: "
                    f"the file {meta['file']!r} drifted from the manifest"
                )
        self.info = _info_from_manifest(self._path, self._manifest)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def path(self) -> Path:
        """The snapshot directory."""
        return self._path

    def has_stage(self, stage: str) -> bool:
        """Whether the snapshot persists ``stage`` ('graph'/'matrix'/'table')."""
        return stage in self.info.stages

    # ------------------------------------------------------------------ #
    # Segment loading
    # ------------------------------------------------------------------ #
    def _load_segment(self, segment_name: str) -> np.ndarray:
        meta = self._segments.get(segment_name)
        if meta is None:
            raise SnapshotError(
                f"snapshot {str(self._path)!r} has no {segment_name!r} segment "
                f"(stages: {', '.join(self.info.stages)})"
            )
        file_path = self._path / str(meta["file"])
        try:
            # Zero-size arrays cannot be memory-mapped; load them normally
            # (there is nothing to page in anyway).
            array = np.load(
                file_path,
                mmap_mode="r" if self._mmap else None,
                allow_pickle=False,
            )
        except ValueError:
            try:
                array = np.load(file_path, allow_pickle=False)
            except (ValueError, OSError) as error:
                raise SnapshotError(
                    f"snapshot segment {segment_name!r} is not a readable .npy file: {error}"
                ) from None
        except OSError as error:
            raise SnapshotError(
                f"snapshot segment {segment_name!r} is not a readable .npy file: {error}"
            ) from None
        expected = _SEGMENT_DTYPES[segment_name]
        if array.dtype != expected:
            raise SnapshotError(
                f"snapshot segment {segment_name!r} has dtype {array.dtype}, expected {np.dtype(expected)}"
            )
        return array

    def _term_list(self) -> List[Term]:
        """Decode the dictionary segments into the ID-ordered term list (cached)."""
        if self._terms is None:
            blob = self._load_segment("terms_blob")
            offsets = self._load_segment("terms_offsets")
            kinds = self._load_segment("terms_kinds")
            if offsets.ndim != 1 or kinds.ndim != 1 or len(offsets) != len(kinds) + 1:
                raise SnapshotError(
                    f"snapshot {str(self._path)!r} has inconsistent term segments"
                )
            text = blob.tobytes()
            bounds = offsets.tolist()
            kind_list = kinds.tolist()
            terms: List[Term] = []
            try:
                for index in range(len(kind_list)):
                    raw = text[bounds[index]:bounds[index + 1]].decode("utf-8")
                    terms.append(Literal(raw) if kind_list[index] == _KIND_LITERAL else URI(raw))
            except (UnicodeDecodeError, IndexError) as error:
                raise SnapshotError(
                    f"snapshot {str(self._path)!r} has an undecodable term blob: {error}"
                ) from None
            self._terms = terms
        return self._terms

    def _decode_ids(self, segment_name: str) -> List[Term]:
        terms = self._term_list()
        ids = self._load_segment(segment_name)
        # Negative IDs must fail loudly *before* list indexing: Python
        # would silently resolve them from the end of the term list and
        # hand back wrong labels (the dangling-ID bug class, see
        # TermDictionary.decode_many).
        if ids.size and int(ids.min()) < 0:
            raise SnapshotError(
                f"snapshot segment {segment_name!r} references negative term IDs"
            )
        try:
            return [terms[i] for i in ids.tolist()]
        except IndexError:
            raise SnapshotError(
                f"snapshot segment {segment_name!r} references term IDs outside "
                f"the dictionary (0..{len(terms) - 1})"
            ) from None

    # ------------------------------------------------------------------ #
    # Artifact reconstruction
    # ------------------------------------------------------------------ #
    def load_dictionary(self) -> TermDictionary:
        """Rebuild the :class:`TermDictionary` (IDs 0..n-1 in stored order)."""
        return TermDictionary(self._term_list())

    def load_graph(self) -> RDFGraph:
        """Replay the triple segment into an indexed :class:`RDFGraph`.

        The graph's dictionary is rebuilt with the stored ID assignment,
        so term IDs in this graph equal the snapshot's — and downstream
        views rebuilt from it are bit-identical to the persisted ones.
        This is the one reconstruction that is *not* I/O-bound (the hash
        indexes are Python dicts); ``Dataset.load`` therefore defers it
        until something actually needs the graph (e.g. a mutation).
        """
        dictionary = self.load_dictionary()
        graph = RDFGraph(name=self.info.name, dictionary=dictionary)
        triples = self._load_segment("graph_triples")
        if triples.ndim != 2 or (triples.size and triples.shape[1] != 3):
            raise SnapshotError(
                f"snapshot {str(self._path)!r} has a malformed triple segment "
                f"(shape {triples.shape})"
            )
        n_terms = len(dictionary)
        if triples.size:
            low, high = int(triples.min()), int(triples.max())
            if low < 0 or high >= n_terms:
                raise SnapshotError(
                    f"snapshot triple segment references term IDs outside the "
                    f"dictionary (0..{n_terms - 1})"
                )
        add = graph._add_ids
        for s_id, p_id, o_id in triples.tolist():
            add(s_id, p_id, o_id)
        return graph

    def load_matrix(self) -> PropertyMatrix:
        """Reconstruct the :class:`PropertyMatrix` over the mapped data segment."""
        data = self._load_segment("matrix_data")
        subjects = self._decode_ids("matrix_subject_ids")
        properties = self._decode_ids("matrix_property_ids")
        if data.ndim != 2 or data.shape != (len(subjects), len(properties)):
            raise SnapshotError(
                f"snapshot matrix segment shape {data.shape} does not match its "
                f"{len(subjects)} subject / {len(properties)} property labels"
            )
        return PropertyMatrix(data, subjects, properties, name=self.info.name)

    def load_table(self) -> SignatureTable:
        """Reconstruct the :class:`SignatureTable` (supports, counts, members)."""
        support = self._load_segment("table_support")
        count_vec = self._load_segment("table_counts")
        properties = self._decode_ids("table_property_ids")
        if (
            support.ndim != 2
            or count_vec.ndim != 1
            or support.shape[0] != len(count_vec)
            or (support.size and support.shape[1] != len(properties))
        ):
            raise SnapshotError(
                f"snapshot table segments disagree: support {support.shape}, "
                f"{len(count_vec)} counts, {len(properties)} properties"
            )
        signatures: List[Signature] = [
            frozenset(properties[j] for j in np.flatnonzero(row))
            for row in np.asarray(support)
        ]
        counts: Dict[Signature, int] = {
            signature: int(count)
            for signature, count in zip(signatures, count_vec.tolist())
        }
        if len(counts) != len(signatures):
            raise SnapshotError(
                f"snapshot {str(self._path)!r} table support rows are not distinct"
            )
        members = None
        if self.info.table_has_members:
            member_terms = self._decode_ids("table_member_ids")
            if len(member_terms) != int(count_vec.sum()):
                raise SnapshotError(
                    f"snapshot member segment has {len(member_terms)} subjects; "
                    f"the counts sum to {int(count_vec.sum())}"
                )
            members = {}
            start = 0
            for signature, count in zip(signatures, count_vec.tolist()):
                members[signature] = tuple(member_terms[start:start + count])
                start += count
        return SignatureTable(
            properties, counts, members=members, name=self.info.name
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Snapshot {str(self._path)!r} v{self.info.format_version} "
            f"stages={list(self.info.stages)}>"
        )


def open_snapshot(path: object, *, mmap: bool = True, verify: bool = True) -> Snapshot:
    """Open and verify a snapshot directory; artifacts load lazily from it.

    ``verify=False`` skips the per-segment SHA-256 pass (the manifest
    checksum, magic, version and exact segment sizes are always checked) —
    useful when the same process just wrote the snapshot.
    """
    return Snapshot(path, mmap=mmap, verify=verify)


def inspect_snapshot(path: object, *, verify: bool = True) -> SnapshotInfo:
    """Validate a snapshot and return its :class:`SnapshotInfo` (no arrays loaded)."""
    return Snapshot(path, mmap=True, verify=verify).info
