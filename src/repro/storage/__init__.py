"""Persistence layer: relational property tables and binary dataset snapshots.

Two ways artifacts leave process memory:

* :mod:`repro.storage.property_tables` — the relational materialisation of
  a sort refinement (Section 4's property tables, with null ratios);
* :mod:`repro.storage.snapshots` — the versioned, checksummed binary
  snapshot store persisting the graph → matrix → signature-table chain for
  zero-rebuild warm starts (see DESIGN.md, "Persistence & snapshots");
* :mod:`repro.storage.outofcore` — the disk-backed build pipeline that
  stream-parses N-Triples in bounded memory and assembles the same
  snapshot layout in partitioned merge passes (see docs/outofcore.md).
"""

from repro.storage.outofcore import (
    DEFAULT_CHUNK_TRIPLES,
    DEFAULT_PARTITIONS,
    build_out_of_core,
    default_chunk_triples,
    default_partitions,
)
from repro.storage.property_tables import (
    PropertyTable,
    build_property_tables,
    null_ratio_report,
)
from repro.storage.snapshots import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    EncodedChain,
    Snapshot,
    SnapshotInfo,
    SnapshotWriter,
    check_snapshot_target,
    encode_chain,
    inspect_snapshot,
    open_snapshot,
    write_encoded_snapshot,
    write_snapshot,
)

__all__ = [
    "PropertyTable",
    "build_property_tables",
    "null_ratio_report",
    "DEFAULT_CHUNK_TRIPLES",
    "DEFAULT_PARTITIONS",
    "build_out_of_core",
    "default_chunk_triples",
    "default_partitions",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "EncodedChain",
    "Snapshot",
    "SnapshotInfo",
    "SnapshotWriter",
    "check_snapshot_target",
    "encode_chain",
    "inspect_snapshot",
    "open_snapshot",
    "write_encoded_snapshot",
    "write_snapshot",
]
