"""Relational property-table materialisation of sort refinements."""

from repro.storage.property_tables import (
    PropertyTable,
    build_property_tables,
    null_ratio_report,
)

__all__ = ["PropertyTable", "build_property_tables", "null_ratio_report"]
