"""Persistence layer: relational property tables and binary dataset snapshots.

Two ways artifacts leave process memory:

* :mod:`repro.storage.property_tables` — the relational materialisation of
  a sort refinement (Section 4's property tables, with null ratios);
* :mod:`repro.storage.snapshots` — the versioned, checksummed binary
  snapshot store persisting the graph → matrix → signature-table chain for
  zero-rebuild warm starts (see DESIGN.md, "Persistence & snapshots").
"""

from repro.storage.property_tables import (
    PropertyTable,
    build_property_tables,
    null_ratio_report,
)
from repro.storage.snapshots import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    EncodedChain,
    Snapshot,
    SnapshotInfo,
    check_snapshot_target,
    encode_chain,
    inspect_snapshot,
    open_snapshot,
    write_encoded_snapshot,
    write_snapshot,
)

__all__ = [
    "PropertyTable",
    "build_property_tables",
    "null_ratio_report",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "EncodedChain",
    "Snapshot",
    "SnapshotInfo",
    "check_snapshot_target",
    "encode_chain",
    "inspect_snapshot",
    "open_snapshot",
    "write_encoded_snapshot",
    "write_snapshot",
]
