"""Out-of-core dataset builds: partitioned streaming over spilled run segments.

The in-memory build path (``load_ntriples`` → ``RDFGraph`` →
``PropertyMatrix.from_graph`` → ``SignatureTable.from_matrix``) holds the
whole triple set, its hash indexes and the dense boolean matrix in RAM at
once — fine for the paper's benchmark tables, a hard wall for the
ROADMAP's graphs-bigger-than-RAM ambition.  This module rebuilds the same
artifact chain as an external-memory pipeline in three bounded phases,
following the shape of disk-based RDF stores (keyed index partitions over
pooled term buffers) rather than their machinery:

1. **Parse & spill** — the N-Triples source is stream-parsed in chunks of
   ``chunk_triples`` lines (:func:`repro.rdf.ntriples.iter_ntriples_chunks`
   never holds more than one chunk), every term is interned in file order —
   *exactly* the order the in-memory parser would intern, which is what
   makes the resulting ``TermDictionary`` bit-identical — and each chunk is
   lowered to an ``(n, 3) int32`` ID-triple array, sorted, deduplicated and
   spilled as one ``.npy`` run segment.
2. **Scatter** — subjects are sorted by URI (the ``PropertyMatrix`` row
   order) and split into ``partitions`` contiguous row ranges; each run is
   re-read (memory-mapped) and its rows appended to the partition spill
   file owning their subject.  Since every copy of a duplicated triple
   shares its subject, global deduplication reduces to per-partition
   deduplication.
3. **Partitioned merge** — each partition is loaded alone, deduplicated,
   appended to the triple segment, scattered into its row block of the
   ``matrix_data`` segment (a writable ``.npy`` memory-map created up
   front), and grouped into signatures via packed bitset rows; per-partition
   groups merge into global signature counts and member lists, processed in
   row order so members land in exactly the order
   ``SignatureTable.from_matrix`` produces.

The output is written through :class:`~repro.storage.snapshots.SnapshotWriter`
— the result of an out-of-core build *is* a format-version-1 snapshot,
checksummed segment by segment, that ``Dataset.load`` reopens over
``np.load(mmap_mode="r")``.  The differential suite
(``tests/test_outofcore_differential.py``) proves every artifact and query
payload bit-identical to the in-memory path across chunk/partition grids.

**Memory model.**  Resident at peak: the term dictionary (the irreducible
vocabulary — every disk-backed RDF store keeps an equivalent term pool),
a few boolean/int flag arrays of vocabulary length, one parsed chunk, one
run or partition of ID-triples, one partition-height matrix block, and the
signature accumulator (one packed row + member IDs per *distinct*
signature — the same asymptotic footprint the signature table itself has).
Everything proportional to the triple count lives on disk.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import SnapshotError
from repro.rdf.interning import NO_ID, TermDictionary
from repro.rdf.namespaces import RDF
from repro.rdf.ntriples import DEFAULT_BUFFER_BYTES, iter_ntriples_chunks
from repro.rdf.terms import coerce_object
from repro.storage.snapshots import SnapshotInfo, SnapshotWriter, _encode_terms
from repro.telemetry import current as current_telemetry

__all__ = [
    "DEFAULT_CHUNK_TRIPLES",
    "DEFAULT_PARTITIONS",
    "default_chunk_triples",
    "default_partitions",
    "build_out_of_core",
]

#: Fallback chunk size (triples per spill run) when neither the caller nor
#: the ``REPRO_OOC_CHUNK`` environment variable chooses one.
DEFAULT_CHUNK_TRIPLES = 65536

#: Fallback number of subject partitions when neither the caller nor the
#: ``REPRO_OOC_PARTITIONS`` environment variable chooses one.
DEFAULT_PARTITIONS = 8

#: Copy granularity (rows) when streaming the spilled triple file into the
#: final ``graph_triples`` segment.
_COPY_ROWS = 1 << 16


def _env_int(variable: str, fallback: int) -> int:
    raw = os.environ.get(variable, "").strip()
    if not raw:
        return fallback
    try:
        value = int(raw)
    except ValueError:
        raise SnapshotError(f"{variable} must be an integer, got {raw!r}") from None
    if value < 1:
        raise SnapshotError(f"{variable} must be >= 1, got {value}")
    return value


def default_chunk_triples() -> int:
    """The effective default chunk size (``REPRO_OOC_CHUNK`` or 65536)."""
    return _env_int("REPRO_OOC_CHUNK", DEFAULT_CHUNK_TRIPLES)


def default_partitions() -> int:
    """The effective default partition count (``REPRO_OOC_PARTITIONS`` or 8)."""
    return _env_int("REPRO_OOC_PARTITIONS", DEFAULT_PARTITIONS)


class _VocabFlags:
    """A boolean flag per term ID, grown geometrically as the vocabulary grows."""

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = np.zeros(1024, dtype=bool)

    def mark(self, ids: np.ndarray, vocab_size: int) -> None:
        if vocab_size > len(self.data):
            grown = np.zeros(max(vocab_size, 2 * len(self.data)), dtype=bool)
            grown[: len(self.data)] = self.data
            self.data = grown
        if ids.size:
            self.data[ids] = True

    def trimmed(self, vocab_size: int) -> np.ndarray:
        if vocab_size > len(self.data):
            self.mark(np.empty(0, dtype=np.int64), vocab_size)
        return self.data[:vocab_size]


def _dedup_sorted_rows(rows: np.ndarray) -> np.ndarray:
    """Drop duplicate rows from a lexicographically sorted ``(n, 3)`` array."""
    if len(rows) < 2:
        return rows
    keep = np.ones(len(rows), dtype=bool)
    np.any(rows[1:] != rows[:-1], axis=1, out=keep[1:])
    return rows[keep]


def build_out_of_core(
    source: object,
    path: object,
    *,
    name: str = "",
    sort: Optional[object] = None,
    chunk_triples: Optional[int] = None,
    partitions: Optional[int] = None,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
    overwrite: bool = False,
    workdir: Optional[object] = None,
) -> SnapshotInfo:
    """Build a snapshot from an N-Triples file without materialising the dataset.

    Stream-parses ``source`` in ``chunk_triples``-sized chunks, spills
    sorted ID-triple runs, and assembles the graph/matrix/signature-table
    segments in ``partitions`` subject-partitioned merge passes (see the
    module docstring for the phase-by-phase memory model).  The result is
    an ordinary format-version-1 snapshot at ``path`` whose every segment
    is bit-identical to ``Dataset.from_ntriples(source, sort=...).save(path)``
    — only the peak memory differs.

    ``sort`` restricts the dataset to subjects declared of that
    ``rdf:type`` (the paper's ``D_t``), like the in-memory constructors;
    the term dictionary still interns the whole file, matching the shared
    ID space of ``RDFGraph.sort_subgraph``.  ``chunk_triples`` and
    ``partitions`` default to the ``REPRO_OOC_CHUNK`` /
    ``REPRO_OOC_PARTITIONS`` environment variables (then 65536 / 8).
    Spill files live in a temporary directory under ``workdir`` (default:
    alongside the snapshot) and are deleted as soon as each is consumed.

    Returns the written snapshot's
    :class:`~repro.storage.snapshots.SnapshotInfo`.  Raises
    :class:`~repro.exceptions.SnapshotError` on an unwritable target or
    invalid knobs; parse errors propagate as
    :class:`~repro.exceptions.ParseError` with the snapshot target left
    untouched.
    """
    chunk = int(chunk_triples) if chunk_triples is not None else default_chunk_triples()
    if chunk < 1:
        raise SnapshotError(f"chunk_triples must be >= 1, got {chunk}")
    n_partitions = int(partitions) if partitions is not None else default_partitions()
    if n_partitions < 1:
        raise SnapshotError(f"partitions must be >= 1, got {n_partitions}")
    source_path = Path(source)
    sort_term = coerce_object(sort) if sort is not None else None
    telemetry = current_telemetry()

    writer = SnapshotWriter(path, overwrite=overwrite)
    spill_root = Path(workdir) if workdir is not None else Path(path).parent
    spill_dir = spill_root / f".repro-ooc-{os.getpid()}-{uuid.uuid4().hex[:12]}"
    try:
        spill_dir.mkdir(parents=True)
        info = _build(
            source_path,
            writer,
            spill_dir,
            name=name,
            sort_term=sort_term,
            chunk=chunk,
            n_partitions=n_partitions,
            buffer_bytes=buffer_bytes,
            telemetry=telemetry,
        )
    except Exception:
        writer.abort()
        raise
    finally:
        shutil.rmtree(spill_dir, ignore_errors=True)
    return info


def _build(
    source_path: Path,
    writer: SnapshotWriter,
    spill_dir: Path,
    *,
    name: str,
    sort_term: Optional[object],
    chunk: int,
    n_partitions: int,
    buffer_bytes: int,
    telemetry,
) -> SnapshotInfo:
    """The three-phase pipeline body (spill dir and writer owned by the caller)."""
    dictionary = TermDictionary()
    intern = dictionary.intern

    # ---------------- Phase 1: parse, intern, spill sorted runs ---------- #
    run_paths: List[Path] = []
    is_subject = _VocabFlags()
    is_typed = _VocabFlags() if sort_term is not None else None
    with telemetry.span("outofcore.parse"):
        for batch in iter_ntriples_chunks(source_path, chunk, buffer_bytes=buffer_bytes):
            ids = np.empty((len(batch), 3), dtype=np.int32)
            for i, (s, p, o) in enumerate(batch):
                ids[i, 0] = intern(s)
                ids[i, 1] = intern(p)
                ids[i, 2] = intern(o)
            ids = _dedup_sorted_rows(ids[np.lexsort((ids[:, 2], ids[:, 1], ids[:, 0]))])
            vocab = len(dictionary)
            is_subject.mark(ids[:, 0], vocab)
            if is_typed is not None:
                type_id = dictionary.id_of(RDF.type)
                t_id = dictionary.id_of(sort_term)
                if type_id != NO_ID and t_id != NO_ID:
                    typed = ids[(ids[:, 1] == type_id) & (ids[:, 2] == t_id), 0]
                    is_typed.mark(typed, vocab)
            run_path = spill_dir / f"run-{len(run_paths):06d}.npy"
            np.save(run_path, ids, allow_pickle=False)
            run_paths.append(run_path)

    vocab = len(dictionary)
    kept = is_typed.trimmed(vocab) if is_typed is not None else is_subject.trimmed(vocab)
    kept_ids = np.flatnonzero(kept)
    # Row order = subjects sorted by URI, exactly PropertyMatrix.from_graph.
    by_uri = sorted((dictionary.term_of(int(i)), int(i)) for i in kept_ids)
    subject_ids_sorted = np.fromiter(
        (i for _t, i in by_uri), dtype=np.int32, count=len(by_uri)
    )
    n_subjects = len(subject_ids_sorted)
    row_of = np.full(vocab, -1, dtype=np.int64)
    row_of[subject_ids_sorted] = np.arange(n_subjects)
    n_parts = max(1, min(n_partitions, n_subjects)) if n_subjects else 1
    bounds = np.linspace(0, n_subjects, n_parts + 1).astype(np.int64)

    # ---------------- Phase 2: scatter runs into subject partitions ------ #
    part_paths = [spill_dir / f"part-{j:04d}.bin" for j in range(n_parts)]
    kept_predicate = np.zeros(vocab, dtype=bool)
    with telemetry.span("outofcore.scatter"):
        handles = [open(p, "wb") for p in part_paths]
        try:
            for run_path in run_paths:
                arr = np.load(run_path, mmap_mode="r")
                if is_typed is not None:
                    arr = np.asarray(arr[kept[arr[:, 0]]])
                else:
                    arr = np.asarray(arr)
                if not len(arr):
                    run_path.unlink()
                    continue
                kept_predicate[arr[:, 1]] = True
                part_index = np.searchsorted(
                    bounds[1:], row_of[arr[:, 0]], side="right"
                )
                for j in np.unique(part_index):
                    handles[j].write(arr[part_index == j].tobytes())
                run_path.unlink()
        finally:
            for handle in handles:
                handle.close()

    # Column order = properties sorted by URI, rdf:type excluded.
    type_id = dictionary.id_of(RDF.type)
    prop_by_uri = sorted(
        (dictionary.term_of(int(p)), int(p))
        for p in np.flatnonzero(kept_predicate)
        if int(p) != type_id
    )
    property_ids = np.fromiter(
        (i for _t, i in prop_by_uri), dtype=np.int32, count=len(prop_by_uri)
    )
    n_props = len(property_ids)
    col_of = np.full(vocab, -1, dtype=np.int64)
    col_of[property_ids] = np.arange(n_props)

    # -------- Phase 3: per-partition dedup, matrix fill, signatures ------ #
    matrix_mm = writer.create_segment("matrix_data", (n_subjects, n_props), np.bool_)
    triples_path = spill_dir / "triples.bin"
    n_triples = 0
    # packed support row -> [count, member-ID chunks in matrix row order]
    sig_acc: Dict[bytes, list] = {}
    with telemetry.span("outofcore.merge"), open(triples_path, "wb") as triples_out:
        for j in range(n_parts):
            lo, hi = int(bounds[j]), int(bounds[j + 1])
            if hi <= lo:
                part_paths[j].unlink(missing_ok=True)
                continue
            block = np.zeros((hi - lo, n_props), dtype=bool)
            if part_paths[j].stat().st_size:
                arr = np.fromfile(part_paths[j], dtype=np.int32).reshape(-1, 3)
                arr = np.unique(arr, axis=0)
                triples_out.write(arr.tobytes())
                n_triples += len(arr)
                cols = col_of[arr[:, 1]]
                in_matrix = cols >= 0
                block[row_of[arr[in_matrix, 0]] - lo, cols[in_matrix]] = True
                if n_props:
                    matrix_mm[lo:hi] = block
            part_paths[j].unlink()
            block_subjects = subject_ids_sorted[lo:hi]
            if n_props:
                packed = np.packbits(block, axis=1)
                groups, inverse = np.unique(packed, axis=0, return_inverse=True)
                inverse = inverse.ravel()
                member_order = np.argsort(inverse, kind="stable")
                group_sizes = np.bincount(inverse, minlength=len(groups))
                start = 0
                for g in range(len(groups)):
                    stop = start + int(group_sizes[g])
                    entry = sig_acc.setdefault(groups[g].tobytes(), [0, []])
                    entry[0] += int(group_sizes[g])
                    entry[1].append(block_subjects[member_order[start:stop]])
                    start = stop
            else:
                entry = sig_acc.setdefault(b"", [0, []])
                entry[0] += hi - lo
                entry[1].append(block_subjects)

    # ---------------- Final assembly: table, labels, graph, terms -------- #
    with telemetry.span("outofcore.assemble"):
        property_strings = [str(t) for t, _i in prop_by_uri]
        ordered_sigs: List[Tuple[int, Tuple[str, ...], np.ndarray, bytes]] = []
        for key, (count, member_chunks) in sig_acc.items():
            if n_props:
                support_row = np.unpackbits(np.frombuffer(key, dtype=np.uint8))[
                    :n_props
                ].astype(bool)
            else:
                support_row = np.zeros(0, dtype=bool)
            on = np.flatnonzero(support_row)
            sig_key = tuple(sorted(property_strings[j] for j in on))
            members = (
                np.concatenate(member_chunks)
                if member_chunks
                else np.empty(0, dtype=np.int32)
            )
            ordered_sigs.append((count, sig_key, members, key))
        # The SignatureTable order: largest sets first, ties by property names.
        ordered_sigs.sort(key=lambda e: (-e[0], e[1]))
        n_sigs = len(ordered_sigs)
        support = np.zeros((n_sigs, n_props), dtype=bool)
        for i, (_count, _key, _members, packed_key) in enumerate(ordered_sigs):
            if n_props:
                support[i] = np.unpackbits(np.frombuffer(packed_key, dtype=np.uint8))[
                    :n_props
                ].astype(bool)
        writer.add_array("table_support", support)
        writer.add_array(
            "table_counts",
            np.fromiter((c for c, _k, _m, _p in ordered_sigs), dtype=np.int64, count=n_sigs),
        )
        writer.add_array("table_property_ids", property_ids)
        writer.add_array(
            "table_member_ids",
            np.concatenate([m for _c, _k, m, _p in ordered_sigs])
            if ordered_sigs
            else np.empty(0, dtype=np.int32),
        )
        writer.add_array("matrix_subject_ids", subject_ids_sorted)
        writer.add_array("matrix_property_ids", property_ids)

        graph_mm = writer.create_segment("graph_triples", (n_triples, 3), np.int32)
        with open(triples_path, "rb") as triples_in:
            offset = 0
            pending = b""
            while True:
                buf = triples_in.read(12 * _COPY_ROWS)
                if not buf:
                    break
                data = pending + buf
                usable = len(data) - (len(data) % 12)
                rows = np.frombuffer(data[:usable], dtype=np.int32).reshape(-1, 3)
                graph_mm[offset : offset + len(rows)] = rows
                offset += len(rows)
                pending = data[usable:]
            if pending or offset != n_triples:
                raise SnapshotError(
                    f"out-of-core triple spill is corrupt: wrote {n_triples} rows, "
                    f"recovered {offset}"
                )

        for segment_name, array in _encode_terms(dictionary).items():
            writer.add_array(segment_name, array)

        counts = {
            "triples": n_triples,
            "subjects": n_subjects,
            "properties": n_props,
            "signatures": n_sigs,
            "terms": len(dictionary),
        }
        default_name = str(source_path)
        return writer.finalise(
            name=name or default_name,
            generation=0,
            stages=("graph", "matrix", "table"),
            counts=counts,
            table_has_members=True,
        )
