"""A zero-dependency telemetry spine: counters, spans and latency histograms.

Every hot path in the library — graph → matrix → table builds,
``apply_delta`` patches, encoder assembly, solver calls, parallel
executor dispatch, pool worker round-trips and snapshot save/load — is
instrumented against this module.  The design contract is *opt-in and
free when off*:

* :func:`current` returns the process-wide :class:`Telemetry` instance
  when tracing is enabled (the ``REPRO_TRACE`` environment variable is
  set to a truthy value, or :func:`enable` was called) and a shared
  no-op :data:`NULL_TELEMETRY` otherwise.  The no-op's ``incr`` /
  ``observe`` / ``span`` bodies do nothing and allocate nothing, so a
  disabled spine adds no measurable overhead to the instrumented paths
  (the acceptance criterion the benchmarks rely on).
* A :class:`Telemetry` instance can also be passed explicitly — e.g.
  ``Dataset(telemetry=...)`` scopes the dataset-chain spans to one
  handle, and the HTTP service keeps an always-on instance for its
  access-log counters regardless of ``REPRO_TRACE``.

Everything is stdlib: a lock per instance makes counters and histogram
updates thread-safe (pool *worker processes* keep their own per-process
instances — cross-process aggregation is out of scope).  Snapshots are
plain dicts with sorted, stable keys so ``GET /v1/metrics`` can serve
them deterministically.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, List, Optional

__all__ = [
    "REPRO_TRACE_ENV",
    "Telemetry",
    "NULL_TELEMETRY",
    "current",
    "enable",
    "disable",
]

#: Environment variable that switches the process-wide spine on.
REPRO_TRACE_ENV = "REPRO_TRACE"

#: Histogram bucket upper bounds, in milliseconds (the last bucket is
#: open-ended).  A fixed log-ish scale keeps snapshots comparable across
#: runs and machines; the labels are zero-padded so sorted keys render
#: in bucket order.
_BUCKET_BOUNDS_MS = (1.0, 5.0, 25.0, 100.0, 500.0, 2500.0)


def _bucket_labels() -> List[str]:
    labels = [f"le_{int(bound):06d}ms" for bound in _BUCKET_BOUNDS_MS]
    labels.append("le_inf")
    return labels


class _SpanTimer:
    """Context manager recording one wall-time span into its telemetry."""

    __slots__ = ("_telemetry", "_name", "_started")

    def __init__(self, telemetry: "Telemetry", name: str):
        self._telemetry = telemetry
        self._name = name
        self._started = 0.0

    def __enter__(self) -> "_SpanTimer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        self._telemetry.observe(self._name, time.perf_counter() - self._started)


class _NullSpan:
    """The reusable do-nothing span handed out by a disabled telemetry."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class Telemetry:
    """Thread-safe counters, span timers and fixed-bucket latency histograms.

    Parameters
    ----------
    enabled:
        When false, every recording method is a no-op and
        :meth:`snapshot` reports an empty, disabled spine.  The shared
        :data:`NULL_TELEMETRY` is the canonical disabled instance; build
        enabled ones for scoped collection (a service, one dataset).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        # name -> [count, total_s, min_s, max_s, bucket counts...]
        self._spans: Dict[str, list] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (created at 0 on first use)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration under span ``name`` (count/total/min/max + histogram)."""
        if not self.enabled:
            return
        ms = seconds * 1000.0
        with self._lock:
            entry = self._spans.get(name)
            if entry is None:
                entry = self._spans[name] = [0, 0.0, float("inf"), 0.0] + [0] * (
                    len(_BUCKET_BOUNDS_MS) + 1
                )
            entry[0] += 1
            entry[1] += seconds
            entry[2] = min(entry[2], seconds)
            entry[3] = max(entry[3], seconds)
            for index, bound in enumerate(_BUCKET_BOUNDS_MS):
                if ms <= bound:
                    entry[4 + index] += 1
                    break
            else:
                entry[4 + len(_BUCKET_BOUNDS_MS)] += 1

    def span(self, name: str):
        """A context manager timing its block into the span ``name``.

        Disabled instances return one shared no-op object, so wrapping a
        hot path in ``with telemetry.span(...)`` costs a method call and
        nothing else when tracing is off.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanTimer(self, name)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def counters(self) -> Dict[str, int]:
        """A point-in-time copy of every counter."""
        with self._lock:
            return dict(self._counters)

    def snapshot(self) -> Dict[str, object]:
        """A deterministic, JSON-ready view of the whole spine.

        Keys are stable and sorted; span durations are reported in
        milliseconds rounded to 3 decimals (wall-clock values naturally
        vary run to run — the *schema* is what stays deterministic).
        """
        labels = _bucket_labels()
        with self._lock:
            spans = {}
            for name in sorted(self._spans):
                count, total, lo, hi = self._spans[name][:4]
                buckets = self._spans[name][4:]
                spans[name] = {
                    "count": count,
                    "total_ms": round(total * 1000.0, 3),
                    "min_ms": round(lo * 1000.0, 3) if count else 0.0,
                    "max_ms": round(hi * 1000.0, 3),
                    "buckets": dict(zip(labels, buckets)),
                }
            return {
                "enabled": self.enabled,
                "counters": {k: self._counters[k] for k in sorted(self._counters)},
                "spans": spans,
            }

    def reset(self) -> None:
        """Drop every counter and span (the instance stays enabled)."""
        with self._lock:
            self._counters.clear()
            self._spans.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "enabled" if self.enabled else "disabled"
        return f"<Telemetry {state}: {len(self._counters)} counters, {len(self._spans)} spans>"


class _NullTelemetry(Telemetry):
    """The shared disabled spine: every recording method is a no-op."""

    def __init__(self):
        super().__init__(enabled=False)

    def incr(self, name: str, n: int = 1) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def span(self, name: str):
        return _NULL_SPAN


#: The canonical disabled instance returned by :func:`current` when
#: tracing is off.  Shared and immutable-by-convention: never enable it.
NULL_TELEMETRY = _NullTelemetry()

_lock = threading.Lock()
_active: Optional[Telemetry] = None


def _env_enabled() -> bool:
    raw = os.environ.get(REPRO_TRACE_ENV, "").strip().lower()
    return raw not in ("", "0", "false", "no", "off")


def current() -> Telemetry:
    """The process-wide spine: enabled per ``REPRO_TRACE``, else the no-op.

    Until :func:`enable` or :func:`disable` pins an explicit choice the
    environment variable is re-read on every call, so tests (and
    long-lived processes) can flip ``REPRO_TRACE`` without re-importing.
    An explicit :func:`disable` wins over the environment until the next
    :func:`enable`.
    """
    global _active
    active = _active
    if active is not None:
        return active
    if _env_enabled():
        with _lock:
            if _active is None:
                _active = Telemetry(enabled=True)
            return _active
    return NULL_TELEMETRY


def enable(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Switch the process-wide spine on (optionally to a given instance)."""
    global _active
    with _lock:
        _active = telemetry if telemetry is not None else Telemetry(enabled=True)
        return _active


def disable() -> None:
    """Switch the process-wide spine off, overriding ``REPRO_TRACE``."""
    global _active
    with _lock:
        _active = NULL_TELEMETRY
