"""Term interning: a shared dense integer ID space for RDF terms.

Every hot path of the library — triple indexing, the property-structure
view, signature construction — ultimately only needs to know whether two
terms are *the same term*.  Carrying full URI/Literal strings through those
paths wastes memory and time: hashing a URI costs O(len), and NumPy cannot
vectorise over Python strings at all.

:class:`TermDictionary` interns terms into dense ``int32`` IDs (0, 1, 2, …
in first-seen order) and translates back on demand.  The ID space is what
:class:`~repro.rdf.graph.RDFGraph` stores its triples in, and what the
vectorised signature pipeline (``PropertyMatrix.from_graph`` /
``SignatureTable.from_matrix``) consumes as NumPy arrays.  The design
follows the integer-keyed triple indexing used by LMDB-backed stores and
D4M-style associative arrays (see DESIGN.md, "Interned-ID architecture").

URIs and literals live in one ID space: ``URI("x")`` and ``Literal("x")``
compare unequal (and hash apart), so they intern to different IDs.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.exceptions import RDFError
from repro.rdf.terms import Term

__all__ = ["TermDictionary", "NO_ID"]

#: Sentinel returned by :meth:`TermDictionary.id_of` for unknown terms.
NO_ID: int = -1


class TermDictionary:
    """A bidirectional mapping term ↔ dense ``int32`` ID.

    IDs are assigned in first-intern order and never change or get
    recycled, so an ID remains valid for the lifetime of the dictionary
    and any array of IDs stays decodable.  The dictionary deliberately has
    no ``remove``: graphs that drop triples keep their terms interned (the
    cost is a few bytes per stale term, the benefit is that shared
    dictionaries never invalidate each other's IDs).
    """

    __slots__ = ("_term_to_id", "_terms")

    def __init__(self, terms: Optional[Iterable[Term]] = None):
        self._term_to_id: Dict[Term, int] = {}
        self._terms: List[Term] = []
        if terms is not None:
            for term in terms:
                self.intern(term)

    # ------------------------------------------------------------------ #
    # Interning
    # ------------------------------------------------------------------ #
    def intern(self, term: Term) -> int:
        """Return the ID of ``term``, assigning a fresh one if needed."""
        existing = self._term_to_id.get(term)
        if existing is not None:
            return existing
        new_id = len(self._terms)
        if new_id >= np.iinfo(np.int32).max:
            raise RDFError("term dictionary exceeded the int32 ID space")
        self._term_to_id[term] = new_id
        self._terms.append(term)
        return new_id

    def intern_many(self, terms: Iterable[Term]) -> np.ndarray:
        """Intern every term; return their IDs as an ``int32`` array."""
        intern = self.intern
        return np.fromiter((intern(t) for t in terms), dtype=np.int32)

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def id_of(self, term: Term) -> int:
        """Return the ID of ``term``, or :data:`NO_ID` when not interned."""
        return self._term_to_id.get(term, NO_ID)

    def term_of(self, term_id: int) -> Term:
        """Return the term with ID ``term_id`` (raises ``RDFError`` if unknown)."""
        if 0 <= term_id < len(self._terms):
            return self._terms[term_id]
        raise RDFError(f"unknown term ID {term_id!r}")

    def decode_many(self, ids: Iterable[int]) -> List[Term]:
        """Translate an iterable/array of IDs back to terms.

        Raises :class:`RDFError` for any ID outside ``[0, len)`` —
        including negative IDs such as :data:`NO_ID`, which Python list
        indexing would otherwise silently resolve from the *end* of the
        term list (the dangling-ID bug class: ``id_of`` on an unknown term
        returns ``-1``, and decoding it must fail loudly, not hand back
        the most recently interned term).
        """
        terms = self._terms
        if isinstance(ids, np.ndarray):
            # Vectorised guard for the common array input: one min() scan
            # instead of a per-element Python check.
            if ids.size and int(ids.min()) < 0:
                bad = sorted(int(i) for i in set(ids[ids < 0].tolist()))
                raise RDFError(f"unknown term IDs {bad[:5]!r}")
        else:
            ids = list(ids)
            if any(int(i) < 0 for i in ids):
                bad = [int(i) for i in ids if int(i) < 0]
                raise RDFError(f"unknown term IDs {bad[:5]!r}")
        try:
            return [terms[i] for i in ids]
        except IndexError:
            bad = [int(i) for i in ids if not 0 <= int(i) < len(terms)]
            raise RDFError(f"unknown term IDs {bad[:5]!r}") from None

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: object) -> bool:
        return term in self._term_to_id

    def __iter__(self) -> Iterator[Term]:
        return iter(self._terms)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TermDictionary: {len(self._terms)} terms>"
