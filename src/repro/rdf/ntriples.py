"""A small N-Triples reader and writer.

The reproduction does not depend on external RDF tooling, so this module
implements the subset of the N-Triples grammar that the synthetic datasets
and examples need:

* ``<uri> <uri> <uri> .``
* ``<uri> <uri> "literal" .``  (with ``\\"``, ``\\n``, ``\\t``, ``\\\\`` escapes)
* comment lines starting with ``#`` and blank lines.

Blank nodes and typed/language-tagged literals are intentionally out of
scope — the paper's data model is ``U × U × (U ∪ L)``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, TextIO, Union

from repro.exceptions import ParseError
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, Triple, URI

__all__ = [
    "parse_ntriples",
    "iter_ntriples",
    "load_ntriples",
    "dumps_ntriples",
    "dump_ntriples",
    "unescape_literal",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}


def unescape_literal(text: str) -> str:
    """Undo the escapes of a literal's lexical form (no surrounding quotes).

    The single authority for decoding ``\\n``/``\\"``-style escapes — the
    wire codec and any other consumer share this table with the N-Triples
    parser, so the same spelling can never decode differently on two
    paths.  Raises :class:`ValueError` on an unsupported escape or a
    dangling backslash, mirroring the parser's strictness.
    """
    if "\\" not in text:
        return text
    chars: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text) or text[index + 1] not in _ESCAPES:
                raise ValueError(f"unsupported escape in literal {text!r}")
            chars.append(_ESCAPES[text[index + 1]])
            index += 2
        else:
            chars.append(char)
            index += 1
    return "".join(chars)


def _parse_uri(text: str, position: int, line_number: int) -> tuple[URI, int]:
    if position >= len(text) or text[position] != "<":
        raise ParseError("expected '<' to start a URI", line=line_number, column=position + 1)
    end = text.find(">", position + 1)
    if end == -1:
        raise ParseError("unterminated URI (missing '>')", line=line_number, column=position + 1)
    value = text[position + 1 : end]
    if not value:
        raise ParseError("empty URI", line=line_number, column=position + 1)
    return URI(value), end + 1


def _parse_literal(text: str, position: int, line_number: int) -> tuple[Literal, int]:
    if position >= len(text) or text[position] != '"':
        raise ParseError("expected '\"' to start a literal", line=line_number, column=position + 1)
    chars: list[str] = []
    index = position + 1
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text):
                raise ParseError("dangling escape in literal", line=line_number, column=index + 1)
            escape = text[index + 1]
            if escape not in _ESCAPES:
                raise ParseError(
                    f"unsupported escape '\\{escape}' in literal",
                    line=line_number,
                    column=index + 1,
                )
            chars.append(_ESCAPES[escape])
            index += 2
            continue
        if char == '"':
            index += 1
            # Skip an optional datatype/lang suffix (^^<...> or @lang): we
            # accept it but discard it, keeping only the lexical form.
            if text.startswith("^^<", index):
                closing = text.find(">", index + 3)
                if closing == -1:
                    raise ParseError(
                        "unterminated datatype URI after literal",
                        line=line_number,
                        column=index + 1,
                    )
                index = closing + 1
            elif index < len(text) and text[index] == "@":
                while index < len(text) and text[index] not in " \t.":
                    index += 1
            return Literal("".join(chars)), index
        chars.append(char)
        index += 1
    raise ParseError("unterminated literal", line=line_number, column=position + 1)


def _skip_whitespace(text: str, position: int) -> int:
    while position < len(text) and text[position] in " \t":
        position += 1
    return position


def _parse_line(line: str, line_number: int) -> Triple | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    position = _skip_whitespace(line, 0)
    subject, position = _parse_uri(line, position, line_number)
    position = _skip_whitespace(line, position)
    predicate, position = _parse_uri(line, position, line_number)
    position = _skip_whitespace(line, position)
    if position < len(line) and line[position] == '"':
        obj, position = _parse_literal(line, position, line_number)
    else:
        obj, position = _parse_uri(line, position, line_number)
    position = _skip_whitespace(line, position)
    if position >= len(line) or line[position] != ".":
        raise ParseError("expected terminating '.'", line=line_number, column=position + 1)
    trailing = line[position + 1 :].strip()
    if trailing and not trailing.startswith("#"):
        raise ParseError(
            f"unexpected content after '.': {trailing!r}", line=line_number, column=position + 2
        )
    return Triple(subject, predicate, obj)


def iter_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from N-Triples text or a readable text stream."""
    stream: TextIO
    if isinstance(source, str):
        stream = io.StringIO(source)
    else:
        stream = source
    for line_number, line in enumerate(stream, start=1):
        triple = _parse_line(line, line_number)
        if triple is not None:
            yield triple


def parse_ntriples(text: str, name: str = "") -> RDFGraph:
    """Parse N-Triples ``text`` into a fresh :class:`RDFGraph`."""
    return RDFGraph(iter_ntriples(text), name=name)


def load_ntriples(path: Union[str, Path], name: str = "") -> RDFGraph:
    """Load an N-Triples file from ``path`` into a fresh :class:`RDFGraph`."""
    path = Path(path)
    graph = RDFGraph(name=name or path.stem)
    with path.open("r", encoding="utf-8") as handle:
        graph.update(iter_ntriples(handle))
    return graph


def dumps_ntriples(triples: Iterable[Triple], sort: bool = True) -> str:
    """Serialise ``triples`` to N-Triples text.

    When ``sort`` is true (the default) the output lines are sorted, which
    makes serialisation deterministic and diff-friendly.
    """
    lines = [triple.n3() for triple in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def dump_ntriples(triples: Iterable[Triple], path: Union[str, Path], sort: bool = True) -> int:
    """Write ``triples`` to ``path`` in N-Triples format; return the line count."""
    text = dumps_ntriples(triples, sort=sort)
    Path(path).write_text(text, encoding="utf-8")
    return text.count("\n")
