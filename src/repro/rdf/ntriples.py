"""A small N-Triples reader and writer.

The reproduction does not depend on external RDF tooling, so this module
implements the subset of the N-Triples grammar that the synthetic datasets
and examples need:

* ``<uri> <uri> <uri> .``
* ``<uri> <uri> "literal" .``  (with ``\\"``, ``\\n``, ``\\t``, ``\\\\`` escapes)
* comment lines starting with ``#`` and blank lines.

Blank nodes and typed/language-tagged literals are intentionally out of
scope — the paper's data model is ``U × U × (U ∪ L)``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, TextIO, Union

from repro.exceptions import ParseError
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import Literal, Triple, URI

__all__ = [
    "parse_ntriples",
    "iter_ntriples",
    "iter_ntriples_buffered",
    "iter_ntriples_chunks",
    "load_ntriples",
    "dumps_ntriples",
    "dump_ntriples",
    "unescape_literal",
    "DEFAULT_BUFFER_BYTES",
]

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "\\": "\\"}

#: A UTF-8 byte-order mark decodes to this; a leading one is tolerated and
#: stripped (editors on some platforms prepend it silently).
_BOM = "\ufeff"

#: Default read size of the buffered line reader: large enough that syscall
#: overhead is negligible, small enough to stay cache-resident.
DEFAULT_BUFFER_BYTES = 1 << 16


def unescape_literal(text: str) -> str:
    """Undo the escapes of a literal's lexical form (no surrounding quotes).

    The single authority for decoding ``\\n``/``\\"``-style escapes — the
    wire codec and any other consumer share this table with the N-Triples
    parser, so the same spelling can never decode differently on two
    paths.  Raises :class:`ValueError` on an unsupported escape or a
    dangling backslash, mirroring the parser's strictness.
    """
    if "\\" not in text:
        return text
    chars: list[str] = []
    index = 0
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text) or text[index + 1] not in _ESCAPES:
                raise ValueError(f"unsupported escape in literal {text!r}")
            chars.append(_ESCAPES[text[index + 1]])
            index += 2
        else:
            chars.append(char)
            index += 1
    return "".join(chars)


def _parse_uri(text: str, position: int, line_number: int) -> tuple[URI, int]:
    if position >= len(text) or text[position] != "<":
        raise ParseError("expected '<' to start a URI", line=line_number, column=position + 1)
    end = text.find(">", position + 1)
    if end == -1:
        raise ParseError("unterminated URI (missing '>')", line=line_number, column=position + 1)
    value = text[position + 1 : end]
    if not value:
        raise ParseError("empty URI", line=line_number, column=position + 1)
    return URI(value), end + 1


def _parse_literal(text: str, position: int, line_number: int) -> tuple[Literal, int]:
    if position >= len(text) or text[position] != '"':
        raise ParseError("expected '\"' to start a literal", line=line_number, column=position + 1)
    chars: list[str] = []
    index = position + 1
    while index < len(text):
        char = text[index]
        if char == "\\":
            if index + 1 >= len(text):
                raise ParseError("dangling escape in literal", line=line_number, column=index + 1)
            escape = text[index + 1]
            if escape not in _ESCAPES:
                raise ParseError(
                    f"unsupported escape '\\{escape}' in literal",
                    line=line_number,
                    column=index + 1,
                )
            chars.append(_ESCAPES[escape])
            index += 2
            continue
        if char == '"':
            index += 1
            # Skip an optional datatype/lang suffix (^^<...> or @lang): we
            # accept it but discard it, keeping only the lexical form.
            if text.startswith("^^<", index):
                closing = text.find(">", index + 3)
                if closing == -1:
                    raise ParseError(
                        "unterminated datatype URI after literal",
                        line=line_number,
                        column=index + 1,
                    )
                index = closing + 1
            elif index < len(text) and text[index] == "@":
                while index < len(text) and text[index] not in " \t.":
                    index += 1
            return Literal("".join(chars)), index
        chars.append(char)
        index += 1
    raise ParseError("unterminated literal", line=line_number, column=position + 1)


def _skip_whitespace(text: str, position: int) -> int:
    while position < len(text) and text[position] in " \t":
        position += 1
    return position


def _parse_line(line: str, line_number: int) -> Triple | None:
    stripped = line.strip()
    if not stripped or stripped.startswith("#"):
        return None
    position = _skip_whitespace(line, 0)
    subject, position = _parse_uri(line, position, line_number)
    position = _skip_whitespace(line, position)
    predicate, position = _parse_uri(line, position, line_number)
    position = _skip_whitespace(line, position)
    if position < len(line) and line[position] == '"':
        obj, position = _parse_literal(line, position, line_number)
    else:
        obj, position = _parse_uri(line, position, line_number)
    position = _skip_whitespace(line, position)
    if position >= len(line) or line[position] != ".":
        raise ParseError("expected terminating '.'", line=line_number, column=position + 1)
    trailing = line[position + 1 :].strip()
    if trailing and not trailing.startswith("#"):
        raise ParseError(
            f"unexpected content after '.': {trailing!r}", line=line_number, column=position + 2
        )
    return Triple(subject, predicate, obj)


def iter_ntriples(source: Union[str, TextIO]) -> Iterator[Triple]:
    """Yield triples from N-Triples text or a readable text stream.

    A UTF-8 byte-order mark at the very start of the input is stripped
    (files saved by BOM-writing editors parse like any other file), and
    string input gets universal-newline treatment (``\\r\\n`` and lone
    ``\\r`` terminate lines) so text and file sources parse identically.
    """
    stream: TextIO
    if isinstance(source, str):
        stream = io.StringIO(source, newline=None)
    else:
        stream = source
    for line_number, line in enumerate(stream, start=1):
        if line_number == 1 and line.startswith(_BOM):
            line = line[len(_BOM):]
        triple = _parse_line(line, line_number)
        if triple is not None:
            yield triple


def _iter_lines_buffered(stream: BinaryIO, buffer_bytes: int) -> Iterator[bytes]:
    """Yield raw lines from a binary stream, reading fixed-size buffers.

    Never holds more than one buffer plus one partial line in memory.
    All three newline conventions (``\\n``, ``\\r\\n``, lone ``\\r``) are
    line terminators, matching Python's universal-newline text mode, and a
    final line without a trailing newline is still yielded.  Splitting on
    the ASCII newline bytes is UTF-8 safe: continuation bytes are >= 0x80,
    so a multi-byte character is never cut even when a buffer boundary
    lands inside it (the partial line carries it into the next round).
    """
    pending = b""
    carry_cr = False  # last buffer ended with \r, already counted as a newline
    while True:
        chunk = stream.read(buffer_bytes)
        if not chunk:
            break
        if carry_cr and chunk.startswith(b"\n"):
            chunk = chunk[1:]
        carry_cr = chunk.endswith(b"\r")
        data = (pending + chunk).replace(b"\r\n", b"\n").replace(b"\r", b"\n")
        lines = data.split(b"\n")
        pending = lines.pop()
        yield from lines
    if pending:
        yield pending


def iter_ntriples_buffered(
    source: Union[str, Path, BinaryIO], *, buffer_bytes: int = DEFAULT_BUFFER_BYTES
) -> Iterator[Triple]:
    """Yield triples from a file path or binary stream in bounded memory.

    The streaming counterpart of :func:`iter_ntriples`: the input is read
    in ``buffer_bytes``-sized buffers and at no point does more than one
    buffer (plus one partial line) live in memory, so arbitrarily large
    files parse in O(buffer) space.  Parses the same grammar, raises the
    same :class:`~repro.exceptions.ParseError` with the same line/column
    coordinates, and tolerates the same leading byte-order mark — the
    out-of-core differential suite proves the two paths triple-identical.
    """
    if buffer_bytes < 1:
        raise ParseError(f"buffer_bytes must be >= 1, got {buffer_bytes}")

    def _lines(stream: BinaryIO) -> Iterator[Triple]:
        for line_number, raw in enumerate(_iter_lines_buffered(stream, buffer_bytes), start=1):
            try:
                line = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise ParseError(
                    f"undecodable UTF-8 bytes: {error}", line=line_number, column=1
                ) from None
            if line_number == 1 and line.startswith(_BOM):
                line = line[len(_BOM):]
            triple = _parse_line(line, line_number)
            if triple is not None:
                yield triple

    if isinstance(source, (str, Path)):
        with open(source, "rb") as handle:
            yield from _lines(handle)
    else:
        yield from _lines(source)


def iter_ntriples_chunks(
    source: Union[str, Path, BinaryIO],
    chunk_triples: int,
    *,
    buffer_bytes: int = DEFAULT_BUFFER_BYTES,
) -> Iterator[List[Triple]]:
    """Yield lists of at most ``chunk_triples`` triples from a file or stream.

    The unit of work of the out-of-core build pipeline: each yielded chunk
    is an independent batch the caller can intern, sort and spill before
    the next one is even read — the iterator never holds more than one
    chunk of parsed triples (plus one read buffer) in memory.
    """
    if chunk_triples < 1:
        raise ParseError(f"chunk_triples must be >= 1, got {chunk_triples}")
    batch: List[Triple] = []
    for triple in iter_ntriples_buffered(source, buffer_bytes=buffer_bytes):
        batch.append(triple)
        if len(batch) >= chunk_triples:
            yield batch
            batch = []
    if batch:
        yield batch


def parse_ntriples(text: str, name: str = "") -> RDFGraph:
    """Parse N-Triples ``text`` into a fresh :class:`RDFGraph`."""
    return RDFGraph(iter_ntriples(text), name=name)


def load_ntriples(path: Union[str, Path], name: str = "") -> RDFGraph:
    """Load an N-Triples file from ``path`` into a fresh :class:`RDFGraph`."""
    path = Path(path)
    graph = RDFGraph(name=name or path.stem)
    graph.update(iter_ntriples_buffered(path))
    return graph


def dumps_ntriples(triples: Iterable[Triple], sort: bool = True) -> str:
    """Serialise ``triples`` to N-Triples text.

    When ``sort`` is true (the default) the output lines are sorted, which
    makes serialisation deterministic and diff-friendly.
    """
    lines = [triple.n3() for triple in triples]
    if sort:
        lines.sort()
    return "\n".join(lines) + ("\n" if lines else "")


def dump_ntriples(triples: Iterable[Triple], path: Union[str, Path], sort: bool = True) -> int:
    """Write ``triples`` to ``path`` in N-Triples format; return the line count."""
    text = dumps_ntriples(triples, sort=sort)
    Path(path).write_text(text, encoding="utf-8")
    return text.count("\n")
