"""RDF terms: URIs, literals, and triples.

The paper models an RDF graph as a finite set of triples
``(s, p, o) ∈ U × U × (U ∪ L)`` where ``U`` is a set of URIs and ``L`` a set
of literals.  This module provides small immutable value types for those
three building blocks.  They are deliberately lightweight (plain ``str``
subclasses for terms) so that very large graphs remain cheap to hold in
memory and hashing/equality is as fast as native string operations.
"""

from __future__ import annotations

from typing import NamedTuple, Union

from repro.exceptions import RDFError

__all__ = ["URI", "Literal", "Term", "Triple", "coerce_uri", "coerce_object"]


class URI(str):
    """A URI reference (an element of the set ``U`` in the paper).

    ``URI`` is a ``str`` subclass: it behaves exactly like the underlying
    string but carries its RDF role in the type.  Two URIs are equal iff
    their string forms are equal.
    """

    __slots__ = ()

    def __new__(cls, value: str) -> "URI":
        if not isinstance(value, str):
            raise RDFError(f"URI value must be a string, got {type(value).__name__}")
        if not value:
            raise RDFError("URI value must be a non-empty string")
        return super().__new__(cls, value)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"URI({str.__repr__(self)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Literal):
            return False
        return str.__eq__(self, other)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    __hash__ = str.__hash__

    def n3(self) -> str:
        """Return the N-Triples serialisation ``<uri>``."""
        return f"<{str(self)}>"

    @property
    def local_name(self) -> str:
        """The fragment after the last ``#`` or ``/`` (useful for display)."""
        text = str(self)
        for sep in ("#", "/"):
            if sep in text:
                tail = text.rsplit(sep, 1)[1]
                if tail:
                    return tail
        return text


class Literal(str):
    """An RDF literal (an element of ``L``).

    Only the lexical form is retained; datatypes and language tags are not
    needed anywhere in the paper (the property-structure view only records
    whether a subject *has* a property), but a literal still compares
    unequal to a :class:`URI` with the same characters.
    """

    __slots__ = ()

    def __new__(cls, value: object) -> "Literal":
        return super().__new__(cls, str(value))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Literal({str.__repr__(self)})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, URI):
            return False
        if isinstance(other, Literal):
            return str.__eq__(self, other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        # Salt the hash so that Literal("x") and URI("x") rarely collide in
        # sets; correctness does not depend on this, only bucket spread.
        return hash(("literal", str(self)))

    def n3(self) -> str:
        """Return the N-Triples serialisation ``"literal"`` (escaped)."""
        escaped = (
            str(self)
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\r", "\\r")
            .replace("\t", "\\t")
        )
        return f'"{escaped}"'


Term = Union[URI, Literal]


class Triple(NamedTuple):
    """An RDF triple ``(subject, predicate, object)``.

    The subject and predicate must be URIs; the object may be a URI or a
    literal, exactly as in the paper's preliminaries (Section 2.1).
    """

    subject: URI
    predicate: URI
    object: Term

    def n3(self) -> str:
        """Return the N-Triples serialisation terminated by `` .``."""
        return f"{self.subject.n3()} {self.predicate.n3()} {self.object.n3()} ."

    @classmethod
    def create(cls, subject: object, predicate: object, obj: object) -> "Triple":
        """Build a triple, coercing plain strings into URIs/literals.

        Strings passed as subject or predicate become :class:`URI`;
        the object becomes a :class:`URI` when it looks like a URI that is
        already a ``URI`` instance, otherwise plain strings are treated as
        URIs too (the common case in this library) unless they are already
        :class:`Literal` instances.
        """
        return cls(coerce_uri(subject), coerce_uri(predicate), coerce_object(obj))


def coerce_uri(value: object) -> URI:
    """Coerce ``value`` to a :class:`URI`, raising :class:`RDFError` otherwise."""
    if isinstance(value, URI):
        return value
    if isinstance(value, Literal):
        raise RDFError(f"expected a URI, got the literal {value!r}")
    if isinstance(value, str):
        return URI(value)
    raise RDFError(f"cannot coerce {type(value).__name__} to URI")


def coerce_object(value: object) -> Term:
    """Coerce ``value`` to a triple object (URI or Literal).

    Existing :class:`URI`/:class:`Literal` instances pass through unchanged;
    plain strings become URIs (objects in this library are almost always
    resource identifiers); any other Python value becomes a literal with its
    ``str()`` form.
    """
    if isinstance(value, (URI, Literal)):
        return value
    if isinstance(value, str):
        return URI(value)
    return Literal(value)
