"""Well-known RDF namespaces and the vocabulary used by the paper.

The only constant the formal development relies on is ``rdf:type``
(written simply ``type`` in the paper), but the experiments also mention
FOAF (``foaf:Person`` for DBpedia Persons), the WordNet schema, DBpedia
ontology properties, and the RDF-syntax properties that the modified Cov
rule of Section 7.4 ignores (``type``, ``sameAs``, ``subClassOf``,
``label``).
"""

from __future__ import annotations

from repro.rdf.terms import URI

__all__ = [
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "FOAF",
    "DBPEDIA",
    "WORDNET",
    "YAGO",
    "EX",
    "RDF_SYNTAX_PROPERTIES",
]


class Namespace:
    """A URI prefix that mints member URIs via attribute or item access.

    >>> ns = Namespace("http://example.org/")
    >>> ns.name
    URI('http://example.org/name')
    >>> ns["first name"]
    URI('http://example.org/first name')
    """

    def __init__(self, prefix: str):
        self._prefix = str(prefix)

    @property
    def prefix(self) -> str:
        """The namespace prefix string."""
        return self._prefix

    def term(self, name: str) -> URI:
        """Return the URI obtained by appending ``name`` to the prefix."""
        return URI(self._prefix + name)

    def __getattr__(self, name: str) -> URI:
        if name.startswith("_"):
            raise AttributeError(name)
        return self.term(name)

    def __getitem__(self, name: str) -> URI:
        return self.term(name)

    def __contains__(self, uri: object) -> bool:
        return isinstance(uri, str) and str(uri).startswith(self._prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Namespace({self._prefix!r})"


RDF = Namespace("http://www.w3.org/1999/02/22-rdf-syntax-ns#")
RDFS = Namespace("http://www.w3.org/2000/01/rdf-schema#")
OWL = Namespace("http://www.w3.org/2002/07/owl#")
FOAF = Namespace("http://xmlns.com/foaf/0.1/")
DBPEDIA = Namespace("http://dbpedia.org/ontology/")
WORDNET = Namespace("http://www.w3.org/2006/03/wn/wn20/schema/")
YAGO = Namespace("http://yago-knowledge.org/resource/")
EX = Namespace("http://example.org/")

#: Properties "defined in the syntax of RDF" that the modified Cov rule of
#: Section 7.4 excludes from the structuredness computation.
RDF_SYNTAX_PROPERTIES: tuple[URI, ...] = (
    RDF.type,
    OWL.sameAs,
    RDFS.subClassOf,
    RDFS.label,
)
