"""RDF substrate: terms, graphs, N-Triples I/O and sort extraction."""

from repro.rdf.graph import GraphDelta, RDFGraph
from repro.rdf.namespaces import (
    DBPEDIA,
    EX,
    FOAF,
    Namespace,
    OWL,
    RDF,
    RDFS,
    RDF_SYNTAX_PROPERTIES,
    WORDNET,
    YAGO,
)
from repro.rdf.ntriples import (
    dump_ntriples,
    dumps_ntriples,
    iter_ntriples,
    load_ntriples,
    parse_ntriples,
)
from repro.rdf.sorts import Sort, extract_all_sorts, extract_sort, untyped_subjects
from repro.rdf.terms import Literal, Term, Triple, URI

__all__ = [
    "RDFGraph",
    "GraphDelta",
    "Namespace",
    "RDF",
    "RDFS",
    "OWL",
    "FOAF",
    "DBPEDIA",
    "WORDNET",
    "YAGO",
    "EX",
    "RDF_SYNTAX_PROPERTIES",
    "URI",
    "Literal",
    "Term",
    "Triple",
    "parse_ntriples",
    "iter_ntriples",
    "load_ntriples",
    "dumps_ntriples",
    "dump_ntriples",
    "Sort",
    "extract_sort",
    "extract_all_sorts",
    "untyped_subjects",
]
