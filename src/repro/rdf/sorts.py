"""Sort (type) extraction helpers.

In the paper, a *sort* ``t`` names three related objects interchangeably:
the constant ``t`` itself, the subgraph ``D_t`` of triples whose subject is
declared of sort ``t``, and the subject set ``S(D_t)``.  This module wraps
those three views in a small value object and provides bulk extraction of
every explicit sort in a graph (used by the YAGO-style scalability study).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.rdf.graph import RDFGraph
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Term, URI, coerce_object

__all__ = ["Sort", "extract_sort", "extract_all_sorts", "untyped_subjects", "type_triple_count"]


@dataclass
class Sort:
    """An explicit sort: its URI, its subgraph ``D_t`` and the subject set."""

    uri: Term
    graph: RDFGraph
    subjects: Set[URI] = field(default_factory=set)

    @property
    def size(self) -> int:
        """Number of subjects declared of this sort."""
        return len(self.subjects)

    @property
    def properties(self) -> Set[URI]:
        """Properties used by subjects of this sort (excluding ``rdf:type``)."""
        return self.graph.properties(exclude_type=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Sort {self.uri}: {self.size} subjects, {len(self.properties)} properties>"


def extract_sort(graph: RDFGraph, sort: object, include_type_triples: bool = False) -> Sort:
    """Extract the subgraph ``D_t`` for sort ``t`` from ``graph``.

    Parameters
    ----------
    graph:
        The full RDF graph ``D``.
    sort:
        The sort URI ``t``.
    include_type_triples:
        Whether to keep the ``(s, type, t)`` triples themselves in the
        extracted subgraph.  The paper's statistics ("8 properties,
        excluding the type property") drop them, which is the default.
    """
    t = coerce_object(sort)
    subgraph = graph.sort_subgraph(t)
    if not include_type_triples:
        for triple in list(subgraph.triples(predicate=RDF.type)):
            subgraph.remove(triple)
    return Sort(uri=t, graph=subgraph, subjects=set(graph.sort_subgraph(t).subjects()))


def extract_all_sorts(
    graph: RDFGraph,
    min_subjects: int = 1,
    include_type_triples: bool = False,
    limit: Optional[int] = None,
) -> List[Sort]:
    """Extract every explicit sort of ``graph`` with at least ``min_subjects``.

    Sorts are returned ordered by decreasing subject count, mirroring how
    the paper samples YAGO (most explicit sorts are tiny, so larger ones
    are of particular interest).
    """
    sorts: List[Sort] = []
    for sort_uri in graph.all_sorts():
        extracted = extract_sort(graph, sort_uri, include_type_triples=include_type_triples)
        if extracted.size >= min_subjects:
            sorts.append(extracted)
    sorts.sort(key=lambda s: (-s.size, str(s.uri)))
    if limit is not None:
        sorts = sorts[:limit]
    return sorts


def untyped_subjects(graph: RDFGraph) -> Set[URI]:
    """Return subjects that carry no ``rdf:type`` declaration at all."""
    return {s for s in graph.subjects() if not graph.sorts_of(s)}


def type_triple_count(graph: RDFGraph) -> Dict[Term, int]:
    """Return a mapping sort URI -> number of subjects declared of that sort."""
    counts: Dict[Term, int] = {}
    for sort_uri in graph.all_sorts():
        counts[sort_uri] = sum(
            1 for _ in graph.triples(predicate=RDF.type, obj=sort_uri)
        )
    return counts
