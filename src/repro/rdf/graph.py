"""An indexed, in-memory RDF graph (triple store).

This is the storage substrate on which the whole reproduction sits.  The
graph keeps three hash indexes (SPO, POS, OSP) so that the access patterns
the paper needs are all O(1)/O(result):

* ``S(D)``     — the set of subjects mentioned in ``D``;
* ``P(D)``     — the set of properties mentioned in ``D``;
* ``s has p``  — does subject ``s`` have property ``p`` in ``D``;
* ``D_t``      — the subgraph of all triples whose subject is typed ``t``;
* entity extraction — all triples with a given subject (an *entity* in the
  terminology of Section 4).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Optional, Set

from repro.exceptions import RDFError
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, Term, Triple, URI, coerce_object, coerce_uri

__all__ = ["RDFGraph"]


class RDFGraph:
    """A finite set of RDF triples with subject/predicate/object indexes.

    The class behaves like a set of :class:`~repro.rdf.terms.Triple`
    (supports ``len``, ``in``, iteration, union/difference) and adds the
    schema-oriented accessors used throughout the paper.

    Parameters
    ----------
    triples:
        Optional iterable of triples (or ``(s, p, o)`` tuples of strings)
        to load into the new graph.
    name:
        Optional human-readable name used in ``repr`` and reports.
    """

    __slots__ = ("_spo", "_pos", "_osp", "_size", "name")

    def __init__(self, triples: Optional[Iterable] = None, name: str = ""):
        # subject -> predicate -> set of objects
        self._spo: Dict[URI, Dict[URI, Set[Term]]] = defaultdict(dict)
        # predicate -> subject -> set of objects
        self._pos: Dict[URI, Dict[URI, Set[Term]]] = defaultdict(dict)
        # object -> set of (subject, predicate)
        self._osp: Dict[Term, Set[tuple]] = defaultdict(set)
        self._size = 0
        self.name = name
        if triples is not None:
            self.update(triples)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, subject: object, predicate: object = None, obj: object = None) -> bool:
        """Add a triple; return ``True`` if the graph changed.

        Accepts either a single :class:`Triple`/3-tuple argument or three
        separate term arguments.  Plain strings are coerced to URIs.
        """
        if predicate is None and obj is None:
            if isinstance(subject, Triple):
                s, p, o = subject
            elif isinstance(subject, tuple) and len(subject) == 3:
                s, p, o = subject
            else:
                raise RDFError(
                    "add() needs a Triple, a 3-tuple, or three separate terms"
                )
        else:
            s, p, o = subject, predicate, obj
        s = coerce_uri(s)
        p = coerce_uri(p)
        o = coerce_object(o)

        objects = self._spo[s].setdefault(p, set())
        if o in objects:
            return False
        objects.add(o)
        self._pos[p].setdefault(s, set()).add(o)
        self._osp[o].add((s, p))
        self._size += 1
        return True

    def update(self, triples: Iterable) -> int:
        """Add every triple in ``triples``; return how many were new."""
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, subject: object, predicate: object = None, obj: object = None) -> bool:
        """Remove a triple; return ``True`` if it was present."""
        if predicate is None and obj is None:
            if isinstance(subject, (Triple, tuple)) and len(subject) == 3:
                s, p, o = subject
            else:
                raise RDFError("remove() needs a Triple, a 3-tuple, or three terms")
        else:
            s, p, o = subject, predicate, obj
        s = coerce_uri(s)
        p = coerce_uri(p)
        o = coerce_object(o)
        objects = self._spo.get(s, {}).get(p)
        if objects is None or o not in objects:
            return False
        objects.discard(o)
        if not objects:
            del self._spo[s][p]
            if not self._spo[s]:
                del self._spo[s]
        pos_objects = self._pos[p][s]
        pos_objects.discard(o)
        if not pos_objects:
            del self._pos[p][s]
            if not self._pos[p]:
                del self._pos[p]
        self._osp[o].discard((s, p))
        if not self._osp[o]:
            del self._osp[o]
        self._size -= 1
        return True

    def remove_entity(self, subject: object) -> int:
        """Remove every triple whose subject is ``subject``; return the count."""
        s = coerce_uri(subject)
        removed = 0
        for triple in list(self.triples_for_subject(s)):
            if self.remove(triple):
                removed += 1
        return removed

    def clear(self) -> None:
        """Remove every triple from the graph."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------ #
    # Set-like protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, (Triple, tuple)) or len(triple) != 3:
            return False
        s, p, o = triple
        try:
            s = coerce_uri(s)
            p = coerce_uri(p)
            o = coerce_object(o)
        except RDFError:
            return False
        return o in self._spo.get(s, {}).get(p, ())

    def __iter__(self) -> Iterator[Triple]:
        for s, predicates in self._spo.items():
            for p, objects in predicates.items():
                for o in objects:
                    yield Triple(s, p, o)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFGraph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(triple in other for triple in self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __or__(self, other: "RDFGraph") -> "RDFGraph":
        result = self.copy()
        result.update(other)
        return result

    def __sub__(self, other: "RDFGraph") -> "RDFGraph":
        result = RDFGraph(name=self.name)
        for triple in self:
            if triple not in other:
                result.add(triple)
        return result

    def __and__(self, other: "RDFGraph") -> "RDFGraph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = RDFGraph(name=self.name)
        for triple in small:
            if triple in large:
                result.add(triple)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<RDFGraph{label}: {self._size} triples, {len(self._spo)} subjects>"

    def copy(self, name: Optional[str] = None) -> "RDFGraph":
        """Return a shallow copy of the graph (triples are immutable)."""
        return RDFGraph(self, name=self.name if name is None else name)

    def isdisjoint(self, other: "RDFGraph") -> bool:
        """Return ``True`` when the two graphs share no triple."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return not any(triple in large for triple in small)

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #
    def triples(
        self,
        subject: object = None,
        predicate: object = None,
        obj: object = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern (``None`` is a wildcard)."""
        s = coerce_uri(subject) if subject is not None else None
        p = coerce_uri(predicate) if predicate is not None else None
        o = coerce_object(obj) if obj is not None else None

        if s is not None:
            predicates = self._spo.get(s, {})
            candidates = [p] if p is not None else list(predicates)
            for pred in candidates:
                for value in predicates.get(pred, ()):
                    if o is None or value == o:
                        yield Triple(s, pred, value)
        elif p is not None:
            for subj, objects in self._pos.get(p, {}).items():
                for value in objects:
                    if o is None or value == o:
                        yield Triple(subj, p, value)
        elif o is not None:
            for subj, pred in self._osp.get(o, ()):
                yield Triple(subj, pred, o)
        else:
            yield from iter(self)

    def triples_for_subject(self, subject: object) -> Iterator[Triple]:
        """Yield the *entity* of ``subject``: every triple with that subject."""
        return self.triples(subject=subject)

    def objects(self, subject: object, predicate: object) -> Set[Term]:
        """Return the set of objects for a (subject, predicate) pair."""
        s = coerce_uri(subject)
        p = coerce_uri(predicate)
        return set(self._spo.get(s, {}).get(p, ()))

    def value(self, subject: object, predicate: object) -> Optional[Term]:
        """Return an arbitrary object for (subject, predicate), or ``None``."""
        objects = self.objects(subject, predicate)
        return next(iter(objects)) if objects else None

    # ------------------------------------------------------------------ #
    # Schema-oriented accessors (Section 2.1)
    # ------------------------------------------------------------------ #
    def subjects(self) -> Set[URI]:
        """Return ``S(D)``: the set of subjects mentioned in the graph."""
        return set(self._spo)

    def properties(self, exclude_type: bool = False) -> Set[URI]:
        """Return ``P(D)``: the set of properties mentioned in the graph.

        When ``exclude_type`` is true, ``rdf:type`` is removed, matching the
        paper's convention of reporting property counts "excluding the type
        property".
        """
        props = set(self._pos)
        if exclude_type:
            props.discard(RDF.type)
        return props

    def has_property(self, subject: object, predicate: object) -> bool:
        """Return ``True`` iff ``subject`` has ``predicate`` in the graph."""
        s = coerce_uri(subject)
        p = coerce_uri(predicate)
        return bool(self._spo.get(s, {}).get(p))

    def properties_of(self, subject: object, exclude_type: bool = False) -> Set[URI]:
        """Return the set of properties that ``subject`` has."""
        s = coerce_uri(subject)
        props = set(self._spo.get(s, {}))
        if exclude_type:
            props.discard(RDF.type)
        return props

    def subjects_with_property(self, predicate: object) -> Set[URI]:
        """Return every subject that has ``predicate``."""
        p = coerce_uri(predicate)
        return set(self._pos.get(p, {}))

    def sorts_of(self, subject: object) -> Set[Term]:
        """Return the declared sorts (``rdf:type`` objects) of ``subject``."""
        return self.objects(subject, RDF.type)

    def all_sorts(self) -> Set[Term]:
        """Return every sort ``t`` such that some ``(s, type, t)`` triple exists."""
        sorts: Set[Term] = set()
        for objects in self._pos.get(RDF.type, {}).values():
            sorts.update(objects)
        return sorts

    def sort_subgraph(self, sort: object, name: Optional[str] = None) -> "RDFGraph":
        """Return ``D_t``: all triples whose subject is declared of sort ``sort``.

        This is the subgraph the paper denotes ``D_t = {(s, p, o) ∈ D |
        (s, type, t) ∈ D}``.
        """
        t = coerce_object(sort)
        result = RDFGraph(name=name if name is not None else f"{self.name}[{t}]")
        for subj, objects in self._pos.get(RDF.type, {}).items():
            if t in objects:
                for triple in self.triples_for_subject(subj):
                    result.add(triple)
        return result

    def entity_subgraph(self, subjects: Iterable, name: str = "") -> "RDFGraph":
        """Return the subgraph of all triples whose subject is in ``subjects``."""
        result = RDFGraph(name=name)
        for subject in subjects:
            for triple in self.triples_for_subject(subject):
                result.add(triple)
        return result

    def describe(self) -> Dict[str, int]:
        """Return summary statistics (triples, subjects, properties, literals)."""
        literal_count = sum(1 for o in self._osp if isinstance(o, Literal))
        return {
            "triples": self._size,
            "subjects": len(self._spo),
            "properties": len(self._pos),
            "properties_excluding_type": len(self.properties(exclude_type=True)),
            "distinct_objects": len(self._osp),
            "distinct_literals": literal_count,
            "sorts": len(self.all_sorts()),
        }
