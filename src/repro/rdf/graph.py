"""An indexed, in-memory RDF graph (triple store) over interned term IDs.

This is the storage substrate on which the whole reproduction sits.  Terms
are interned into dense ``int32`` IDs through a
:class:`~repro.rdf.interning.TermDictionary`, and the graph keeps three
hash indexes (SPO, POS, OSP) *over those IDs* so that the access patterns
the paper needs are all O(1)/O(result) while hashing and equality cost a
machine word instead of a string:

* ``S(D)``     — the set of subjects mentioned in ``D``;
* ``P(D)``     — the set of properties mentioned in ``D``;
* ``s has p``  — does subject ``s`` have property ``p`` in ``D``;
* ``D_t``      — the subgraph of all triples whose subject is typed ``t``;
* entity extraction — all triples with a given subject (an *entity* in the
  terminology of Section 4).

The public API stays term-level (URIs and literals in, URIs and literals
out); the ID representation additionally surfaces as NumPy arrays
(:meth:`RDFGraph.subject_property_ids`, :meth:`RDFGraph.triple_ids`) that
the vectorised signature pipeline consumes directly — see DESIGN.md,
"Interned-ID architecture".
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import chain
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

import numpy as np

from repro.exceptions import RDFError
from repro.rdf.interning import NO_ID, TermDictionary
from repro.rdf.namespaces import RDF
from repro.rdf.terms import Literal, Term, Triple, URI, coerce_object, coerce_uri

__all__ = ["RDFGraph", "GraphDelta"]


@dataclass(frozen=True)
class GraphDelta:
    """The term-level footprint of an in-place graph mutation.

    :meth:`RDFGraph.add_triples` / :meth:`RDFGraph.remove_triples` return
    one of these so downstream views (``PropertyMatrix.apply_delta``,
    ``SignatureTable.apply_delta``) can re-derive exactly the touched
    subjects instead of rebuilding from scratch.  Only triples that
    *actually changed* the graph contribute: no-op inserts of present
    triples and no-op deletes of absent triples leave the delta empty.

    ``subjects`` and ``properties`` are conservative *touch* sets — a
    mentioned subject may end up with the same property row it had before
    (e.g. when only the object multiplicity of a pair changed); consumers
    must consult the mutated graph for current truth.
    """

    #: Number of triples the mutation actually added.
    added: int
    #: Number of triples the mutation actually removed.
    removed: int
    #: Subjects whose entity (set of outgoing triples) changed.
    subjects: FrozenSet[URI]
    #: Properties occurring in a changed triple (universe may have changed).
    properties: FrozenSet[URI]

    @property
    def is_empty(self) -> bool:
        """Whether the mutation changed the graph at all."""
        return self.added == 0 and self.removed == 0

    def merge(self, other: "GraphDelta") -> "GraphDelta":
        """Combine two deltas applied in sequence to the same graph."""
        return GraphDelta(
            added=self.added + other.added,
            removed=self.removed + other.removed,
            subjects=self.subjects | other.subjects,
            properties=self.properties | other.properties,
        )

    @classmethod
    def empty(cls) -> "GraphDelta":
        return cls(added=0, removed=0, subjects=frozenset(), properties=frozenset())


class RDFGraph:
    """A finite set of RDF triples with subject/predicate/object indexes.

    The class behaves like a set of :class:`~repro.rdf.terms.Triple`
    (supports ``len``, ``in``, iteration, union/difference) and adds the
    schema-oriented accessors used throughout the paper.

    Parameters
    ----------
    triples:
        Optional iterable of triples (or ``(s, p, o)`` tuples of strings)
        to load into the new graph.
    name:
        Optional human-readable name used in ``repr`` and reports.
    dictionary:
        Optional :class:`TermDictionary` to intern terms in.  Subgraph
        constructors pass the parent's dictionary so derived graphs share
        one ID space (IDs are never recycled, so sharing is always safe);
        by default every graph gets its own dictionary.
    """

    __slots__ = ("_dict", "_spo", "_pos", "_osp", "_size", "name")

    def __init__(
        self,
        triples: Optional[Iterable] = None,
        name: str = "",
        dictionary: Optional[TermDictionary] = None,
    ):
        self._dict: TermDictionary = dictionary if dictionary is not None else TermDictionary()
        # subject id -> predicate id -> set of object ids
        self._spo: Dict[int, Dict[int, Set[int]]] = {}
        # predicate id -> subject id -> set of object ids
        self._pos: Dict[int, Dict[int, Set[int]]] = {}
        # object id -> set of (subject id, predicate id)
        self._osp: Dict[int, Set[Tuple[int, int]]] = {}
        self._size = 0
        self.name = name
        if triples is not None:
            self.update(triples)

    # ------------------------------------------------------------------ #
    # Interning helpers
    # ------------------------------------------------------------------ #
    @property
    def term_dictionary(self) -> TermDictionary:
        """The dictionary interning this graph's terms (shared, not copied)."""
        return self._dict

    def _term(self, term_id: int) -> Term:
        return self._dict.term_of(term_id)

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def add(self, subject: object, predicate: object = None, obj: object = None) -> bool:
        """Add a triple; return ``True`` if the graph changed.

        Accepts either a single :class:`Triple`/3-tuple argument or three
        separate term arguments.  Plain strings are coerced to URIs.
        """
        if predicate is None and obj is None:
            if isinstance(subject, Triple):
                s, p, o = subject
            elif isinstance(subject, tuple) and len(subject) == 3:
                s, p, o = subject
            else:
                raise RDFError(
                    "add() needs a Triple, a 3-tuple, or three separate terms"
                )
        else:
            s, p, o = subject, predicate, obj
        return self._add_ids(
            self._dict.intern(coerce_uri(s)),
            self._dict.intern(coerce_uri(p)),
            self._dict.intern(coerce_object(o)),
        )

    def _add_ids(self, s_id: int, p_id: int, o_id: int) -> bool:
        """Add an already-interned triple; return ``True`` if the graph changed."""
        objects = self._spo.setdefault(s_id, {}).setdefault(p_id, set())
        if o_id in objects:
            return False
        objects.add(o_id)
        self._pos.setdefault(p_id, {}).setdefault(s_id, set()).add(o_id)
        self._osp.setdefault(o_id, set()).add((s_id, p_id))
        self._size += 1
        return True

    def update(self, triples: Iterable) -> int:
        """Add every triple in ``triples``; return how many were new."""
        if isinstance(triples, RDFGraph):
            # Fast path: translate the other graph's IDs directly.
            added = 0
            other_term = triples._dict.term_of
            intern = self._dict.intern
            for s_id, predicates in triples._spo.items():
                for p_id, objects in predicates.items():
                    my_s = intern(other_term(s_id))
                    my_p = intern(other_term(p_id))
                    for o_id in objects:
                        if self._add_ids(my_s, my_p, intern(other_term(o_id))):
                            added += 1
            return added
        added = 0
        for triple in triples:
            if self.add(triple):
                added += 1
        return added

    def remove(self, subject: object, predicate: object = None, obj: object = None) -> bool:
        """Remove a triple; return ``True`` if it was present."""
        if predicate is None and obj is None:
            if isinstance(subject, (Triple, tuple)) and len(subject) == 3:
                s, p, o = subject
            else:
                raise RDFError("remove() needs a Triple, a 3-tuple, or three terms")
        else:
            s, p, o = subject, predicate, obj
        s_id = self._dict.id_of(coerce_uri(s))
        p_id = self._dict.id_of(coerce_uri(p))
        o_id = self._dict.id_of(coerce_object(o))
        if NO_ID in (s_id, p_id, o_id):
            return False
        objects = self._spo.get(s_id, {}).get(p_id)
        if objects is None or o_id not in objects:
            return False
        objects.discard(o_id)
        if not objects:
            del self._spo[s_id][p_id]
            if not self._spo[s_id]:
                del self._spo[s_id]
        pos_objects = self._pos[p_id][s_id]
        pos_objects.discard(o_id)
        if not pos_objects:
            del self._pos[p_id][s_id]
            if not self._pos[p_id]:
                del self._pos[p_id]
        self._osp[o_id].discard((s_id, p_id))
        if not self._osp[o_id]:
            del self._osp[o_id]
        self._size -= 1
        return True

    @staticmethod
    def _coerce_batch(triples: Iterable) -> List[Tuple[URI, URI, Term]]:
        """Coerce a whole batch of triple entries up front.

        Batch mutations are atomic: every entry is validated and coerced
        *before* any index is touched, so an ill-typed entry raises with
        the graph (and any delta-maintained downstream view) unchanged.
        """
        coerced: List[Tuple[URI, URI, Term]] = []
        for entry in triples:
            if not (isinstance(entry, (Triple, tuple, list)) and len(entry) == 3):
                raise RDFError(
                    f"expected a Triple or an (s, p, o) 3-sequence, got {entry!r}"
                )
            coerced.append(
                (coerce_uri(entry[0]), coerce_uri(entry[1]), coerce_object(entry[2]))
            )
        return coerced

    def add_triples(self, triples: Iterable) -> GraphDelta:
        """Add a batch of triples in place; return the :class:`GraphDelta`.

        Entries may be :class:`Triple` instances or ``(s, p, o)``
        3-sequences of terms/strings (strings are coerced to URIs, like
        :meth:`add`).  The whole batch is coerced before anything is
        applied, so an invalid entry leaves the graph untouched.  The
        delta records only the triples that were not already present.
        """
        entries = self._coerce_batch(triples)
        intern = self._dict.intern
        touched_s: Set[URI] = set()
        touched_p: Set[URI] = set()
        added = 0
        for s, p, o in entries:
            if self._add_ids(intern(s), intern(p), intern(o)):
                added += 1
                touched_s.add(s)
                touched_p.add(p)
        return GraphDelta(
            added=added,
            removed=0,
            subjects=frozenset(touched_s),
            properties=frozenset(touched_p),
        )

    def remove_triples(self, triples: Iterable) -> GraphDelta:
        """Remove a batch of triples in place; return the :class:`GraphDelta`.

        The whole batch is coerced before anything is applied (like
        :meth:`add_triples`).  Absent triples (and triples over unknown
        terms) are silently skipped; they do not appear in the delta.
        Interned terms are kept in the dictionary even when their last
        triple disappears — IDs are never recycled, so a later re-insert
        of the same term reuses its original ID (see
        :class:`~repro.rdf.interning.TermDictionary`).
        """
        entries = self._coerce_batch(triples)
        touched_s: Set[URI] = set()
        touched_p: Set[URI] = set()
        removed = 0
        for s, p, o in entries:
            if self.remove(s, p, o):
                removed += 1
                touched_s.add(s)
                touched_p.add(p)
        return GraphDelta(
            added=0,
            removed=removed,
            subjects=frozenset(touched_s),
            properties=frozenset(touched_p),
        )

    def remove_entity(self, subject: object) -> int:
        """Remove every triple whose subject is ``subject``; return the count."""
        s = coerce_uri(subject)
        removed = 0
        for triple in list(self.triples_for_subject(s)):
            if self.remove(triple):
                removed += 1
        return removed

    def clear(self) -> None:
        """Remove every triple from the graph (interned terms are kept)."""
        self._spo.clear()
        self._pos.clear()
        self._osp.clear()
        self._size = 0

    # ------------------------------------------------------------------ #
    # Set-like protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, triple: object) -> bool:
        if not isinstance(triple, (Triple, tuple)) or len(triple) != 3:
            return False
        s, p, o = triple
        try:
            s_id = self._dict.id_of(coerce_uri(s))
            p_id = self._dict.id_of(coerce_uri(p))
            o_id = self._dict.id_of(coerce_object(o))
        except RDFError:
            return False
        if NO_ID in (s_id, p_id, o_id):
            return False
        return o_id in self._spo.get(s_id, {}).get(p_id, ())

    def __iter__(self) -> Iterator[Triple]:
        term = self._dict.term_of
        for s_id, predicates in self._spo.items():
            s = term(s_id)
            for p_id, objects in predicates.items():
                p = term(p_id)
                for o_id in objects:
                    yield Triple(s, p, term(o_id))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RDFGraph):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(triple in other for triple in self)

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __or__(self, other: "RDFGraph") -> "RDFGraph":
        result = self.copy()
        result.update(other)
        return result

    def __sub__(self, other: "RDFGraph") -> "RDFGraph":
        result = RDFGraph(name=self.name, dictionary=self._dict)
        for triple in self:
            if triple not in other:
                result.add(triple)
        return result

    def __and__(self, other: "RDFGraph") -> "RDFGraph":
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        result = RDFGraph(name=self.name, dictionary=self._dict)
        for triple in small:
            if triple in large:
                result.add(triple)
        return result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return f"<RDFGraph{label}: {self._size} triples, {len(self._spo)} subjects>"

    def copy(self, name: Optional[str] = None) -> "RDFGraph":
        """Return a shallow copy of the graph (triples are immutable)."""
        result = RDFGraph(name=self.name if name is None else name, dictionary=self._dict)
        for s_id, predicates in self._spo.items():
            for p_id, objects in predicates.items():
                for o_id in objects:
                    result._add_ids(s_id, p_id, o_id)
        return result

    def isdisjoint(self, other: "RDFGraph") -> bool:
        """Return ``True`` when the two graphs share no triple."""
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return not any(triple in large for triple in small)

    # ------------------------------------------------------------------ #
    # Pattern matching
    # ------------------------------------------------------------------ #
    def triples(
        self,
        subject: object = None,
        predicate: object = None,
        obj: object = None,
    ) -> Iterator[Triple]:
        """Yield all triples matching the pattern (``None`` is a wildcard)."""
        term = self._dict.term_of
        s_id = p_id = o_id = None
        if subject is not None:
            s_id = self._dict.id_of(coerce_uri(subject))
            if s_id == NO_ID:
                return
        if predicate is not None:
            p_id = self._dict.id_of(coerce_uri(predicate))
            if p_id == NO_ID:
                return
        if obj is not None:
            o_id = self._dict.id_of(coerce_object(obj))
            if o_id == NO_ID:
                return

        if s_id is not None:
            s = term(s_id)
            predicates = self._spo.get(s_id, {})
            candidates = [p_id] if p_id is not None else list(predicates)
            for pred_id in candidates:
                pred = term(pred_id)
                for value_id in predicates.get(pred_id, ()):
                    if o_id is None or value_id == o_id:
                        yield Triple(s, pred, term(value_id))
        elif p_id is not None:
            p = term(p_id)
            for subj_id, objects in self._pos.get(p_id, {}).items():
                subj = term(subj_id)
                for value_id in objects:
                    if o_id is None or value_id == o_id:
                        yield Triple(subj, p, term(value_id))
        elif o_id is not None:
            o = term(o_id)
            for subj_id, pred_id in self._osp.get(o_id, ()):
                yield Triple(term(subj_id), term(pred_id), o)
        else:
            yield from iter(self)

    def triples_for_subject(self, subject: object) -> Iterator[Triple]:
        """Yield the *entity* of ``subject``: every triple with that subject."""
        return self.triples(subject=subject)

    def objects(self, subject: object, predicate: object) -> Set[Term]:
        """Return the set of objects for a (subject, predicate) pair."""
        s_id = self._dict.id_of(coerce_uri(subject))
        p_id = self._dict.id_of(coerce_uri(predicate))
        if NO_ID in (s_id, p_id):
            return set()
        term = self._dict.term_of
        return {term(o_id) for o_id in self._spo.get(s_id, {}).get(p_id, ())}

    def value(self, subject: object, predicate: object) -> Optional[Term]:
        """Return an arbitrary object for (subject, predicate), or ``None``."""
        objects = self.objects(subject, predicate)
        return next(iter(objects)) if objects else None

    # ------------------------------------------------------------------ #
    # Schema-oriented accessors (Section 2.1)
    # ------------------------------------------------------------------ #
    def subjects(self) -> Set[URI]:
        """Return ``S(D)``: the set of subjects mentioned in the graph."""
        term = self._dict.term_of
        return {term(s_id) for s_id in self._spo}

    @property
    def n_subjects(self) -> int:
        """``|S(D)|`` without materialising the subject set."""
        return len(self._spo)

    def has_subject(self, subject: object) -> bool:
        """Return ``True`` iff ``subject`` currently has at least one triple."""
        s_id = self._dict.id_of(coerce_uri(subject))
        return s_id != NO_ID and s_id in self._spo

    def has_predicate(self, predicate: object) -> bool:
        """Return ``True`` iff some triple currently uses ``predicate``."""
        p_id = self._dict.id_of(coerce_uri(predicate))
        return p_id != NO_ID and p_id in self._pos

    def properties(self, exclude_type: bool = False) -> Set[URI]:
        """Return ``P(D)``: the set of properties mentioned in the graph.

        When ``exclude_type`` is true, ``rdf:type`` is removed, matching the
        paper's convention of reporting property counts "excluding the type
        property".
        """
        term = self._dict.term_of
        props = {term(p_id) for p_id in self._pos}
        if exclude_type:
            props.discard(RDF.type)
        return props

    def has_property(self, subject: object, predicate: object) -> bool:
        """Return ``True`` iff ``subject`` has ``predicate`` in the graph."""
        s_id = self._dict.id_of(coerce_uri(subject))
        p_id = self._dict.id_of(coerce_uri(predicate))
        if NO_ID in (s_id, p_id):
            return False
        return bool(self._spo.get(s_id, {}).get(p_id))

    def properties_of(self, subject: object, exclude_type: bool = False) -> Set[URI]:
        """Return the set of properties that ``subject`` has."""
        s_id = self._dict.id_of(coerce_uri(subject))
        if s_id == NO_ID:
            return set()
        term = self._dict.term_of
        props = {term(p_id) for p_id in self._spo.get(s_id, {})}
        if exclude_type:
            props.discard(RDF.type)
        return props

    def subjects_with_property(self, predicate: object) -> Set[URI]:
        """Return every subject that has ``predicate``."""
        p_id = self._dict.id_of(coerce_uri(predicate))
        if p_id == NO_ID:
            return set()
        term = self._dict.term_of
        return {term(s_id) for s_id in self._pos.get(p_id, {})}

    def sorts_of(self, subject: object) -> Set[Term]:
        """Return the declared sorts (``rdf:type`` objects) of ``subject``."""
        return self.objects(subject, RDF.type)

    def all_sorts(self) -> Set[Term]:
        """Return every sort ``t`` such that some ``(s, type, t)`` triple exists."""
        type_id = self._dict.id_of(RDF.type)
        if type_id == NO_ID:
            return set()
        term = self._dict.term_of
        sorts: Set[Term] = set()
        for objects in self._pos.get(type_id, {}).values():
            sorts.update(term(o_id) for o_id in objects)
        return sorts

    def sort_subgraph(self, sort: object, name: Optional[str] = None) -> "RDFGraph":
        """Return ``D_t``: all triples whose subject is declared of sort ``sort``.

        This is the subgraph the paper denotes ``D_t = {(s, p, o) ∈ D |
        (s, type, t) ∈ D}``.
        """
        t = coerce_object(sort)
        result = RDFGraph(
            name=name if name is not None else f"{self.name}[{t}]",
            dictionary=self._dict,
        )
        type_id = self._dict.id_of(RDF.type)
        t_id = self._dict.id_of(t)
        if NO_ID in (type_id, t_id):
            return result
        for subj_id, objects in self._pos.get(type_id, {}).items():
            if t_id in objects:
                for p_id, subj_objects in self._spo.get(subj_id, {}).items():
                    for o_id in subj_objects:
                        result._add_ids(subj_id, p_id, o_id)
        return result

    def entity_subgraph(self, subjects: Iterable, name: str = "") -> "RDFGraph":
        """Return the subgraph of all triples whose subject is in ``subjects``."""
        result = RDFGraph(name=name, dictionary=self._dict)
        for subject in subjects:
            s_id = self._dict.id_of(coerce_uri(subject))
            if s_id == NO_ID:
                continue
            for p_id, objects in self._spo.get(s_id, {}).items():
                for o_id in objects:
                    result._add_ids(s_id, p_id, o_id)
        return result

    # ------------------------------------------------------------------ #
    # Vectorised views over the interned IDs
    # ------------------------------------------------------------------ #
    def triple_ids(self) -> np.ndarray:
        """Return all triples as an ``(n, 3) int32`` array of term IDs.

        Row order follows the SPO index (insertion order of subjects and
        predicates).  Decode columns with :attr:`term_dictionary`.
        """
        out = np.empty((self._size, 3), dtype=np.int32)
        row = 0
        for s_id, predicates in self._spo.items():
            for p_id, objects in predicates.items():
                for o_id in objects:
                    out[row, 0] = s_id
                    out[row, 1] = p_id
                    out[row, 2] = o_id
                    row += 1
        return out

    def subject_property_ids(self, exclude_type: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Return the distinct (subject ID, property ID) pairs as two arrays.

        This is the property-structure view ``M(D)`` in coordinate form —
        exactly what the vectorised ``PropertyMatrix``/``SignatureTable``
        constructors consume.  Pairs are deduplicated (the view only records
        *whether* a subject has a property, not how many objects).
        """
        spo = self._spo
        n_subjects = len(spo)
        fanout = np.fromiter(map(len, spo.values()), dtype=np.int64, count=n_subjects)
        s_out = np.repeat(
            np.fromiter(spo.keys(), dtype=np.int32, count=n_subjects), fanout
        )
        p_out = np.fromiter(
            chain.from_iterable(spo.values()), dtype=np.int32, count=int(fanout.sum())
        )
        if exclude_type:
            type_id = self._dict.id_of(RDF.type)
            if type_id != NO_ID:
                keep = p_out != type_id
                return s_out[keep], p_out[keep]
        return s_out, p_out

    def describe(self) -> Dict[str, int]:
        """Return summary statistics (triples, subjects, properties, literals)."""
        term = self._dict.term_of
        literal_count = sum(1 for o_id in self._osp if isinstance(term(o_id), Literal))
        return {
            "triples": self._size,
            "subjects": len(self._spo),
            "properties": len(self._pos),
            "properties_excluding_type": len(self.properties(exclude_type=True)),
            "distinct_objects": len(self._osp),
            "distinct_literals": literal_count,
            "sorts": len(self.all_sorts()),
        }
