"""Closed-form structuredness functions and function objects."""

from repro.functions.structuredness import (
    Dataset,
    StructurednessFunction,
    as_signature_table,
    best_function_for_rule,
    conditional_dependency,
    coverage,
    coverage_function,
    dependency,
    dependency_function,
    function_from_rule,
    matching_fast_function,
    similarity,
    similarity_function,
    symmetric_dependency,
    symmetric_dependency_function,
)

__all__ = [
    "Dataset",
    "StructurednessFunction",
    "as_signature_table",
    "coverage",
    "similarity",
    "dependency",
    "symmetric_dependency",
    "conditional_dependency",
    "coverage_function",
    "similarity_function",
    "dependency_function",
    "symmetric_dependency_function",
    "function_from_rule",
    "matching_fast_function",
    "best_function_for_rule",
]
