"""Closed-form structuredness functions over signature tables.

Every structuredness function named in the paper has a closed form in terms
of a handful of signature-level aggregates:

* Cov(D)             = (# of 1-cells) / (|S(D)| · |P(D)|)
* Sim(D)             = Σ_p n_p (n_p − 1) / Σ_p n_p (N − 1)
* Dep[p1, p2](D)     = n_{p1 ∧ p2} / n_{p1}
* SymDep[p1, p2](D)  = n_{p1 ∧ p2} / n_{p1 ∨ p2}
* CondDep[p1, p2](D) = (N − n_{p1} + n_{p1 ∧ p2}) / N

where ``N`` is the number of subjects, ``n_p`` the number of subjects with
property ``p``, and ``n_{p1 ∧ p2}``, ``n_{p1 ∨ p2}`` the number of subjects
with both / at least one of the two properties.  Each ratio is defined as 1
when its denominator is 0, in keeping with the convention for σ_r (this is
what makes σSymDep trivially 1 on implicit sorts that drop a column, as
discussed in Section 7.1.1).

These closed forms are proved equivalent to the rule semantics by the test
suite (against both the naive semantics and the signature-level counting),
and they are what the experiment harness uses on large datasets.

The module also provides :class:`StructurednessFunction`, a tiny wrapper
that pairs a rule with an optional fast path and accepts graphs, matrices
or signature tables interchangeably.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Optional, Union

from repro.exceptions import EvaluationError
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.sharded import ShardedSignatureTable
from repro.matrix.signatures import SignatureTable
from repro.rdf.graph import RDFGraph
from repro.rdf.terms import coerce_uri
from repro.rules import library
from repro.rules.ast import Rule
from repro.rules.counting import sigma_by_signatures_fraction

__all__ = [
    "Dataset",
    "as_signature_table",
    "coverage",
    "similarity",
    "dependency",
    "symmetric_dependency",
    "conditional_dependency",
    "StructurednessFunction",
    "coverage_function",
    "similarity_function",
    "dependency_function",
    "symmetric_dependency_function",
    "function_from_rule",
]

#: The kinds of inputs every function in this module accepts.
Dataset = Union[RDFGraph, PropertyMatrix, SignatureTable]


def as_signature_table(dataset: Dataset) -> SignatureTable:
    """Normalise a graph / matrix / signature table to a signature table.

    Objects exposing a ``table`` attribute holding a signature table — the
    :class:`repro.api.Dataset` handle, :class:`~repro.datasets.MixedDataset`
    — are accepted too, so the free functions compose with the session API.
    """
    if isinstance(dataset, SignatureTable):
        return dataset
    if isinstance(dataset, PropertyMatrix):
        return SignatureTable.from_matrix(dataset)
    if isinstance(dataset, RDFGraph):
        return SignatureTable.from_graph(dataset)
    table = getattr(dataset, "table", None)
    if isinstance(table, SignatureTable):
        return table
    raise EvaluationError(
        f"expected an RDFGraph, PropertyMatrix or SignatureTable, got {type(dataset).__name__}"
    )


def _ratio(favourable: int, total: int) -> Fraction:
    if total == 0:
        return Fraction(1)
    return Fraction(favourable, total)


# --------------------------------------------------------------------------- #
# Closed forms
# --------------------------------------------------------------------------- #
def coverage(dataset: Dataset, exact: bool = False) -> Union[float, Fraction]:
    """σCov: the fraction of filled cells of the property-structure view."""
    table = as_signature_table(dataset)
    value = _ratio(table.n_ones(), table.n_cells())
    return value if exact else float(value)


def similarity(dataset: Dataset, exact: bool = False) -> Union[float, Fraction]:
    """σSim: probability that a property of one subject is shared by another.

    Total cases are triples ``(s, s', p)`` with ``s ≠ s'`` and ``s`` having
    ``p``; favourable cases additionally require ``s'`` to have ``p``.
    """
    table = as_signature_table(dataset)
    n_subjects = table.n_subjects
    n_p = table.property_count_vector()
    total = int(n_p.sum()) * (n_subjects - 1)
    favourable = int(n_p @ (n_p - 1))
    value = _ratio(favourable, total)
    return value if exact else float(value)


def dependency(
    dataset: Dataset, prop1: object, prop2: object, exact: bool = False
) -> Union[float, Fraction]:
    """σDep[p1, p2]: probability that a subject having ``p1`` also has ``p2``."""
    table = as_signature_table(dataset)
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    if p1 not in table.properties or p2 not in table.properties:
        # A missing column removes all total cases: σ = 1 by convention.
        value = Fraction(1)
    else:
        value = _ratio(table.both_count(p1, p2), table.property_count(p1))
    return value if exact else float(value)


def symmetric_dependency(
    dataset: Dataset, prop1: object, prop2: object, exact: bool = False
) -> Union[float, Fraction]:
    """σSymDep[p1, p2]: probability that a subject with ``p1`` or ``p2`` has both."""
    table = as_signature_table(dataset)
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    if p1 not in table.properties or p2 not in table.properties:
        # The antecedent requires both property columns to exist; a missing
        # column removes every total case and σ = 1 by convention (this is
        # the "trivially satisfied" situation discussed in Section 7.1.1).
        value = Fraction(1)
    else:
        value = _ratio(table.both_count(p1, p2), table.either_count(p1, p2))
    return value if exact else float(value)


def conditional_dependency(
    dataset: Dataset, prop1: object, prop2: object, exact: bool = False
) -> Union[float, Fraction]:
    """The disjunctive-consequent dependency: P(subject lacks p1 or has p2)."""
    table = as_signature_table(dataset)
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    n_subjects = table.n_subjects
    if p1 not in table.properties or p2 not in table.properties:
        value = Fraction(1)
    else:
        favourable = n_subjects - table.property_count(p1) + table.both_count(p1, p2)
        value = _ratio(favourable, n_subjects)
    return value if exact else float(value)


# --------------------------------------------------------------------------- #
# Function objects
# --------------------------------------------------------------------------- #
class StructurednessFunction:
    """A structuredness function: a rule plus an optional closed-form fast path.

    Calling the object with a graph, matrix or signature table returns the
    σ value in ``[0, 1]``.  When no fast path is available the rule is
    evaluated at the signature level, which is exact and scales with the
    number of signatures instead of the number of subjects.
    """

    def __init__(
        self,
        rule: Rule,
        fast_path: Optional[Callable[[SignatureTable], Fraction]] = None,
        name: Optional[str] = None,
    ):
        self.rule = rule
        self._fast_path = fast_path
        self.name = name or rule.name or rule.to_text()

    def evaluate_fraction(self, dataset: Dataset, executor=None) -> Fraction:
        """Return σ(dataset) as an exact fraction.

        ``executor`` is an optional
        :class:`~repro.parallel.ParallelExecutor`.  Closed-form fast paths
        ignore it (they are a few NumPy reductions); rule-based evaluation
        passes it through to the signature-level counting, and a
        :class:`~repro.matrix.ShardedSignatureTable` dataset is counted
        shard-by-shard.  The fraction is identical in every configuration.
        """
        if self._fast_path is None and isinstance(dataset, ShardedSignatureTable):
            return dataset.sigma_fraction(self.rule, executor=executor)
        table = as_signature_table(dataset)
        if self._fast_path is not None:
            return self._fast_path(table)
        return sigma_by_signatures_fraction(self.rule, table, executor=executor)

    def __call__(self, dataset: Dataset, executor=None) -> float:
        return float(self.evaluate_fraction(dataset, executor=executor))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<StructurednessFunction {self.name}>"


def coverage_function() -> StructurednessFunction:
    """σCov as a :class:`StructurednessFunction` (rule + closed form)."""
    return StructurednessFunction(
        library.coverage(),
        fast_path=lambda table: coverage(table, exact=True),
        name="Cov",
    )


def similarity_function() -> StructurednessFunction:
    """σSim as a :class:`StructurednessFunction` (rule + closed form)."""
    return StructurednessFunction(
        library.similarity(),
        fast_path=lambda table: similarity(table, exact=True),
        name="Sim",
    )


def dependency_function(prop1: object, prop2: object) -> StructurednessFunction:
    """σDep[p1, p2] as a :class:`StructurednessFunction`."""
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    return StructurednessFunction(
        library.dependency(p1, p2),
        fast_path=lambda table: dependency(table, p1, p2, exact=True),
        name=f"Dep[{p1.local_name}, {p2.local_name}]",
    )


def symmetric_dependency_function(prop1: object, prop2: object) -> StructurednessFunction:
    """σSymDep[p1, p2] as a :class:`StructurednessFunction`."""
    p1, p2 = coerce_uri(prop1), coerce_uri(prop2)
    return StructurednessFunction(
        library.symmetric_dependency(p1, p2),
        fast_path=lambda table: symmetric_dependency(table, p1, p2, exact=True),
        name=f"SymDep[{p1.local_name}, {p2.local_name}]",
    )


def function_from_rule(rule: Rule, name: Optional[str] = None) -> StructurednessFunction:
    """Wrap an arbitrary rule as a :class:`StructurednessFunction`.

    The returned function is evaluated with signature-level counting; no
    closed form is attached.  Use :func:`best_function_for_rule` to attach a
    closed form automatically when the rule is recognised as one of the
    built-ins.
    """
    return StructurednessFunction(rule, fast_path=None, name=name)


def matching_fast_function(rule: Rule) -> Optional[StructurednessFunction]:
    """Recognise a rule as one of the built-in functions, if possible.

    The match is purely structural (the antecedent and consequent formulas
    must be exactly those produced by :mod:`repro.rules.library`); it covers
    Cov, Sim, Dep[p1, p2] and SymDep[p1, p2].  Returns ``None`` when the
    rule is not recognised.
    """
    from repro.rules.ast import PropIs

    def same_shape(candidate: Rule) -> bool:
        return (
            candidate.antecedent == rule.antecedent
            and candidate.consequent == rule.consequent
        )

    if same_shape(library.coverage()):
        return coverage_function()
    if same_shape(library.similarity()):
        return similarity_function()
    constants = [atom.uri for atom in rule.antecedent.atoms() if isinstance(atom, PropIs)]
    if len(constants) == 2:
        p1, p2 = constants
        if same_shape(library.dependency(p1, p2)):
            return dependency_function(p1, p2)
        if same_shape(library.symmetric_dependency(p1, p2)):
            return symmetric_dependency_function(p1, p2)
    return None


def best_function_for_rule(rule: Rule, name: Optional[str] = None) -> StructurednessFunction:
    """Return the fastest available :class:`StructurednessFunction` for a rule.

    Built-in rules get their closed forms; anything else falls back to
    signature-level evaluation of the rule itself.
    """
    recognised = matching_fast_function(rule)
    if recognised is not None:
        if name:
            recognised.name = name
        return recognised
    return function_from_rule(rule, name=name)
