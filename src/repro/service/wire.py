"""The JSONL wire format: request/result codec for the service layer.

One wire request is one JSON object (one line of a JSONL batch file)::

    {"op": "refine",
     "id": "job-17",
     "dataset": {"builtin": "dbpedia-persons", "params": {"n_subjects": 500}},
     "solver": "highs",
     "request": {"rule": "Cov", "k": 2, "step": "1/10"}}

``op`` selects the session verb (``evaluate`` / ``refine`` / ``lowest_k``
/ ``sweep``); ``request`` carries the fields of the corresponding typed
request object from :mod:`repro.api.requests` (fractions as ``"n/d"``
strings, rules as built-in names or concrete-syntax text).  For
convenience the request fields may also be spelled inline next to ``op``
— the HTTP front-end posts ``{"dataset": ..., "rule": "Cov", "k": 2}``.

Results travel back as scalar-only envelopes built from the typed
results' ``to_dict()``::

    {"ok": true,  "op": "refine", "id": "job-17", "result": {...}}
    {"ok": false, "op": "refine", "id": "job-17", "status": 400,
     "error": {"type": "RequestError", "message": "..."}}

The codec is exact: ``parse_request(serialize_request(r))`` reproduces
``r``, and an envelope compares bit-identical however it was produced
(inline executor, worker pool, or HTTP) because everything in it comes
from the same ``to_dict`` methods.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields as dataclass_fields
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from repro.api.requests import (
    EvaluateRequest,
    LowestKRequest,
    MutationRequest,
    RefineRequest,
    SweepRequest,
)
from repro.exceptions import ReproError, RequestError
from repro.rdf.terms import Literal, Triple
from repro.rules.ast import Rule
from repro.service.registry import DatasetSpec

__all__ = [
    "OPS",
    "MUTATING_OPS",
    "ServiceRequest",
    "parse_request",
    "serialize_request",
    "parse_result",
    "serialize_result",
    "error_result",
    "status_for_error",
    "strip_timing",
    "parse_jsonl",
    "dump_jsonl",
]

#: op name → typed request class (the order is the documented op list).
REQUEST_TYPES = {
    "evaluate": EvaluateRequest,
    "refine": RefineRequest,
    "lowest_k": LowestKRequest,
    "sweep": SweepRequest,
    "mutate": MutationRequest,
}

OPS: Tuple[str, ...] = tuple(REQUEST_TYPES)

#: Ops that change dataset state.  Executors treat them as batch-order
#: barriers: requests before a mutation see the old graph, requests after
#: it the new one, whatever the grouping — and the worker pool replays
#: them into every worker's registry so all copies of a dataset converge.
MUTATING_OPS: Tuple[str, ...] = ("mutate",)

#: Envelope fields that are not request-object fields (inline spelling).
_ENVELOPE_FIELDS = {"op", "id", "dataset", "solver", "request"}

#: Library errors that are the caller's fault → HTTP 400, everything else 500.
_CLIENT_ERROR_STATUS = 400
_SERVER_ERROR_STATUS = 500


def _encode_term(term: object) -> str:
    """One triple term in its wire spelling (inverse of ``parse_wire_term``).

    URIs travel bare unless their text would be *misparsed* on the way
    back — a URI that itself looks bracketed (``<x>``) or quote-wrapped —
    in which case the unambiguous N-Triples ``<...>`` form is used
    (``parse_wire_term`` strips exactly one bracket pair).  Keeps the
    codec exact for every term, which the pool's mutation-log replay
    depends on.
    """
    if isinstance(term, Literal):
        return term.n3()
    text = str(term)
    if (text.startswith("<") and text.endswith(">")) or (
        len(text) >= 2 and text[0] == '"' and text[-1] == '"'
    ):
        return f"<{text}>"
    return text


def _encode_value(value: object) -> object:
    """Lower one request field to a JSON scalar/list."""
    if isinstance(value, Fraction):
        return f"{value.numerator}/{value.denominator}"
    if isinstance(value, Rule):
        return value.to_text()
    if isinstance(value, Triple):
        # Before the generic tuple branch: Triple is a NamedTuple.  URIs
        # travel as bare strings, literals in their N-Triples spelling, so
        # parse_wire_term reproduces the exact terms.
        return [_encode_term(term) for term in value]
    if isinstance(value, tuple):
        return [_encode_value(item) for item in value]
    return value


def _request_params(request: object) -> Dict[str, object]:
    """The typed request as a wire dict (fractions and rules lowered)."""
    payload: Dict[str, object] = {}
    for field in dataclass_fields(request):
        value = getattr(request, field.name)
        if value is None:
            continue
        payload[field.name] = _encode_value(value)
    return payload


def _parse_params(op: str, params: Dict[str, object]) -> object:
    """Build and validate the typed request object for ``op``."""
    request_type = REQUEST_TYPES[op]
    known = {field.name for field in dataclass_fields(request_type)}
    unknown = set(params) - known
    if unknown:
        raise RequestError(
            f"unknown {op} request fields: {', '.join(sorted(unknown))} "
            f"(expected a subset of: {', '.join(sorted(known))})"
        )
    kwargs = dict(params)
    if "k_values" in kwargs and isinstance(kwargs["k_values"], list):
        kwargs["k_values"] = tuple(kwargs["k_values"])
    return request_type(**kwargs).validated()


@dataclass(frozen=True)
class ServiceRequest:
    """One fully-parsed wire request: op + dataset spec + typed request."""

    op: str
    dataset: DatasetSpec
    request: object
    solver: Optional[str] = None
    id: Optional[str] = None

    @property
    def rule_key(self) -> str:
        """A stable string for the request's rule (grouping, not identity)."""
        rule = getattr(self.request, "rule", None)
        return rule.to_text() if isinstance(rule, Rule) else str(rule)

    @property
    def group_key(self) -> Tuple[str, str, str]:
        """The scheduling unit: requests sharing a key share one session."""
        return (self.dataset.key, self.rule_key, self.solver or "")

    def to_dict(self) -> Dict[str, object]:
        """The request's wire dict (inverse of :func:`parse_request`)."""
        payload: Dict[str, object] = {"op": self.op}
        if self.id is not None:
            payload["id"] = self.id
        payload["dataset"] = self.dataset.to_dict()
        if self.solver is not None:
            payload["solver"] = self.solver
        payload["request"] = _request_params(self.request)
        return payload


def parse_request(data: object) -> ServiceRequest:
    """Parse a wire request from a dict, a JSON string, or pass one through.

    Raises :class:`~repro.exceptions.RequestError` on malformed input —
    unknown op, missing dataset, unknown fields, bad parameter values.
    """
    if isinstance(data, ServiceRequest):
        return data
    if isinstance(data, (str, bytes)):
        try:
            data = json.loads(data)
        except json.JSONDecodeError as error:
            raise RequestError(f"request line is not valid JSON: {error}") from None
    if not isinstance(data, dict):
        raise RequestError(f"a wire request must be a JSON object, got {type(data).__name__}")
    op = data.get("op")
    if op not in REQUEST_TYPES:
        known = ", ".join(OPS)
        raise RequestError(f"unknown op {op!r}: expected one of {known}")
    if "dataset" not in data:
        raise RequestError("a wire request needs a 'dataset' spec")
    dataset = DatasetSpec.from_dict(data["dataset"])
    solver = data.get("solver")
    if solver is not None and not isinstance(solver, str):
        raise RequestError(f"'solver' must be a registered backend name, got {solver!r}")
    request_id = data.get("id")
    if request_id is not None and not isinstance(request_id, str):
        request_id = str(request_id)
    params = data.get("request")
    if params is None:
        # Inline spelling: request fields live next to the envelope fields.
        params = {key: value for key, value in data.items() if key not in _ENVELOPE_FIELDS}
    if not isinstance(params, dict):
        raise RequestError(f"'request' must be an object of request fields, got {params!r}")
    return ServiceRequest(
        op=op,
        dataset=dataset,
        request=_parse_params(op, params),
        solver=solver,
        id=request_id,
    )


def serialize_request(request: ServiceRequest) -> str:
    """One JSONL line for ``request`` (inverse of :func:`parse_request`)."""
    return json.dumps(request.to_dict(), sort_keys=True)


def strip_timing(payload: object) -> object:
    """Drop wall-clock fields from a result dict, recursively.

    Wire payloads are *deterministic*: the same request must serialise to
    the same bytes whether it ran inline, in a pool worker, or behind
    HTTP.  ``total_time`` is the one nondeterministic field the typed
    results carry; executors report aggregate timing through ``stats()``.
    Public so that cross-layer determinism tests can compare a typed
    result's ``to_dict()`` against a wire payload.
    """
    if isinstance(payload, dict):
        return {
            key: strip_timing(value)
            for key, value in payload.items()
            if key != "total_time"
        }
    if isinstance(payload, list):
        return [strip_timing(item) for item in payload]
    return payload


def serialize_result(result: object, request: Optional[ServiceRequest] = None) -> Dict[str, object]:
    """Wrap a typed result in an ``ok`` envelope (scalar-only payload)."""
    envelope: Dict[str, object] = {"ok": True}
    if request is not None:
        envelope["op"] = request.op
        if request.id is not None:
            envelope["id"] = request.id
    envelope["result"] = strip_timing(result.to_dict())
    return envelope


def status_for_error(error: BaseException) -> int:
    """The HTTP status an error maps to: 400 for caller mistakes, 500 else."""
    return _CLIENT_ERROR_STATUS if isinstance(error, ReproError) else _SERVER_ERROR_STATUS


def error_result(
    error: BaseException, request: Optional[ServiceRequest] = None
) -> Dict[str, object]:
    """Wrap an exception in a ``not ok`` envelope with an HTTP status."""
    envelope: Dict[str, object] = {"ok": False}
    if request is not None:
        envelope["op"] = request.op
        if request.id is not None:
            envelope["id"] = request.id
    envelope["status"] = status_for_error(error)
    envelope["error"] = {"type": type(error).__name__, "message": str(error)}
    return envelope


def parse_result(line: object) -> Dict[str, object]:
    """Parse one result envelope from a JSON(L) line or dict."""
    if isinstance(line, (str, bytes)):
        try:
            line = json.loads(line)
        except json.JSONDecodeError as error:
            raise RequestError(f"result line is not valid JSON: {error}") from None
    if not isinstance(line, dict) or "ok" not in line:
        raise RequestError(f"a result envelope must be an object with 'ok', got {line!r}")
    return line


def parse_jsonl(text: str) -> List[ServiceRequest]:
    """Parse a JSONL batch document (blank lines and ``#`` comments skipped)."""
    requests = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            requests.append(parse_request(line))
        except RequestError as error:
            raise RequestError(f"line {lineno}: {error}") from None
    return requests


def dump_jsonl(envelopes: Iterable[Dict[str, object]]) -> str:
    """Serialise result envelopes as a JSONL document (sorted keys)."""
    return "\n".join(json.dumps(envelope, sort_keys=True) for envelope in envelopes)
