"""The structuredness service: batch execution, worker pool, HTTP front-end.

This package turns the session facade (:mod:`repro.api`) into something
you can put traffic on, in three layers:

* **Wire format** (:mod:`repro.service.wire`) — a JSONL codec for typed
  requests and scalar-only result envelopes; every payload round-trips
  bit-identically through ``serialize → parse``.
* **Batch execution** (:mod:`repro.service.executor`,
  :mod:`repro.service.pool`) — :func:`plan_batch` groups requests by
  ``(dataset, rule, solver)`` so each group shares one session and its
  caches; :class:`InlineExecutor` runs groups in-process (the determinism
  baseline), :class:`PooledExecutor` fans independent groups out over
  long-lived worker processes, each holding a
  :class:`~repro.service.registry.DatasetRegistry` so dataset chains are
  built once per worker.
* **HTTP front-end** (:mod:`repro.service.server`,
  :mod:`repro.service.async_server`) — a stdlib JSON API (``POST
  /v1/evaluate|refine|lowest_k|sweep|mutate|batch``, ``GET
  /v1/datasets``, ``GET /v1/stats``) exposed by ``repro serve``; batches
  run through ``repro batch`` without a server.  ``repro serve --async``
  swaps the threaded server for an asyncio front-end with the same
  routes and envelopes plus request admission (bounded pending queue,
  429 + ``Retry-After`` on overflow), per-dataset mutation routing and
  backpressure-aware JSONL streaming; ``--max-workers`` above
  ``--workers`` puts the :class:`ElasticPoolExecutor` behind either
  server — worker processes that autoscale on queue depth, boot from
  snapshot-backed specs and drain gracefully when idle.

Datasets are mutable in place: a ``mutate`` request applies a triple
delta, incrementally patches the matrix/signature chain (bit-identical
to a rebuild) and acts as a barrier inside a batch; the pool replays
mutations into every worker's registry via an ordered mutation log, so
pooled answers stay bit-identical to inline ones.

>>> from repro.service import InlineExecutor, parse_request
>>> executor = InlineExecutor()
>>> [env] = executor.execute([{                        # doctest: +SKIP
...     "op": "evaluate",
...     "dataset": {"builtin": "dbpedia-persons", "params": {"n_subjects": 500}},
...     "request": {"rule": "Cov"},
... }])
>>> env["ok"], env["result"]["value"]                  # doctest: +SKIP
(True, 0.54)
"""

from repro.service.executor import (
    BatchExecutor,
    BatchGroup,
    InlineExecutor,
    create_executor,
    plan_batch,
)
from repro.service.async_server import AsyncServiceServer, make_async_server, serve_async
from repro.service.elastic import ElasticPoolExecutor
from repro.service.pool import PooledExecutor
from repro.service.registry import DatasetRegistry, DatasetSpec
from repro.service.server import StructurednessService, make_server, serve
from repro.service.wire import (
    MUTATING_OPS,
    OPS,
    ServiceRequest,
    dump_jsonl,
    error_result,
    parse_jsonl,
    parse_request,
    parse_result,
    serialize_request,
    serialize_result,
)

__all__ = [
    "BatchExecutor",
    "BatchGroup",
    "InlineExecutor",
    "PooledExecutor",
    "ElasticPoolExecutor",
    "create_executor",
    "plan_batch",
    "DatasetRegistry",
    "DatasetSpec",
    "StructurednessService",
    "make_server",
    "serve",
    "AsyncServiceServer",
    "make_async_server",
    "serve_async",
    "OPS",
    "MUTATING_OPS",
    "ServiceRequest",
    "parse_request",
    "serialize_request",
    "parse_result",
    "serialize_result",
    "error_result",
    "parse_jsonl",
    "dump_jsonl",
]
