"""A multiprocessing worker pool for batch groups.

Each worker process holds one :class:`~repro.service.executor.InlineExecutor`
— and through it a :class:`~repro.service.registry.DatasetRegistry` and a
session cache — created by the pool initialiser and kept for the worker's
lifetime.  A job is one batch *group* (requests sharing a dataset, rule
and solver); the graph → matrix → signature-table chain for a dataset is
therefore built at most once per worker, and jobs only ship scalar data
across the process boundary: wire dicts out, result envelopes back.

Determinism: a group always runs in submission order inside one worker's
session, exactly as :class:`InlineExecutor` runs it in-process, so pooled
payloads are bit-identical to inline payloads — only wall-clock changes.
Use ``InlineExecutor`` directly where that equivalence is under test.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, List, Optional

from repro.service.executor import BatchExecutor, BatchGroup, InlineExecutor

__all__ = ["PooledExecutor"]

#: The calling process never touches this; it exists in pool workers only.
_WORKER_EXECUTOR: Optional[InlineExecutor] = None


def _initialise_worker(solver_time_limit: Optional[float]) -> None:
    """Pool initialiser: build the worker's long-lived inline engine."""
    global _WORKER_EXECUTOR
    _WORKER_EXECUTOR = InlineExecutor(solver_time_limit=solver_time_limit)


def _run_group(request_dicts: List[Dict[str, object]]) -> List[Dict[str, object]]:
    """Worker entry point: parse one group's wire dicts and run them."""
    from repro.service.wire import parse_request

    assert _WORKER_EXECUTOR is not None, "pool worker was not initialised"
    return _WORKER_EXECUTOR.run_group([parse_request(d) for d in request_dicts])


class PooledExecutor(BatchExecutor):
    """Fan batch groups out over a pool of long-lived worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (the concurrency of independent groups).
    solver_time_limit:
        Forwarded to every worker's session construction.
    start_method:
        A :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Workers
        import everything they need, so all methods work; ``fork`` starts
        fastest where available.
    """

    def __init__(
        self,
        workers: int = 4,
        solver_time_limit: Optional[float] = None,
        start_method: Optional[str] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._solver_time_limit = solver_time_limit
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._jobs = 0
        # Guards lazy pool creation and the job counter: concurrent HTTP
        # handler threads sharing one executor must not each spawn a pool
        # (the loser's worker processes would leak until interpreter GC).
        self._lock = threading.Lock()

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = self._context.Pool(
                    processes=self.workers,
                    initializer=_initialise_worker,
                    initargs=(self._solver_time_limit,),
                )
            return self._pool

    def _execute_groups(self, groups: List[BatchGroup]) -> List[List[Dict[str, object]]]:
        if not groups:
            return []
        payloads = [[request.to_dict() for request in group.requests] for group in groups]
        pool = self._ensure_pool()
        with self._lock:
            self._jobs += len(payloads)
        # chunksize=1 spreads groups across workers instead of batching
        # them onto a few; a group is already a coarse unit of work.
        return pool.map(_run_group, payloads, chunksize=1)

    def stats(self) -> Dict[str, object]:
        return {
            "mode": "pool",
            "workers": self.workers,
            "start_method": self._context.get_start_method(),
            "jobs_dispatched": self._jobs,
        }

    def close(self) -> None:
        """Shut the worker processes down (the executor can be reused after)."""
        with self._lock:
            if self._pool is not None:
                self._pool.terminate()
                self._pool.join()
                self._pool = None
