"""A multiprocessing worker pool for batch groups.

Each worker process holds one :class:`~repro.service.executor.InlineExecutor`
— and through it a :class:`~repro.service.registry.DatasetRegistry` and a
session cache — created by the pool initialiser and kept for the worker's
lifetime.  A job is one batch *group* (requests sharing a dataset, rule
and solver); the graph → matrix → signature-table chain for a dataset is
therefore built at most once per worker, and jobs only ship scalar data
across the process boundary: wire dicts out, result envelopes back.

Determinism: a group always runs in submission order inside one worker's
session, exactly as :class:`InlineExecutor` runs it in-process, so pooled
payloads are bit-identical to inline payloads — only wall-clock changes.
Use ``InlineExecutor`` directly where that equivalence is under test.

Mutations: the executor keeps an ordered *mutation log* (one entry per
successful ``mutate`` request).  Workers are anonymous — a job cannot be
addressed to a specific process — so instead of broadcasting eagerly,
every job ships the current log and each worker replays the entries it
has not applied yet before running the job's requests.  Dataset state in
a worker is therefore always the fold of the same mutation sequence the
inline executor applied, whichever worker a group lands on, and
mutation results (generation counters, graph sizes) stay bit-identical.

Deliberate trade-off: the full log ships with every job (workers are
anonymous, so the executor cannot know which entries a given worker
still needs), making per-job overhead linear in the number of mutations
applied over the pool's lifetime.  Mutations are the rare operation in
this workload and a log entry is a small wire dict; a mutation-heavy
deployment should recycle the executor periodically or shard datasets
across executors.

Known corner of the bit-identity invariant: the ``cached`` flag (only)
of a refinement repeated *within one batch* across a **no-op** mutation
of its own dataset is worker-placement-dependent — the repeat lands in
a later wave whose job may reach a worker with a cold session cache,
while the inline executor's single warm session reports ``cached:
true`` (a graph-changing mutation invalidates both sides identically,
so only no-op mutations expose this).  Every other payload field stays
bit-identical; exact parity here needs addressable workers (consistent
group→worker routing), which ``multiprocessing.Pool`` cannot express.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import Dict, List, Optional, Tuple

from repro.service.executor import BatchExecutor, BatchGroup, InlineExecutor
from repro.service.wire import ServiceRequest
from repro.telemetry import current as current_telemetry

__all__ = ["PooledExecutor"]

#: The calling process never touches these; they exist in pool workers only.
_WORKER_EXECUTOR: Optional[InlineExecutor] = None
#: Position in the executor's mutation log this worker has applied.
_WORKER_APPLIED_SEQ: int = 0


def _initialise_worker(
    solver_time_limit: Optional[float], jobs: Optional[object] = None
) -> None:
    """Pool initialiser: build the worker's long-lived inline engine.

    ``jobs`` is the worker's intra-query parallelism budget, passed on to
    every session the worker opens — the pool's total concurrency is
    ``workers × jobs``.
    """
    global _WORKER_EXECUTOR, _WORKER_APPLIED_SEQ
    _WORKER_EXECUTOR = InlineExecutor(solver_time_limit=solver_time_limit, jobs=jobs)
    _WORKER_APPLIED_SEQ = 0


def _apply_job(
    executor: InlineExecutor, applied_seq: int, payload: Dict[str, object]
) -> Tuple[List[Dict[str, object]], int]:
    """Catch up on the mutation log, then run one group on ``executor``.

    ``payload`` carries the group's wire dicts plus the mutation log as
    ``(seq, wire dict)`` pairs; entries with a sequence number beyond
    ``applied_seq`` are replayed into the executor's registry (their
    envelopes are discarded — the phase that originated a mutation
    already produced its envelope).  ``payload["applied_seq"]`` marks the
    group itself as a mutation so the executing worker does not replay it
    again later: replaying a remove-then-insert of the same triple twice
    would count spurious changes and skew the generation counter.

    Returns ``(result envelopes, new applied_seq)``.  Shared by the
    fixed-size pool workers here and the elastic workers in
    :mod:`repro.service.elastic` so both fold the same mutation sequence.
    """
    from repro.service.wire import parse_request

    for seq, mutation in payload.get("mutations", ()):
        if seq > applied_seq:
            [replayed] = executor.run_group([parse_request(mutation)])
            if not replayed.get("ok"):
                # Only environmental failures can land here (the original
                # mutation succeeded elsewhere, and validated mutations are
                # total): fail the job loudly rather than skip the entry —
                # a worker that silently misses a mutation would serve
                # diverging answers forever.
                raise RuntimeError(
                    f"pool worker failed to replay mutation #{seq}: "
                    f"{replayed.get('error')}"
                )
            applied_seq = seq
    results = executor.run_group([parse_request(d) for d in payload["requests"]])
    applied = payload.get("applied_seq")
    if applied is not None:
        applied_seq = max(applied_seq, applied)
    return results, applied_seq


def _run_group(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Worker entry point: one :func:`_apply_job` against the worker state."""
    global _WORKER_APPLIED_SEQ

    assert _WORKER_EXECUTOR is not None, "pool worker was not initialised"
    results, _WORKER_APPLIED_SEQ = _apply_job(
        _WORKER_EXECUTOR, _WORKER_APPLIED_SEQ, payload
    )
    return results


class PooledExecutor(BatchExecutor):
    """Fan batch groups out over a pool of long-lived worker processes.

    Parameters
    ----------
    workers:
        Number of worker processes (the concurrency of independent groups).
    solver_time_limit:
        Forwarded to every worker's session construction.
    start_method:
        A :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``) or ``None`` for the platform default.  Workers
        import everything they need, so all methods work; ``fork`` starts
        fastest where available.
    jobs:
        Intra-query parallelism budget passed through to every worker's
        sessions (``None`` defers to ``REPRO_JOBS`` in the worker).
    drain_timeout:
        Seconds :meth:`close` waits for in-flight jobs to drain before
        escalating to ``terminate()``.
    """

    def __init__(
        self,
        workers: int = 4,
        solver_time_limit: Optional[float] = None,
        start_method: Optional[str] = None,
        jobs: Optional[object] = None,
        drain_timeout: float = 10.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._solver_time_limit = solver_time_limit
        self._session_jobs = jobs
        self._drain_timeout = drain_timeout
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._jobs = 0
        # The ordered mutation history: (seq, wire dict) per successful
        # mutate request.  Shipped with every job; workers replay unseen
        # entries so their registries converge on the inline state.  The
        # log outlives close(): a recycled pool's fresh workers replay it
        # from the start before taking jobs.
        self._mutation_log: List[Tuple[int, Dict[str, object]]] = []
        self._mutation_seq = 0
        # Guards lazy pool creation, the job counter and the mutation log:
        # concurrent HTTP handler threads sharing one executor must not
        # each spawn a pool (the loser's worker processes would leak until
        # interpreter GC) nor interleave log appends.
        self._lock = threading.Lock()
        # Serialises whole mutations (seq allocation → worker apply → log
        # append).  Without it, two concurrent mutations could append to
        # the log in completion order rather than sequence order, and a
        # worker that replays the higher sequence first would skip the
        # lower one forever — workers would silently diverge.
        self._mutation_lock = threading.Lock()

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = self._context.Pool(
                    processes=self.workers,
                    initializer=_initialise_worker,
                    initargs=(self._solver_time_limit, self._session_jobs),
                )
            return self._pool

    def _execute_groups(self, groups: List[BatchGroup]) -> List[List[Dict[str, object]]]:
        if not groups:
            return []
        with self._lock:
            log = list(self._mutation_log)
        payloads = [
            {
                "mutations": log,
                "requests": [request.to_dict() for request in group.requests],
            }
            for group in groups
        ]
        pool = self._ensure_pool()
        with self._lock:
            self._jobs += len(payloads)
        telemetry = current_telemetry()
        telemetry.incr("pool.round_trips", len(payloads))
        # chunksize=1 spreads groups across workers instead of batching
        # them onto a few; a group is already a coarse unit of work.
        with telemetry.span("pool.map"):
            return pool.map(_run_group, payloads, chunksize=1)

    def _execute_mutation(self, request: ServiceRequest) -> Dict[str, object]:
        """Run a mutation on one worker and append it to the shared log.

        The executing worker catches up on the prior log first, runs the
        mutation, and marks it applied; every other worker replays it from
        the log before its next job.  Failed mutations (e.g. a dataset
        with no graph stage) do not enter the log — they fail identically
        in every process, so there is nothing to converge.
        """
        pool = self._ensure_pool()
        # One mutation at a time: the log must grow in sequence order.
        # Mutations are the rare operation, and queries (pool.map jobs on
        # other threads) are not blocked by this lock.
        with self._mutation_lock:
            with self._lock:
                self._mutation_seq += 1
                seq = self._mutation_seq
                log = list(self._mutation_log)
                self._jobs += 1
            payload = {
                "mutations": log,
                "requests": [request.to_dict()],
                "applied_seq": seq,
            }
            telemetry = current_telemetry()
            telemetry.incr("pool.round_trips")
            with telemetry.span("pool.mutation"):
                [envelope] = pool.apply(_run_group, (payload,))
            result = envelope.get("result") or {}
            # Only graph-changing mutations enter the log: a no-op (added
            # == removed == 0) leaves every copy's generation unchanged,
            # so there is nothing to converge and no reason to ship and
            # replay it forever.
            if envelope.get("ok") and (result.get("added") or result.get("removed")):
                with self._lock:
                    self._mutation_log.append((seq, request.to_dict()))
        return envelope

    def stats(self) -> Dict[str, object]:
        """Pool-level counters: worker count, jobs dispatched, log length.

        ``jobs`` is the per-worker intra-query parallelism budget (every
        worker resolves the same setting), so the deployed topology is
        ``workers × jobs``.
        """
        from repro.parallel import resolve_jobs

        with self._lock:
            log_length = len(self._mutation_log)
        return {
            "mode": "pool",
            "workers": self.workers,
            "jobs": resolve_jobs(self._session_jobs),
            "start_method": self._context.get_start_method(),
            "jobs_dispatched": self._jobs,
            "mutations_logged": log_length,
        }

    def close(self) -> None:
        """Drain in-flight jobs, then shut the workers down (reusable after).

        Shutdown is graceful first: ``Pool.close()`` stops new submissions
        and lets every dispatched job finish, bounded by ``drain_timeout``
        seconds.  Only if the drain does not complete in time are the
        worker processes ``terminate()``d — so an orderly shutdown of a
        busy executor never drops work it already accepted.
        """
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.close()
        # Pool.join() has no timeout; bound it with a sacrificial thread.
        joiner = threading.Thread(target=pool.join, daemon=True)
        joiner.start()
        joiner.join(self._drain_timeout)
        if joiner.is_alive():
            current_telemetry().incr("pool.forced_terminations")
            pool.terminate()
            joiner.join(self._drain_timeout)
