"""Dependency-aware batch execution over the session facade.

A batch is a list of wire requests (:class:`~repro.service.wire.ServiceRequest`).
:func:`plan_batch` groups them by ``(dataset, rule, solver)`` — the unit
that shares a :class:`~repro.api.StructurednessSession` and therefore its
encoder, incremental sweep state and result cache.  Groups are independent
of each other, so an executor may run them concurrently; *within* a group
requests run in submission order against one session, which is what makes
results deterministic (and lets later requests hit the caches the earlier
ones warmed).

:class:`InlineExecutor` runs every group in the calling process; it is the
determinism baseline and the per-worker engine of the multiprocess pool in
:mod:`repro.service.pool`.  Both return one result envelope per request,
in the original submission order, regardless of grouping.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.api.session import StructurednessSession
from repro.exceptions import ReproError
from repro.service.registry import DatasetRegistry
from repro.service.wire import (
    MUTATING_OPS,
    ServiceRequest,
    dump_jsonl,
    error_result,
    parse_jsonl,
    parse_request,
    serialize_result,
)

__all__ = ["BatchGroup", "plan_batch", "BatchExecutor", "InlineExecutor", "create_executor"]


@dataclass
class BatchGroup:
    """Requests that share one session: same dataset, rule and solver."""

    key: Tuple[str, str, str]
    indices: List[int] = field(default_factory=list)
    requests: List[ServiceRequest] = field(default_factory=list)


def plan_batch(requests: Sequence[ServiceRequest]) -> List[BatchGroup]:
    """Group a batch by ``(dataset, rule, solver)``, first occurrence first.

    The plan is deterministic: group order follows each key's first
    appearance and requests keep their submission order inside a group, so
    every executor produces the same per-session call sequence.
    """
    groups: Dict[Tuple[str, str, str], BatchGroup] = {}
    for index, request in enumerate(requests):
        key = request.group_key
        group = groups.get(key)
        if group is None:
            group = groups[key] = BatchGroup(key=key)
        group.indices.append(index)
        group.requests.append(request)
    return list(groups.values())


class BatchExecutor:
    """Shared plumbing: parse → plan → execute groups → reorder envelopes.

    Subclasses implement :meth:`_execute_groups`; everything else (wire
    parsing, JSONL I/O, result ordering) lives here so inline and pooled
    execution differ only in *where* groups run.
    """

    def execute(self, requests: Sequence[object]) -> List[Dict[str, object]]:
        """Run a batch; returns one envelope per request, in input order.

        ``requests`` may mix :class:`ServiceRequest` objects, wire dicts
        and JSON strings.  A request that fails to parse yields an error
        envelope in its slot instead of poisoning the batch.

        A mutation is a barrier *for its own dataset*: a request before it
        (in batch order) observes the old state, a request after it the
        new one — regardless of how requests group into sessions.
        Requests on other datasets are unaffected by the mutation, so
        they coalesce into the earliest wave their own dataset's
        mutations allow, keeping each wave's grouped (and, in the pool,
        concurrent) execution as wide as possible.  Mutations themselves
        run between waves, sequentially in batch order.
        """
        return list(self.execute_stream(requests))

    def execute_stream(self, requests: Sequence[object]):
        """Run a batch lazily, yielding envelopes in submission order.

        Execution proceeds wave by wave (exactly as :meth:`execute` — the
        envelopes are bit-identical); an envelope is yielded as soon as it
        and every earlier slot are resolved, so streaming transports can
        put early results on the wire while later waves still compute.
        Because this is a generator, a slow consumer applies backpressure:
        the next wave only runs when the consumer asks for more.
        """
        parsed: List[Optional[ServiceRequest]] = []
        envelopes: List[Optional[Dict[str, object]]] = []
        for raw in requests:
            try:
                parsed.append(parse_request(raw))
                envelopes.append(None)
            except ReproError as error:
                parsed.append(None)
                envelopes.append(error_result(error))
        # Wave assignment: request r runs in the wave right after the
        # last preceding mutation of r's dataset (wave 0 if none).  This
        # is exactly as early as correctness allows — any global mutation
        # between that wave and r's batch position targets a different
        # dataset and cannot change r's answer.
        mutations: List[Tuple[int, ServiceRequest]] = []
        last_wave: Dict[str, int] = {}
        waves: List[List[Tuple[int, ServiceRequest]]] = [[]]
        for index, request in enumerate(parsed):
            if request is None:
                continue
            if request.op in MUTATING_OPS:
                mutations.append((index, request))
                last_wave[request.dataset.key] = len(mutations)
                waves.append([])
            else:
                waves[last_wave.get(request.dataset.key, 0)].append((index, request))
        emitted = 0
        for slot, wave in enumerate(waves):
            if wave:
                groups = plan_batch([r for _, r in wave])
                # plan_batch indexes into the wave subsequence; map back.
                for group in groups:
                    group.indices = [wave[i][0] for i in group.indices]
                for group, results in zip(groups, self._execute_groups(groups)):
                    for index, envelope in zip(group.indices, results):
                        envelopes[index] = envelope
            if slot < len(mutations):
                index, request = mutations[slot]
                envelopes[index] = self._execute_mutation(request)
            # Flush the resolved prefix: every slot before a hole belongs
            # to a later wave, so nothing already yielded can change.
            while emitted < len(envelopes) and envelopes[emitted] is not None:
                yield envelopes[emitted]
                emitted += 1
        # Every slot is now either a parse-error envelope or a wave result.
        while emitted < len(envelopes):
            yield envelopes[emitted]
            emitted += 1

    def execute_jsonl(self, text: str) -> str:
        """Run a JSONL batch document; returns a JSONL result document."""
        return dump_jsonl(self.execute(parse_jsonl(text)))

    def _execute_groups(self, groups: List[BatchGroup]) -> List[List[Dict[str, object]]]:
        raise NotImplementedError

    def _execute_mutation(self, request: ServiceRequest) -> Dict[str, object]:
        """Run one mutating request as its own single-request phase.

        The default runs it like any other (one-element) group; executors
        with distributed state override this to propagate the mutation to
        every copy of the dataset (see ``PooledExecutor``).
        """
        group = BatchGroup(key=request.group_key, indices=[0], requests=[request])
        return self._execute_groups([group])[0][0]

    def stats(self) -> Dict[str, object]:  # pragma: no cover - interface
        """Executor counters for ``/v1/stats`` (subclass responsibility)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release executor resources (worker processes, sessions)."""

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def execute_one(session: StructurednessSession, request: ServiceRequest) -> Dict[str, object]:
    """Run one wire request on a session; never raises for library errors."""
    try:
        method = getattr(session, request.op)
        return serialize_result(method(request.request), request)
    except ReproError as error:
        return error_result(error, request)


class InlineExecutor(BatchExecutor):
    """Run every group in the calling process, one session per group key.

    Sessions (and the datasets under them, via the registry) persist for
    the executor's lifetime, so successive ``execute`` calls keep their
    warmed caches — the same lifecycle a pool worker has.
    """

    def __init__(
        self,
        registry: Optional[DatasetRegistry] = None,
        solver_time_limit: Optional[float] = None,
        cache_results: bool = True,
        jobs: Optional[object] = None,
    ):
        self.registry = registry if registry is not None else DatasetRegistry()
        self._solver_time_limit = solver_time_limit
        self._cache_results = cache_results
        #: Parallelism budget handed to every session this executor opens
        #: (``None`` defers to the dataset handle / ``REPRO_JOBS``).
        self._jobs = jobs
        self._sessions: Dict[Tuple[str, str], StructurednessSession] = {}
        # Guards the session map: a ThreadingHTTPServer shares one inline
        # executor across handler threads, and a check-then-insert race
        # here would hand two threads two *different* sessions for the
        # same key — bypassing the session-level lock that guarantees
        # concurrent identical requests run one search.
        self._lock = threading.RLock()

    def session_for(self, request: ServiceRequest) -> StructurednessSession:
        """The executor's session for the request's (dataset, solver) pair."""
        key = (request.dataset.key, request.solver or "")
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = self._sessions[key] = StructurednessSession(
                    self.registry.get(request.dataset),
                    solver=request.solver,
                    solver_time_limit=self._solver_time_limit,
                    cache_results=self._cache_results,
                    jobs=self._jobs,
                )
            return session

    def run_group(self, requests: Sequence[ServiceRequest]) -> List[Dict[str, object]]:
        """Run one group's requests in order; used directly by pool workers."""
        results = []
        for request in requests:
            try:
                session = self.session_for(request)
            except ReproError as error:
                results.append(error_result(error, request))
                continue
            results.append(execute_one(session, request))
        return results

    def _execute_groups(self, groups: List[BatchGroup]) -> List[List[Dict[str, object]]]:
        return [self.run_group(group.requests) for group in groups]

    def stats(self) -> Dict[str, object]:
        """Registry counters plus one entry per live session (with backend)."""
        with self._lock:
            sessions = list(self._sessions.values())
        from repro.parallel import resolve_jobs

        return {
            "mode": "inline",
            "jobs": resolve_jobs(self._jobs),
            "registry": dict(self.registry.stats),
            "sessions": [session.describe() for session in sessions],
        }

    def close(self) -> None:
        """Drop every cached session (the registry and its datasets remain)."""
        with self._lock:
            self._sessions.clear()


def create_executor(
    workers: int = 1,
    solver_time_limit: Optional[float] = None,
    registry: Optional[DatasetRegistry] = None,
    start_method: Optional[str] = None,
    jobs: Optional[object] = None,
    max_workers: Optional[int] = None,
) -> BatchExecutor:
    """An executor sized to ``workers``: inline for 1, a process pool above.

    A shared ``registry`` only makes sense in-process; pool workers build
    their own, so passing one together with ``workers > 1`` is an error
    rather than a silent no-op.  ``jobs`` is each session's (or pool
    worker's) intra-query parallelism budget — with a pool, every worker
    gets the same budget, so total concurrency is ``workers × jobs``.

    ``max_workers`` (when given and greater than ``workers``) selects the
    *elastic* pool instead: worker processes autoscale between ``workers``
    and ``max_workers`` on queue depth, booting from snapshot-backed
    dataset specs and draining gracefully when idle (see
    :class:`repro.service.elastic.ElasticPoolExecutor`).
    """
    if max_workers is not None and max_workers > max(workers, 1):
        if registry is not None:
            raise ValueError(
                "a shared DatasetRegistry applies only to inline execution; "
                "elastic pool workers each hold their own registry"
            )
        from repro.service.elastic import ElasticPoolExecutor

        return ElasticPoolExecutor(
            min_workers=max(workers, 1),
            max_workers=max_workers,
            solver_time_limit=solver_time_limit,
            start_method=start_method,
            jobs=jobs,
        )
    if workers <= 1:
        return InlineExecutor(
            registry=registry, solver_time_limit=solver_time_limit, jobs=jobs
        )
    if registry is not None:
        raise ValueError(
            "a shared DatasetRegistry applies only to inline execution (workers=1); "
            "pool workers each hold their own registry"
        )
    from repro.service.pool import PooledExecutor

    return PooledExecutor(
        workers=workers,
        solver_time_limit=solver_time_limit,
        start_method=start_method,
        jobs=jobs,
    )
