"""Dataset specs and the per-process :class:`DatasetRegistry`.

The service layer cannot ship live :class:`~repro.api.Dataset` handles
across process boundaries — graphs and signature tables are heavy and the
handles hold locks.  Instead every wire request carries a small declarative
:class:`DatasetSpec` (a built-in generator name plus parameters, an
N-Triples path, or inline N-Triples text) and each worker process holds a
:class:`DatasetRegistry` that materialises the spec into a ``Dataset``
handle exactly once.  The graph → matrix → signature-table chain is then
built once per worker and reused across every job routed to it.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.api.dataset import Dataset, builtin_dataset_names
from repro.exceptions import RequestError

__all__ = ["DatasetSpec", "DatasetRegistry"]

#: JSON scalar types allowed as built-in generator parameters.
_SCALARS = (str, int, float, bool, type(None))


@dataclass(frozen=True)
class DatasetSpec:
    """A declarative, picklable description of one dataset.

    Exactly one of ``builtin`` / ``path`` / ``ntriples`` / ``snapshot``
    must be given:

    * ``builtin`` — a name from :func:`repro.api.builtin_dataset_names`,
      with ``params`` forwarded to the generator (``n_subjects``, ...);
    * ``path`` — an N-Triples file on disk;
    * ``ntriples`` — inline N-Triples source text;
    * ``snapshot`` — a snapshot directory written by ``Dataset.save`` /
      ``repro snapshot build``: the worker reopens the persisted artifact
      chain instead of re-parsing and rebuilding (the warm-start source;
      see DESIGN.md, "Persistence & snapshots").

    ``sort`` (an ``rdf:type`` URI restricting the subjects) applies to the
    N-Triples variants only — a snapshot is a prebuilt chain, restrict the
    dataset *before* saving it.  ``mmap`` applies to snapshots only and
    controls whether the worker maps the segments read-only from disk
    (``True``, the out-of-core default for artifacts written by
    ``Dataset.build_out_of_core``) or copies them onto the heap
    (``False``); leaving it ``None`` uses ``Dataset.load``'s default and
    keeps the spec's canonical key identical to pre-``mmap`` clients.
    Specs are frozen value objects; ``key`` is a canonical string used to
    group batch requests and to index registries.
    """

    builtin: Optional[str] = None
    path: Optional[str] = None
    ntriples: Optional[str] = None
    snapshot: Optional[str] = None
    sort: Optional[str] = None
    name: Optional[str] = None
    mmap: Optional[bool] = None
    params: Tuple[Tuple[str, object], ...] = field(default=())

    def validated(self) -> "DatasetSpec":
        """Check source exclusivity and parameter shapes; return ``self``."""
        sources = [
            s for s in ("builtin", "path", "ntriples", "snapshot")
            if getattr(self, s) is not None
        ]
        if len(sources) != 1:
            raise RequestError(
                "a dataset spec needs exactly one of 'builtin', 'path', 'ntriples' "
                f"or 'snapshot', got {sources or 'none'}"
            )
        if self.sort is not None and (self.builtin is not None or self.snapshot is not None):
            raise RequestError(
                "'sort' applies to N-Triples datasets, not built-in generators or snapshots"
            )
        if self.mmap is not None and self.snapshot is None:
            raise RequestError("'mmap' only applies to snapshot datasets")
        if self.params and self.builtin is None:
            raise RequestError("'params' only applies to built-in generator datasets")
        for key, value in self.params:
            if not isinstance(key, str) or not isinstance(value, _SCALARS):
                raise RequestError(
                    f"dataset params must map names to JSON scalars, got {key!r}={value!r}"
                )
        return self

    @classmethod
    def from_dict(cls, data: object) -> "DatasetSpec":
        """Build a spec from a wire dict (also accepts a bare builtin name)."""
        if isinstance(data, str):
            return cls(builtin=data).validated()
        if not isinstance(data, dict):
            raise RequestError(f"a dataset spec must be a name or an object, got {data!r}")
        unknown = set(data) - {
            "builtin", "path", "ntriples", "snapshot", "sort", "name", "mmap", "params"
        }
        if unknown:
            raise RequestError(f"unknown dataset spec fields: {', '.join(sorted(unknown))}")
        params = data.get("params") or {}
        if not isinstance(params, dict):
            raise RequestError(f"dataset 'params' must be an object, got {params!r}")
        mmap = data.get("mmap")
        if mmap is not None and not isinstance(mmap, bool):
            raise RequestError(f"dataset 'mmap' must be a boolean, got {mmap!r}")
        return cls(
            builtin=data.get("builtin"),
            path=data.get("path"),
            ntriples=data.get("ntriples"),
            snapshot=data.get("snapshot"),
            sort=data.get("sort"),
            name=data.get("name"),
            mmap=mmap,
            params=tuple(sorted(params.items())),
        ).validated()

    def to_dict(self) -> Dict[str, object]:
        """The spec's wire form (inverse of :meth:`from_dict`)."""
        payload: Dict[str, object] = {}
        for field_name in ("builtin", "path", "ntriples", "snapshot", "sort", "name", "mmap"):
            value = getattr(self, field_name)
            if value is not None:
                payload[field_name] = value
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @property
    def key(self) -> str:
        """A canonical string identity (stable across processes)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def build(self) -> Dataset:
        """Materialise the spec into a fresh :class:`Dataset` handle."""
        if self.builtin is not None:
            if self.builtin not in builtin_dataset_names():
                known = ", ".join(builtin_dataset_names()) or "(none)"
                raise RequestError(
                    f"unknown built-in dataset {self.builtin!r}; available: {known}"
                )
            return Dataset.builtin(self.builtin, **dict(self.params))
        if self.snapshot is not None:
            if self.mmap is None:
                return Dataset.load(self.snapshot, name=self.name or "")
            return Dataset.load(self.snapshot, name=self.name or "", mmap=self.mmap)
        if self.path is not None:
            return Dataset.from_ntriples(self.path, name=self.name or "", sort=self.sort)
        return Dataset.from_ntriples_text(
            self.ntriples or "", name=self.name or "inline", sort=self.sort
        )


class DatasetRegistry:
    """spec key → :class:`Dataset`, built once and shared for the process.

    This is the worker-side cache: a pool worker receives many jobs over
    its lifetime, and every job whose spec was seen before reuses the
    already-built graph → matrix → signature-table chain.  ``stats`` counts
    lookups and actual builds so tests can prove the reuse.
    """

    def __init__(self) -> None:
        self._datasets: Dict[str, Dataset] = {}
        self._specs: Dict[str, DatasetSpec] = {}
        self._lock = threading.RLock()
        self.stats: Dict[str, int] = {"lookups": 0, "builds": 0}

    def get(self, spec: DatasetSpec) -> Dataset:
        """The (cached) handle for ``spec``, building it on first use."""
        key = spec.key
        with self._lock:
            self.stats["lookups"] += 1
            dataset = self._datasets.get(key)
            if dataset is None:
                dataset = spec.build()
                self._datasets[key] = dataset
                self._specs[key] = spec
                self.stats["builds"] += 1
        return dataset

    def __len__(self) -> int:
        return len(self._datasets)

    def describe(self) -> list:
        """Serialisable inventory: every spec seen plus its build state.

        ``generation`` counts the mutations applied to this process's copy
        of the dataset — the pool's convergence invariant is that every
        worker reports the same generation for the same spec.  Datasets
        reopened from a snapshot additionally carry a ``snapshot`` entry
        (path + on-disk format version) so ``/v1/datasets`` shows their
        provenance, ``parallelism`` reports each handle's resolved
        jobs/shards configuration so load tests can verify the deployed
        topology, and ``residency`` breaks each built stage down into
        heap-resident versus mmap-backed bytes (see
        :meth:`Dataset.residency`) so operators can see how much of a
        worker's data actually lives on disk.
        """
        from repro.parallel import resolve_jobs

        with self._lock:
            entries = []
            for key, dataset in self._datasets.items():
                entry = {
                    "spec": self._specs[key].to_dict(),
                    "name": dataset.name,
                    "generation": dataset.generation,
                    "table_built": dataset.stats["table_builds"] > 0
                    or dataset._table is not None,
                    "parallelism": {
                        "jobs": resolve_jobs(getattr(dataset, "jobs", None)),
                        "shards": getattr(dataset, "shards", 1),
                    },
                    "residency": dataset.residency(),
                }
                provenance = dataset.snapshot_provenance
                if provenance is not None:
                    entry["snapshot"] = provenance
                entries.append(entry)
            return entries
