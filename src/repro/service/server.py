"""A stdlib HTTP front-end over the batch executor.

Routes (all payloads JSON):

* ``POST /v1/evaluate`` / ``/v1/refine`` / ``/v1/lowest_k`` / ``/v1/sweep``
  — one wire request body (the ``op`` field is implied by the path); the
  request fields may be nested under ``"request"`` or spelled inline.
* ``POST /v1/mutate`` — apply a triple delta (``{"dataset": ...,
  "add": [[s, p, o], ...], "remove": [...]}``; literals spelled
  ``"\\"text\\""``) to the server's copy of the dataset.  Downstream
  matrix/signature artifacts are incrementally patched and session result
  caches invalidated; with ``--workers > 1`` the mutation is replayed
  into every pool worker's registry (via the executor's mutation log), so
  follow-up queries are consistent whichever worker serves them.  In a
  batch, a mutation acts as a barrier for its dataset: requests before
  it see the old graph, requests after it the new one (queries on other
  datasets are not serialised behind it).
* ``POST /v1/batch`` — ``{"requests": [...]}`` or a JSONL body
  (``Content-Type: application/x-ndjson``); responds with
  ``{"results": [one envelope per request, in order]}``.
* ``GET /v1/datasets`` — built-in dataset names plus everything the
  server's registry has materialised (inline mode; with ``--workers > 1``
  the datasets live inside pool workers, so ``loaded`` stays empty).
* ``GET /v1/stats`` — server counters and the executor's stats.  In
  inline mode that includes one entry per session with its resolved
  solver backend and cache-hit/solver-call counts; in pooled mode the
  per-session detail lives in the workers and the stats report the
  pool-level view (worker count, jobs dispatched).
* ``GET /v1/metrics`` — a deterministic JSON snapshot of the
  observability spine: the service's always-on telemetry (HTTP status
  counters, watch-stream counters) plus the process-wide
  :func:`repro.telemetry.current` spine (dataset builds/patches, solver
  spans, ... — populated when ``REPRO_TRACE`` is set).
* ``POST /v1/watch`` — a streaming JSONL watch over one dataset (inline
  servers only): ``{"dataset": ..., "rules": ["Cov"], "theta": "3/4",
  "max_events": 3, "duration_s": 10}``.  The response streams one JSON
  object per :class:`~repro.api.watch.WatchEvent` as mutations land
  (plus ``heartbeat`` lines while idle) until ``max_events`` events were
  sent or ``duration_s`` elapsed; the connection closes to mark the end
  of the stream.
* ``GET /healthz`` — liveness probe.

Every response envelope carries a per-request ``request_id`` (also the
``X-Request-Id`` header) and ``server_time_ms``; both live at the
envelope's top level, so the deterministic ``result`` payloads stay
bit-identical across transports.  4xx/5xx responses are counted in the
service telemetry even when the access log is quiet (``--verbose`` off).

Malformed requests (unknown op/rule/dataset/solver, out-of-range θ or k)
map to structured ``400`` bodies via :func:`repro.service.wire.error_result`
— never a traceback; unexpected failures map to ``500`` with the same
shape.  The server is a ``ThreadingHTTPServer``: the locks on ``Dataset``
and ``StructurednessSession`` make concurrent requests against shared
sessions safe.
"""

from __future__ import annotations

import json
import math
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.api.dataset import builtin_dataset_names
from repro.exceptions import ReproError, RequestError
from repro.service.executor import BatchExecutor, create_executor
from repro.service.registry import DatasetSpec
from repro.service.wire import OPS, error_result, parse_request
from repro.telemetry import Telemetry, current as current_telemetry

__all__ = ["StructurednessService", "ServiceServer", "make_server", "serve"]

_JSON = "application/json"
_NDJSON = "application/x-ndjson"


class _UnsupportedTransferEncoding(RequestError):
    """A request body arrived with a Transfer-Encoding the server cannot
    decode (maps to ``411 Length Required`` instead of the generic 400)."""


class StructurednessService:
    """The transport-independent request handling behind the HTTP routes."""

    def __init__(self, executor: Optional[BatchExecutor] = None, workers: int = 1,
                 solver_time_limit: Optional[float] = None,
                 jobs: Optional[object] = None):
        self.executor = executor if executor is not None else create_executor(
            workers=workers, solver_time_limit=solver_time_limit, jobs=jobs
        )
        self._lock = threading.Lock()
        self.counters: Dict[str, int] = {
            "http_requests": 0,
            "ok_responses": 0,
            "error_responses": 0,
        }
        #: Always-on service telemetry (independent of ``REPRO_TRACE``):
        #: HTTP status-class counters, access-log lines and watch-stream
        #: counters land here so 4xx/5xx are observable even when the
        #: access log is quiet.  Served by ``GET /v1/metrics``.
        self.telemetry = Telemetry(enabled=True)
        self._request_seq = 0

    def _count(self, ok: bool) -> None:
        with self._lock:
            self.counters["http_requests"] += 1
            self.counters["ok_responses" if ok else "error_responses"] += 1

    def next_request_id(self) -> str:
        """A fresh, monotonically increasing per-server request id."""
        with self._lock:
            self._request_seq += 1
            return f"req-{self._request_seq:08d}"

    # ------------------------------------------------------------------ #
    # Route handlers: each returns (http_status, payload dict)
    # ------------------------------------------------------------------ #
    def handle_op(self, op: str, body: Dict[str, object]) -> Tuple[int, Dict[str, object]]:
        """One single-op POST: run the request and unwrap its envelope."""
        try:
            request = parse_request(dict(body, op=op))
        except ReproError as error:
            return 400, error_result(error)
        envelope = self.executor.execute([request])[0]
        status = 200 if envelope.get("ok") else int(envelope.get("status", 500))
        return status, envelope

    def handle_batch(self, body: object, ndjson: bool = False) -> Tuple[int, Dict[str, object]]:
        """A whole batch; per-request failures stay inside their envelope.

        Both spellings have identical semantics: a request that fails to
        parse (one NDJSON line, one list element) yields an error envelope
        in its slot — it never poisons the rest of the batch.
        """
        try:
            if ndjson:
                text = body if isinstance(body, str) else ""
                requests: list = [
                    line for line in (raw.strip() for raw in text.splitlines())
                    if line and not line.startswith("#")
                ]
            else:
                if not isinstance(body, dict) or not isinstance(body.get("requests"), list):
                    raise RequestError("a batch body must be {'requests': [...]} or JSONL")
                requests = list(body["requests"])
            envelopes = self.executor.execute(requests)
        except ReproError as error:
            return 400, error_result(error)
        return 200, {"ok": True, "count": len(envelopes), "results": envelopes}

    def handle_datasets(self) -> Tuple[int, Dict[str, object]]:
        """``GET /v1/datasets``: builtin names + the registry inventory.

        Registry entries carry spec, name, generation and — for datasets
        reopened from a snapshot — the snapshot path and format version.
        """
        payload: Dict[str, object] = {"builtin": list(builtin_dataset_names())}
        registry = getattr(self.executor, "registry", None)
        payload["loaded"] = registry.describe() if registry is not None else []
        return 200, payload

    def handle_stats(self) -> Tuple[int, Dict[str, object]]:
        """``GET /v1/stats``: HTTP counters plus the executor's stats."""
        with self._lock:
            server_counters = dict(self.counters)
        return 200, {"server": server_counters, "executor": self.executor.stats()}

    def handle_metrics(self) -> Tuple[int, Dict[str, object]]:
        """``GET /v1/metrics``: the observability spine as deterministic JSON.

        ``server`` holds the legacy request counters, ``service`` the
        always-on service telemetry snapshot and ``process`` the
        process-wide :func:`repro.telemetry.current` spine (disabled and
        empty unless ``REPRO_TRACE`` is set or a library caller enabled
        it).  Key order is stable and sorted; only the recorded wall-clock
        values vary between runs.
        """
        with self._lock:
            server_counters = dict(self.counters)
        payload: Dict[str, object] = {
            "server": server_counters,
            "service": self.telemetry.snapshot(),
            "process": current_telemetry().snapshot(),
        }
        # Executors with their own always-on telemetry (the elastic pool's
        # scale.worker_boots / scale.up_events / ...) surface it here, so
        # scale events are observable over plain GET /v1/metrics.
        executor_telemetry = getattr(self.executor, "telemetry", None)
        if executor_telemetry is not None:
            payload["executor"] = executor_telemetry.snapshot()
        return 200, payload

    def watch_session(self, body: object):
        """Build the watch behind ``POST /v1/watch``: ``(WatchSession, params)``.

        Validates the body and resolves the dataset through the inline
        executor's registry — the same handles ``/v1/mutate`` patches, so
        streamed events reflect mutations sent over sibling connections.
        Raises :class:`~repro.exceptions.RequestError` on a pooled
        executor (the datasets live inside worker processes where no
        streaming thread can observe them) and for malformed bodies.
        """
        from repro.api.watch import WatchSession

        registry = getattr(self.executor, "registry", None)
        if registry is None:
            raise RequestError(
                "watch requires an inline server (workers=1); with a worker pool "
                "the datasets live inside the pool processes"
            )
        if not isinstance(body, dict):
            raise RequestError("the watch body must be a JSON object")
        if "dataset" not in body:
            raise RequestError("a watch body needs a 'dataset' spec")
        known = {
            "dataset", "rules", "theta", "shards",
            "max_events", "duration_s", "poll_interval_s", "heartbeat_s",
        }
        unknown = set(body) - known
        if unknown:
            raise RequestError(f"unknown watch fields {sorted(unknown)}")
        rules = body["rules"] if body.get("rules") is not None else ["Cov"]
        if not isinstance(rules, (list, tuple)) or not rules:
            raise RequestError("rules must be a non-empty list of rule specs")

        def _timing(field: str, default: float) -> float:
            # Explicit zeros must reach the positivity check below — an
            # ``or default`` would silently turn them into the default.
            value = body.get(field)
            return default if value is None else float(value)

        try:
            params = {
                "max_events": int(_timing("max_events", 0)),
                "duration_s": _timing("duration_s", 10.0),
                "poll_interval_s": _timing("poll_interval_s", 0.05),
                "heartbeat_s": _timing("heartbeat_s", 2.0),
            }
        except (TypeError, ValueError, OverflowError) as error:
            raise RequestError(f"invalid watch timing field: {error}") from None
        if params["max_events"] < 0:
            raise RequestError(
                f"max_events must be >= 0 (0 streams until the deadline), "
                f"got {params['max_events']}"
            )
        for field in ("duration_s", "poll_interval_s", "heartbeat_s"):
            value = params[field]
            # NaN slips through a plain `<= 0` (every comparison against
            # NaN is false) and the stream would then exit instantly
            # because `time.monotonic() < deadline` is false too; +inf
            # would never terminate.  Both are caller mistakes.
            if not math.isfinite(value) or value <= 0:
                raise RequestError(
                    f"watch durations and intervals must be positive finite "
                    f"numbers, got {field}={value!r}"
                )
        dataset = registry.get(DatasetSpec.from_dict(body["dataset"]))
        watch = WatchSession(
            dataset, tuple(rules), theta=body.get("theta"), shards=body.get("shards")
        )
        return watch, params

    def close(self) -> None:
        """Shut the underlying executor down."""
        self.executor.close()


class _Handler(BaseHTTPRequestHandler):
    # Derived from the package version so releases cannot drift it.
    server_version = f"repro-structuredness/{'.'.join(__version__.split('.')[:2])}"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> StructurednessService:
        return self.server.service  # type: ignore[attr-defined]

    def _begin_request(self) -> None:
        """Stamp the request with its id and start time (once per request)."""
        self._request_id = self.service.next_request_id()
        self._started = time.perf_counter()
        # Set once a status line has been sent: after that point an error
        # must never try to send a second response on the same connection.
        self._response_started = False

    def log_message(self, format: str, *args) -> None:
        # The access log is *always* routed through the service telemetry
        # (so quiet servers still count their traffic); printing to stderr
        # stays opt-in via --verbose.  Request ids make lines greppable
        # against the envelopes clients saw.
        self.service.telemetry.incr("http.access_log_lines")
        if getattr(self.server, "verbose", False):  # pragma: no cover
            request_id = getattr(self, "_request_id", "-")
            super().log_message(f"[{request_id}] {format}", *args)

    def _respond(self, status: int, payload: Dict[str, object]) -> None:
        request_id = getattr(self, "_request_id", None) or self.service.next_request_id()
        started = getattr(self, "_started", None)
        elapsed_ms = (
            round((time.perf_counter() - started) * 1000.0, 3) if started is not None else 0.0
        )
        payload = dict(payload, request_id=request_id, server_time_ms=elapsed_ms)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._response_started = True
        self.send_response(status)
        self.send_header("Content-Type", _JSON)
        self.send_header("Content-Length", str(len(body)))
        self.send_header("X-Request-Id", request_id)
        self.end_headers()
        self.wfile.write(body)
        self.service._count(200 <= status < 400)
        # 4xx/5xx are counted here unconditionally — the satellite fix for
        # the access log being dropped unless --verbose.
        self.service.telemetry.incr(f"http.status.{status // 100}xx")

    def _read_body(self) -> bytes:
        # A chunked request carries no Content-Length; silently reading an
        # empty body here used to surface as a misleading "needs a
        # 'dataset' spec" 400.  Name the unsupported encoding instead.
        encoding = (self.headers.get("Transfer-Encoding") or "").strip().lower()
        if encoding:
            raise _UnsupportedTransferEncoding(
                f"Transfer-Encoding {encoding!r} is not supported; "
                "send the body with a Content-Length header"
            )
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._begin_request()
        if self.path == "/v1/datasets":
            self._respond(*self.service.handle_datasets())
        elif self.path == "/v1/stats":
            self._respond(*self.service.handle_stats())
        elif self.path == "/v1/metrics":
            self._respond(*self.service.handle_metrics())
        elif self.path == "/healthz":
            self._respond(200, {"ok": True})
        else:
            self._respond(404, {"ok": False, "error": {"type": "NotFound", "message": self.path}})

    def do_POST(self) -> None:  # noqa: N802 (stdlib naming)
        self._begin_request()
        try:
            raw = self._read_body()
            content_type = (self.headers.get("Content-Type") or _JSON).split(";")[0].strip()
            ndjson = content_type in (_NDJSON, "application/jsonl", "text/plain")
            if not self.path.startswith("/v1/"):
                self._respond(
                    404, {"ok": False, "error": {"type": "NotFound", "message": self.path}}
                )
                return
            route = self.path[len("/v1/"):]
            if route == "batch":
                body = raw.decode("utf-8") if ndjson else json.loads(raw or b"{}")
                self._respond(*self.service.handle_batch(body, ndjson=ndjson))
            elif route == "watch":
                body = json.loads(raw or b"{}")
                self._stream_watch(body)
            elif route in OPS:
                body = json.loads(raw or b"{}")
                if not isinstance(body, dict):
                    raise RequestError("the request body must be a JSON object")
                self._respond(*self.service.handle_op(route, body))
            else:
                self._respond(
                    404, {"ok": False, "error": {"type": "NotFound", "message": self.path}}
                )
        except json.JSONDecodeError as error:
            self._respond(400, error_result(RequestError(f"body is not valid JSON: {error}")))
        except _UnsupportedTransferEncoding as error:
            self._respond(411, dict(error_result(error), status=411))
        except ReproError as error:
            self._respond(400, error_result(error))
        except Exception as error:  # pragma: no cover - defensive 500
            if self._response_started:
                # The status line is gone (a streaming route failed after
                # its headers); a second send_response would corrupt the
                # connection.  The streaming routes already framed their
                # own terminal error, so there is nothing left to send.
                return
            self._respond(500, error_result(error))

    def _stream_watch(self, body: object) -> None:
        """``POST /v1/watch``: stream JSONL WatchEvents until done.

        The response has no Content-Length — the connection closes when
        ``max_events`` events were streamed or ``duration_s`` elapsed,
        which is how JSONL consumers detect the end.  Heartbeat lines
        keep the stream visibly alive between mutations.  Setup errors
        (bad body, pooled executor) surface as normal 400 envelopes
        before any streaming starts; a failure *after* the headers went
        out is framed as a terminal ``{"kind": "error", ...}`` JSONL line
        (the HTTP status is already on the wire, so a 500 envelope would
        corrupt the response) and the connection closes.
        """
        watch, params = self.service.watch_session(body)  # ReproError -> 400 upstream
        request_id = self._request_id
        telemetry = self.service.telemetry
        telemetry.incr("watch.streams")
        self._response_started = True
        self.send_response(200)
        self.send_header("Content-Type", _NDJSON)
        self.send_header("X-Request-Id", request_id)
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        deadline = time.monotonic() + params["duration_s"]
        last_line = time.monotonic()
        sent = 0
        ok = True
        try:
            while time.monotonic() < deadline:
                for event in watch.poll():
                    self._write_event(event, request_id)
                    telemetry.incr("watch.events_streamed")
                    sent += 1
                    last_line = time.monotonic()
                    if params["max_events"] and sent >= params["max_events"]:
                        return
                now = time.monotonic()
                if now - last_line >= params["heartbeat_s"]:
                    self._write_event(watch.heartbeat(), request_id)
                    last_line = now
                time.sleep(min(params["poll_interval_s"], max(0.0, deadline - now)))
        except (BrokenPipeError, ConnectionResetError):  # client hangup
            ok = False
            telemetry.incr("watch.client_disconnects")
        except Exception as error:
            # Mid-stream failure (e.g. a poll raising): emit a terminal
            # error line in the JSONL framing and let the close mark EOF.
            ok = False
            telemetry.incr("watch.stream_errors")
            try:
                line = json.dumps(
                    dict(error_result(error), kind="error", request_id=request_id),
                    sort_keys=True,
                ) + "\n"
                self.wfile.write(line.encode("utf-8"))
                self.wfile.flush()
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass
        finally:
            watch.close()
            self.service._count(ok)

    def _write_event(self, event, request_id: str) -> None:
        payload = dict(event.to_dict(), request_id=request_id)
        line = json.dumps(payload, sort_keys=True) + "\n"
        self.wfile.write(line.encode("utf-8"))
        self.wfile.flush()


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`StructurednessService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: StructurednessService,
                 verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    @property
    def url(self) -> str:
        """The server's base URL (useful with ``port=0`` ephemeral binds)."""
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def close(self) -> None:
        """Stop serving, release the socket and close the service."""
        self.shutdown()
        self.server_close()
        self.service.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    solver_time_limit: Optional[float] = None,
    executor: Optional[BatchExecutor] = None,
    verbose: bool = False,
    jobs: Optional[object] = None,
) -> ServiceServer:
    """Bind a service server (``port=0`` picks an ephemeral free port).

    ``jobs`` sets each session's (or pool worker's) intra-query
    parallelism budget; ``/v1/stats`` reports the resolved value.
    """
    service = StructurednessService(
        executor=executor, workers=workers, solver_time_limit=solver_time_limit,
        jobs=jobs,
    )
    return ServiceServer((host, port), service, verbose=verbose)


def serve(
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 1,
    solver_time_limit: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[object] = None,
) -> int:
    """Run the HTTP service until interrupted (the ``repro serve`` command)."""
    server = make_server(
        host, port, workers=workers, solver_time_limit=solver_time_limit, verbose=verbose,
        jobs=jobs,
    )
    print(f"repro service listening on {server.url}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.server_close()
        server.service.close()
    return 0
