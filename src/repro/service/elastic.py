"""An elastic multiprocessing worker pool: autoscaling on queue depth.

:class:`ElasticPoolExecutor` serves the same contract as
:class:`~repro.service.pool.PooledExecutor` — batch groups fan out over
long-lived worker processes, each holding an
:class:`~repro.service.executor.InlineExecutor` (and through it a
:class:`~repro.service.registry.DatasetRegistry` plus a session cache) —
but the worker count is *elastic*: a scaler thread watches the backlog of
unfinished jobs and

* **scales up** towards ``max_workers`` whenever jobs are queued faster
  than the live workers drain them, and
* **scales down** towards ``min_workers`` by sending a *drain* sentinel
  once the pool has been idle for ``idle_timeout_s`` — a worker that
  reads the sentinel finishes whatever job it is on, acknowledges, and
  exits cleanly (exit code 0, never a terminate).

Elasticity is practical because worker boot is nearly free when dataset
specs are snapshot-backed: a fresh worker's registry reopens the
persisted artifact chain via ``{"snapshot": path}`` specs in ~0.1 s
instead of re-parsing and rebuilding (the PR 5 warm start), so spawning
for a traffic burst and draining afterwards costs almost nothing.

Determinism: workers are anonymous and pull jobs off one shared queue,
so the same ordered *mutation log* scheme as the fixed pool applies —
every job ships the ``(seq, wire dict)`` history and a worker replays the
entries it has not folded yet before touching the job (the shared
:func:`repro.service.pool._apply_job` helper).  A worker booted
mid-traffic therefore converges on exactly the state every older worker
has, and payloads stay bit-identical to inline execution whichever — and
however many — workers served them.

Scale events are counted in the executor's always-on
:class:`~repro.telemetry.Telemetry` (``scale.up`` / ``scale.down`` /
``scale.worker_boots`` / ``scale.worker_drains``), mirrored into the
process spine, reported by :meth:`ElasticPoolExecutor.stats` and served
over ``GET /v1/metrics``.

:meth:`close` is graceful by construction: drain sentinels queue
*behind* any in-flight jobs, so accepted work completes before the
workers exit; only workers that overrun ``drain_timeout`` are escalated
to ``terminate()``.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from concurrent.futures import Future
from typing import Dict, List, Optional, Tuple

from repro.service.executor import BatchExecutor, BatchGroup, InlineExecutor
from repro.service.pool import _apply_job
from repro.service.wire import ServiceRequest
from repro.telemetry import Telemetry, current as current_telemetry

__all__ = ["ElasticPoolExecutor"]

#: Sentinel a worker interprets as "finish the current job, then exit".
_DRAIN = None


def _elastic_worker_main(
    inbound, outbound, worker_id: int,
    solver_time_limit: Optional[float], jobs: Optional[object],
) -> None:
    """Worker process body: boot an inline engine, serve jobs until drained.

    Exceptions never escape a job — they come back as ``("error", job_id,
    message)`` tuples so the parent can resolve the job's future instead
    of hanging on a silently dead worker.
    """
    executor = InlineExecutor(solver_time_limit=solver_time_limit, jobs=jobs)
    applied_seq = 0
    outbound.put(("ready", worker_id, None))
    while True:
        item = inbound.get()
        if item is _DRAIN:
            outbound.put(("drained", worker_id, None))
            return
        job_id, payload = item
        try:
            results, applied_seq = _apply_job(executor, applied_seq, payload)
            outbound.put(("result", job_id, results))
        except BaseException as error:  # noqa: BLE001 - must answer the job
            outbound.put(("error", job_id, f"{type(error).__name__}: {error}"))


class ElasticPoolExecutor(BatchExecutor):
    """A worker pool that autoscales between ``min_workers`` and ``max_workers``.

    Parameters
    ----------
    min_workers:
        The floor: the pool never drains below this many workers (booted
        lazily on first use).
    max_workers:
        The ceiling the scaler may grow to under backlog.
    solver_time_limit:
        Forwarded to every worker's session construction.
    start_method:
        A :mod:`multiprocessing` start method or ``None`` for the
        platform default (``fork`` boots fastest where available).
    jobs:
        Intra-query parallelism budget per worker session; deployed
        concurrency is ``live_workers × jobs``.
    idle_timeout_s:
        How long the pool must be completely idle before one surplus
        worker is asked to drain (one per interval, so scale-down is
        gradual).
    scale_interval_s:
        The scaler thread's decision cadence.
    drain_timeout:
        Seconds :meth:`close` waits for a graceful worker exit before
        escalating to ``terminate()``.
    """

    def __init__(
        self,
        min_workers: int = 1,
        max_workers: int = 4,
        solver_time_limit: Optional[float] = None,
        start_method: Optional[str] = None,
        jobs: Optional[object] = None,
        idle_timeout_s: float = 2.0,
        scale_interval_s: float = 0.02,
        drain_timeout: float = 10.0,
    ):
        if min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {min_workers}")
        if max_workers < min_workers:
            raise ValueError(
                f"max_workers must be >= min_workers, got {max_workers} < {min_workers}"
            )
        self.min_workers = min_workers
        self.max_workers = max_workers
        self._solver_time_limit = solver_time_limit
        self._session_jobs = jobs
        self._idle_timeout_s = idle_timeout_s
        self._scale_interval_s = scale_interval_s
        self._drain_timeout = drain_timeout
        self._context = (
            multiprocessing.get_context(start_method)
            if start_method
            else multiprocessing.get_context()
        )
        #: Always-on scale/lifecycle telemetry, served via ``/v1/metrics``.
        self.telemetry = Telemetry(enabled=True)
        # Guards every piece of mutable pool state below.
        self._lock = threading.Lock()
        # Serialises whole mutations (seq allocation → apply → log append),
        # exactly as in PooledExecutor: the log must grow in sequence order.
        self._mutation_lock = threading.Lock()
        self._mutation_log: List[Tuple[int, Dict[str, object]]] = []
        self._mutation_seq = 0
        self._started = False
        self._closing = False
        self._inbound = None
        self._outbound = None
        self._workers: Dict[int, multiprocessing.Process] = {}
        self._worker_seq = 0
        self._draining = 0
        self._futures: Dict[int, Future] = {}
        self._job_seq = 0
        self._jobs_dispatched = 0
        self._last_busy = time.monotonic()
        self._peak_workers = 0
        self._scale_up_events = 0
        self._scale_down_events = 0
        self._collector: Optional[threading.Thread] = None
        self._scaler: Optional[threading.Thread] = None
        self._scaler_stop = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_started(self) -> None:
        with self._lock:
            if self._started:
                return
            self._started = True
            self._closing = False
            self._scaler_stop.clear()
            self._inbound = self._context.Queue()
            self._outbound = self._context.Queue()
            self._collector = threading.Thread(
                target=self._collect, name="elastic-collector", daemon=True
            )
            self._collector.start()
            self._scaler = threading.Thread(
                target=self._autoscale, name="elastic-scaler", daemon=True
            )
            self._scaler.start()
            for _ in range(self.min_workers):
                self._spawn_locked()

    def _spawn_locked(self) -> None:
        """Boot one worker (caller holds ``self._lock``)."""
        self._worker_seq += 1
        worker_id = self._worker_seq
        process = self._context.Process(
            target=_elastic_worker_main,
            args=(
                self._inbound, self._outbound, worker_id,
                self._solver_time_limit, self._session_jobs,
            ),
            name=f"repro-elastic-{worker_id}",
            daemon=True,
        )
        process.start()
        self._workers[worker_id] = process
        self._peak_workers = max(self._peak_workers, len(self._workers))
        self.telemetry.incr("scale.worker_boots")
        current_telemetry().incr("scale.worker_boots")

    def _collect(self) -> None:
        """Route worker answers to futures; account for drained workers."""
        while True:
            kind, key, value = self._outbound.get()
            if kind == "stop":
                return
            if kind == "ready":
                self.telemetry.incr("scale.workers_ready")
                continue
            if kind == "drained":
                with self._lock:
                    process = self._workers.pop(key, None)
                    self._draining = max(0, self._draining - 1)
                if process is not None:
                    process.join(timeout=5)
                self.telemetry.incr("scale.worker_drains")
                current_telemetry().incr("scale.worker_drains")
                continue
            with self._lock:
                future = self._futures.pop(key, None)
                self._last_busy = time.monotonic()
            if future is None:  # pragma: no cover - job raced with close()
                continue
            if kind == "result":
                future.set_result(value)
            else:
                future.set_exception(RuntimeError(f"elastic worker failed: {value}"))

    def _autoscale(self) -> None:
        """The scaler loop: grow on backlog, drain one worker per idle window."""
        while not self._scaler_stop.wait(self._scale_interval_s):
            with self._lock:
                if not self._started or self._closing:
                    continue
                backlog = len(self._futures)
                effective = len(self._workers) - self._draining
                if backlog > effective and effective < self.max_workers:
                    spawn = min(backlog, self.max_workers) - effective
                    for _ in range(spawn):
                        self._spawn_locked()
                    self._scale_up_events += 1
                    self.telemetry.incr("scale.up")
                    current_telemetry().incr("scale.up")
                elif (
                    backlog == 0
                    and effective > self.min_workers
                    and time.monotonic() - self._last_busy >= self._idle_timeout_s
                ):
                    # One drain per idle window: gradual, never below min.
                    self._inbound.put(_DRAIN)
                    self._draining += 1
                    self._last_busy = time.monotonic()
                    self._scale_down_events += 1
                    self.telemetry.incr("scale.down")
                    current_telemetry().incr("scale.down")

    # ------------------------------------------------------------------ #
    # Job submission
    # ------------------------------------------------------------------ #
    def _submit(self, payload: Dict[str, object]) -> Future:
        future: Future = Future()
        with self._lock:
            self._job_seq += 1
            job_id = self._job_seq
            self._futures[job_id] = future
            self._jobs_dispatched += 1
            self._last_busy = time.monotonic()
        self._inbound.put((job_id, payload))
        return future

    def _execute_groups(self, groups: List[BatchGroup]) -> List[List[Dict[str, object]]]:
        if not groups:
            return []
        self._ensure_started()
        with self._lock:
            log = list(self._mutation_log)
        telemetry = current_telemetry()
        telemetry.incr("pool.round_trips", len(groups))
        with telemetry.span("pool.map"):
            futures = [
                self._submit({
                    "mutations": log,
                    "requests": [request.to_dict() for request in group.requests],
                })
                for group in groups
            ]
            return [future.result() for future in futures]

    def _execute_mutation(self, request: ServiceRequest) -> Dict[str, object]:
        """Run a mutation on one worker and append it to the shared log.

        Identical to the fixed pool: the executing worker catches up on the
        prior log, applies the mutation, marks it applied; every other
        worker — including any booted later — replays it from the log
        before its next job.  No-op mutations stay out of the log.
        """
        self._ensure_started()
        with self._mutation_lock:
            with self._lock:
                self._mutation_seq += 1
                seq = self._mutation_seq
                log = list(self._mutation_log)
            payload = {
                "mutations": log,
                "requests": [request.to_dict()],
                "applied_seq": seq,
            }
            telemetry = current_telemetry()
            telemetry.incr("pool.round_trips")
            with telemetry.span("pool.mutation"):
                [envelope] = self._submit(payload).result()
            result = envelope.get("result") or {}
            if envelope.get("ok") and (result.get("added") or result.get("removed")):
                with self._lock:
                    self._mutation_log.append((seq, request.to_dict()))
        return envelope

    # ------------------------------------------------------------------ #
    # Introspection & shutdown
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Pool topology, backlog and the scale-event counters."""
        from repro.parallel import resolve_jobs

        with self._lock:
            return {
                "mode": "elastic",
                "min_workers": self.min_workers,
                "max_workers": self.max_workers,
                "workers": len(self._workers),
                "draining": self._draining,
                "peak_workers": self._peak_workers,
                "backlog": len(self._futures),
                "jobs": resolve_jobs(self._session_jobs),
                "start_method": self._context.get_start_method(),
                "jobs_dispatched": self._jobs_dispatched,
                "mutations_logged": len(self._mutation_log),
                "scale_up_events": self._scale_up_events,
                "scale_down_events": self._scale_down_events,
            }

    def close(self) -> None:
        """Drain every worker gracefully; terminate only on timeout.

        Drain sentinels queue behind in-flight jobs, so accepted work
        finishes before the workers exit.  The executor can be reused
        afterwards — the mutation log survives, and fresh workers replay
        it from the start before taking jobs.
        """
        with self._lock:
            if not self._started:
                return
            self._closing = True
            workers = list(self._workers.values())
        self._scaler_stop.set()
        if self._scaler is not None:
            self._scaler.join(timeout=5)
        for _ in workers:
            self._inbound.put(_DRAIN)
        deadline = time.monotonic() + self._drain_timeout
        for process in workers:
            process.join(timeout=max(0.0, deadline - time.monotonic()))
        for process in workers:
            if process.is_alive():
                self.telemetry.incr("scale.forced_terminations")
                current_telemetry().incr("pool.forced_terminations")
                process.terminate()
                process.join(timeout=5)
        # The collector drains remaining acks, then stops on the sentinel.
        self._outbound.put(("stop", None, None))
        if self._collector is not None:
            self._collector.join(timeout=5)
        for queue in (self._inbound, self._outbound):
            queue.close()
            queue.cancel_join_thread()
        with self._lock:
            for future in self._futures.values():
                if not future.done():  # pragma: no cover - abnormal close
                    future.set_exception(RuntimeError("elastic pool closed"))
            self._futures.clear()
            self._workers.clear()
            self._draining = 0
            self._inbound = self._outbound = None
            self._collector = self._scaler = None
            self._started = False
            self._closing = False
