"""An asyncio HTTP front-end with admission control and elastic workers.

This is the service tier built for traffic: the same routes and envelope
contract as the threaded :mod:`repro.service.server` (the HTTP test
suite runs against both), served by a single-threaded asyncio event loop
that multiplexes thousands of connections, in front of the same
executors — inline, fixed pool, or the elastic autoscaling pool from
:mod:`repro.service.elastic`.

What the async tier adds over the threaded server:

* **Request admission and queueing.**  Compute requests (the ``POST
  /v1/*`` routes) enter a bounded pending queue (``pending_limit``).
  When the queue is full the server answers ``429 Too Many Requests``
  with a ``Retry-After`` header *immediately* — it never stalls the
  client and never drops a request it admitted.  Admitted requests wait
  on a concurrency semaphore and run on a thread pool that bridges to
  the (blocking) executor.  Cheap ``GET`` routes (``/healthz``,
  ``/v1/stats``, ``/v1/metrics``, ``/v1/datasets``) bypass admission so
  the service stays observable while saturated.
* **Per-dataset mutation routing.**  A ``POST /v1/mutate`` serialises
  behind other mutations *of the same dataset* only (one asyncio lock
  per dataset key); queries and mutations of other datasets proceed
  concurrently.
* **Backpressure-aware JSONL streaming.**  ``POST /v1/batch`` with
  ``Accept: application/x-ndjson`` streams one result envelope per line
  as waves complete (the executor's ``execute_stream``), pausing compute
  when the client reads slowly (a bounded hand-off queue + ``await
  writer.drain()``); ``POST /v1/watch`` streams watch events with the
  same flow control.  A failure after the headers went out is framed as
  a terminal ``{"kind": "error", ...}`` line, never a second status line.
* **Elastic workers.**  With ``min_workers``/``max_workers`` the
  executor autoscales worker processes on queue depth, booting from the
  snapshot store and draining idle workers gracefully; scale events are
  counted in telemetry and served over ``GET /v1/metrics``.

Responses carry the same envelope extras as the threaded server
(``request_id`` + ``X-Request-Id``, ``server_time_ms``) and the same
status mapping (structured 400s via
:func:`repro.service.wire.error_result`, 404 for unknown routes, 411 for
``Transfer-Encoding`` bodies, 500 with an envelope for the unexpected).
Every connection is served ``Connection: close``: one request, one
response (or one stream), EOF as the end-of-stream marker.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from repro import __version__
from repro.exceptions import ReproError, RequestError
from repro.service.executor import BatchExecutor, create_executor
from repro.service.registry import DatasetSpec
from repro.service.server import StructurednessService, _JSON, _NDJSON
from repro.service.wire import MUTATING_OPS, OPS, error_result

__all__ = ["AsyncServiceServer", "make_async_server", "serve_async"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
}
_SERVER_HEADER = f"repro-structuredness/{'.'.join(__version__.split('.')[:2])}"
#: Upper bound on accepted request bodies (inline N-Triples datasets are
#: the legitimate large payload; 64 MiB is far above every test corpus).
_MAX_BODY_BYTES = 64 * 1024 * 1024


class _HttpError(Exception):
    """An error with a definite HTTP status, raised before any response."""

    def __init__(self, status: int, payload: Dict[str, object]):
        super().__init__(payload.get("error", {}).get("message", ""))
        self.status = status
        self.payload = payload


def _client_error(status: int, error: BaseException) -> _HttpError:
    return _HttpError(status, dict(error_result(error), status=status))


class _Request:
    """One parsed HTTP request: method, path, headers (lower-cased), body."""

    __slots__ = ("method", "path", "headers", "body")

    def __init__(self, method: str, path: str, headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body


class AsyncServiceServer:
    """The asyncio front-end bound to one :class:`StructurednessService`.

    The server owns its event loop.  :meth:`start` runs the loop on a
    background thread and returns once the socket is bound (handy for
    tests and embedding); :meth:`wait` blocks until :meth:`close` — the
    ``repro serve --async`` path.  ``url`` reports the bound address,
    which makes ``port=0`` ephemeral binds usable.
    """

    def __init__(
        self,
        address: Tuple[str, int],
        service: StructurednessService,
        verbose: bool = False,
        pending_limit: int = 64,
        concurrency: Optional[int] = None,
        retry_after_s: int = 1,
    ):
        if pending_limit < 1:
            raise ValueError(f"pending_limit must be >= 1, got {pending_limit}")
        self._host, self._port = address
        self.service = service
        self.verbose = verbose
        self.pending_limit = pending_limit
        self.concurrency = concurrency if concurrency is not None else 8
        self.retry_after_s = retry_after_s
        # Admission state: touched only from the event loop, no lock needed.
        self._pending = 0
        self._accepted = 0
        self._rejected = 0
        self._peak_pending = 0
        self._slots: Optional[asyncio.Semaphore] = None
        self._dataset_locks: Dict[str, asyncio.Lock] = {}
        # The bridge to the blocking executor: a few extra threads beyond
        # the admission concurrency so watch streams never starve queries.
        self._threads = ThreadPoolExecutor(
            max_workers=self.concurrency + 4, thread_name_prefix="repro-async"
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._thread: Optional[threading.Thread] = None
        self._bound: "threading.Event" = threading.Event()
        self._shutdown: Optional[asyncio.Event] = None
        self._stopped = threading.Event()
        self._bound_address: Optional[Tuple[str, int]] = None
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        """The server's base URL (valid once the socket is bound)."""
        if self._bound_address is None:
            raise RuntimeError("the async server is not started")
        host, port = self._bound_address
        return f"http://{host}:{port}"

    def start(self) -> "AsyncServiceServer":
        """Run the event loop on a background thread; return once bound."""
        if self._thread is not None:
            raise RuntimeError("the async server is already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-async-server", daemon=True
        )
        self._thread.start()
        self._bound.wait()
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            raise self._startup_error
        return self

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`close`."""
        self._run()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server loop has stopped (True when it has)."""
        return self._stopped.wait(timeout)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        finally:
            self._stopped.set()
            self._bound.set()  # unblock start() even on a bind failure

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._slots = asyncio.Semaphore(self.concurrency)
        self._shutdown = asyncio.Event()
        try:
            self._server = await asyncio.start_server(
                self._handle_connection, self._host, self._port
            )
        except OSError as error:
            self._startup_error = error
            return
        sockets = self._server.sockets or ()
        for sock in sockets:
            host, port = sock.getsockname()[:2]
            self._bound_address = (host, port)
            break
        self._bound.set()
        try:
            await self._shutdown.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()

    def close(self) -> None:
        """Stop the loop, release the socket and close the service."""
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and not loop.is_closed():
            try:
                loop.call_soon_threadsafe(shutdown.set)
            except RuntimeError:  # pragma: no cover - loop torn down already
                pass
        self._stopped.wait(timeout=10)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self._threads.shutdown(wait=False)
        self.service.close()

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        try:
            request_line = await reader.readline()
        except ValueError as error:  # line longer than the stream limit
            raise _client_error(400, RequestError(f"request line too long: {error}"))
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            raise _client_error(400, RequestError("malformed HTTP request line"))
        method, path = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            try:
                raw = await reader.readline()
            except ValueError as error:
                raise _client_error(400, RequestError(f"header line too long: {error}"))
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        encoding = headers.get("transfer-encoding", "").strip().lower()
        if encoding:
            # Same contract as the threaded server: name the unsupported
            # encoding instead of silently reading an empty body.
            raise _client_error(411, RequestError(
                f"Transfer-Encoding {encoding!r} is not supported; "
                "send the body with a Content-Length header"
            ))
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _client_error(400, RequestError("Content-Length is not an integer"))
        if length > _MAX_BODY_BYTES:
            raise _client_error(413, RequestError(
                f"request body of {length} bytes exceeds the {_MAX_BODY_BYTES}-byte limit"
            ))
        body = b""
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise _client_error(400, RequestError("request body was truncated"))
        return _Request(method, path, headers, body)

    def _write_head(
        self, writer: asyncio.StreamWriter, status: int,
        headers: Tuple[Tuple[str, str], ...],
    ) -> None:
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}"]
        lines.append(f"Server: {_SERVER_HEADER}")
        for name, value in headers:
            lines.append(f"{name}: {value}")
        lines.append("Connection: close")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, payload: Dict[str, object],
        request_id: str, started: float,
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        elapsed_ms = round((time.perf_counter() - started) * 1000.0, 3)
        payload = dict(payload, request_id=request_id, server_time_ms=elapsed_ms)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self._write_head(writer, status, (
            ("Content-Type", _JSON),
            ("Content-Length", str(len(body))),
            ("X-Request-Id", request_id),
        ) + extra_headers)
        writer.write(body)
        await writer.drain()
        self._account(status)

    def _account(self, status: int) -> None:
        """Mirror the threaded server's per-response counters."""
        self.service._count(200 <= status < 400)
        self.service.telemetry.incr(f"http.status.{status // 100}xx")
        self.service.telemetry.incr("http.access_log_lines")

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request_id = self.service.next_request_id()
        started = time.perf_counter()
        try:
            try:
                request = await self._read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer, request_id, started)
            except _HttpError as error:
                await self._send_json(
                    writer, error.status, error.payload, request_id, started,
                    extra_headers=(
                        (("Retry-After", str(self.retry_after_s)),)
                        if error.status == 429 else ()
                    ),
                )
            except ReproError as error:
                await self._send_json(
                    writer, 400, error_result(error), request_id, started
                )
            except (ConnectionResetError, BrokenPipeError):
                self.service.telemetry.incr("http.client_disconnects")
            except Exception as error:  # noqa: BLE001 - defensive 500
                try:
                    await self._send_json(
                        writer, 500, error_result(error), request_id, started
                    )
                except (ConnectionResetError, BrokenPipeError, RuntimeError):
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: _Request, writer: asyncio.StreamWriter,
        request_id: str, started: float,
    ) -> None:
        method, path = request.method, request.path
        if method == "GET":
            # Observability routes bypass admission: they must answer even
            # when the compute queue is saturated.
            if path == "/v1/datasets":
                status, payload = await self._in_thread(self.service.handle_datasets)
            elif path == "/v1/stats":
                status, payload = await self._in_thread(self.service.handle_stats)
                payload = dict(payload, admission=self._admission_snapshot())
            elif path == "/v1/metrics":
                status, payload = await self._in_thread(self.service.handle_metrics)
                payload = dict(payload, admission=self._admission_snapshot())
            elif path == "/healthz":
                status, payload = 200, {"ok": True}
            else:
                status, payload = 404, {
                    "ok": False, "error": {"type": "NotFound", "message": path}
                }
            await self._send_json(writer, status, payload, request_id, started)
            return
        if method != "POST":
            await self._send_json(
                writer, 404,
                {"ok": False, "error": {"type": "NotFound", "message": f"{method} {path}"}},
                request_id, started,
            )
            return
        if not path.startswith("/v1/"):
            await self._send_json(
                writer, 404,
                {"ok": False, "error": {"type": "NotFound", "message": path}},
                request_id, started,
            )
            return
        route = path[len("/v1/"):]
        if route == "watch":
            body = self._parse_json_body(request.body)
            await self._stream_watch(body, writer, request_id)
            return
        if route != "batch" and route not in OPS:
            await self._send_json(
                writer, 404,
                {"ok": False, "error": {"type": "NotFound", "message": path}},
                request_id, started,
            )
            return
        await self._admitted(
            self._run_compute(route, request, writer, request_id, started)
        )

    def _parse_json_body(self, raw: bytes) -> object:
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise _client_error(
                400, RequestError(f"body is not valid JSON: {error}")
            ) from None

    # ------------------------------------------------------------------ #
    # Admission control
    # ------------------------------------------------------------------ #
    def _admission_snapshot(self) -> Dict[str, object]:
        """The queue state served inside ``/v1/stats`` and ``/v1/metrics``."""
        return {
            "pending": self._pending,
            "pending_limit": self.pending_limit,
            "peak_pending": self._peak_pending,
            "concurrency": self.concurrency,
            "accepted": self._accepted,
            "rejected": self._rejected,
            "retry_after_s": self.retry_after_s,
        }

    async def _admitted(self, work) -> None:
        """Run a compute coroutine under the bounded pending queue.

        ``pending`` counts admitted-but-unfinished requests (queued and
        running).  At the limit, new arrivals are refused with 429 +
        ``Retry-After`` instead of queueing without bound — the client
        gets an immediate, actionable answer and admitted work is never
        displaced.
        """
        if self._pending >= self.pending_limit:
            self._rejected += 1
            self.service.telemetry.incr("admission.rejected")
            work.close()  # never started; drop the coroutine cleanly
            raise _HttpError(429, {
                "ok": False,
                "status": 429,
                "error": {
                    "type": "ServiceOverloaded",
                    "message": (
                        f"the pending queue is full ({self.pending_limit} requests); "
                        f"retry after {self.retry_after_s}s"
                    ),
                },
            })
        self._pending += 1
        self._peak_pending = max(self._peak_pending, self._pending)
        self._accepted += 1
        self.service.telemetry.incr("admission.accepted")
        try:
            async with self._slots:
                await work
        finally:
            self._pending -= 1

    async def _in_thread(self, fn, *args):
        """Run a blocking callable on the bridge thread pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._threads, fn, *args
        )

    async def _run_compute(
        self, route: str, request: _Request, writer: asyncio.StreamWriter,
        request_id: str, started: float,
    ) -> None:
        content_type = (request.headers.get("content-type") or _JSON).split(";")[0].strip()
        ndjson_body = content_type in (_NDJSON, "application/jsonl", "text/plain")
        if route == "batch":
            body = request.body.decode("utf-8") if ndjson_body \
                else self._parse_json_body(request.body)
            accept = request.headers.get("accept", "")
            if _NDJSON in accept:
                await self._stream_batch(body, ndjson_body, writer, request_id)
                return
            status, payload = await self._in_thread(
                self.service.handle_batch, body, ndjson_body
            )
            await self._send_json(writer, status, payload, request_id, started)
            return
        body = self._parse_json_body(request.body)
        if not isinstance(body, dict):
            raise _client_error(400, RequestError("the request body must be a JSON object"))
        if route in MUTATING_OPS:
            # Per-dataset routing: mutations of one dataset serialise in
            # arrival order; everything else proceeds concurrently.
            try:
                key = DatasetSpec.from_dict(body.get("dataset")).key
            except ReproError:
                key = ""  # the executor will produce the structured 400
            lock = self._dataset_locks.setdefault(key, asyncio.Lock())
            async with lock:
                status, payload = await self._in_thread(
                    self.service.handle_op, route, body
                )
        else:
            status, payload = await self._in_thread(self.service.handle_op, route, body)
        await self._send_json(writer, status, payload, request_id, started)

    # ------------------------------------------------------------------ #
    # Streaming routes
    # ------------------------------------------------------------------ #
    async def _stream_batch(
        self, body: object, ndjson_body: bool,
        writer: asyncio.StreamWriter, request_id: str,
    ) -> None:
        """``POST /v1/batch`` with ``Accept: application/x-ndjson``.

        Streams one envelope per line, in submission order, as execution
        waves complete.  The hand-off queue is bounded and the producer
        thread blocks when it is full, so a slow client throttles compute
        instead of buffering the whole batch in memory; each line is
        followed by ``await drain()``.  EOF marks the end of the stream.
        """
        # Same request-list semantics as handle_batch: a malformed element
        # (one JSONL line, one list entry) becomes an error envelope in its
        # slot via the executor's parse stage — it never poisons the batch.
        if ndjson_body:
            text = body if isinstance(body, str) else ""
            requests: list = [
                line for line in (raw.strip() for raw in text.splitlines())
                if line and not line.startswith("#")
            ]
        else:
            if not isinstance(body, dict) or not isinstance(body.get("requests"), list):
                raise _client_error(
                    400, RequestError("a batch body must be {'requests': [...]} or JSONL")
                )
            requests = list(body["requests"])
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue(maxsize=16)

        def produce() -> None:
            try:
                for envelope in self.service.executor.execute_stream(requests):
                    asyncio.run_coroutine_threadsafe(
                        queue.put(("envelope", envelope)), loop
                    ).result()
                asyncio.run_coroutine_threadsafe(queue.put(("done", None)), loop).result()
            except BaseException as error:  # noqa: BLE001 - framed below
                try:
                    asyncio.run_coroutine_threadsafe(
                        queue.put(("error", error)), loop
                    ).result()
                except RuntimeError:  # pragma: no cover - loop gone mid-close
                    pass

        producer = loop.run_in_executor(self._threads, produce)
        self._write_head(writer, 200, (
            ("Content-Type", _NDJSON),
            ("X-Request-Id", request_id),
        ))
        status = 200
        try:
            while True:
                kind, value = await queue.get()
                if kind == "done":
                    break
                if kind == "error":
                    line = json.dumps(
                        dict(error_result(value), kind="error", request_id=request_id),
                        sort_keys=True,
                    )
                    writer.write(line.encode("utf-8") + b"\n")
                    await writer.drain()
                    status = 500
                    break
                writer.write(json.dumps(value, sort_keys=True).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            status = 499  # client went away; count as an error response
            self.service.telemetry.incr("http.client_disconnects")
        finally:
            self._account(status)
            # Let the producer finish (envelopes it still pushes are
            # consumed and discarded) so its thread is not leaked.
            while not producer.done():
                try:
                    kind, _ = await asyncio.wait_for(queue.get(), timeout=5)
                except asyncio.TimeoutError:  # pragma: no cover - stuck producer
                    break
                if kind in ("done", "error"):
                    break

    async def _stream_watch(
        self, body: object, writer: asyncio.StreamWriter, request_id: str
    ) -> None:
        """``POST /v1/watch``: the JSONL watch stream, asyncio edition.

        Polls run on the bridge thread pool; every line is followed by
        ``await drain()`` so a slow consumer pauses the stream instead of
        growing an unbounded buffer.  Mid-stream failures are framed as a
        terminal ``{"kind": "error", ...}`` line, exactly like the
        threaded server after its hardening.
        """
        # Setup errors (bad body, pooled executor) map to a 400 envelope
        # upstream because nothing has been written yet.
        watch, params = await self._in_thread(self.service.watch_session, body)
        telemetry = self.service.telemetry
        telemetry.incr("watch.streams")
        self._write_head(writer, 200, (
            ("Content-Type", _NDJSON),
            ("X-Request-Id", request_id),
        ))

        async def write_event(event) -> None:
            payload = dict(event.to_dict(), request_id=request_id)
            writer.write(json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n")
            await writer.drain()

        deadline = time.monotonic() + params["duration_s"]
        last_line = time.monotonic()
        sent = 0
        status = 200
        try:
            while time.monotonic() < deadline:
                events = await self._in_thread(watch.poll)
                for event in events:
                    await write_event(event)
                    telemetry.incr("watch.events_streamed")
                    sent += 1
                    last_line = time.monotonic()
                    if params["max_events"] and sent >= params["max_events"]:
                        return
                now = time.monotonic()
                if now - last_line >= params["heartbeat_s"]:
                    await write_event(watch.heartbeat())
                    last_line = now
                await asyncio.sleep(
                    min(params["poll_interval_s"], max(0.0, deadline - now))
                )
        except (ConnectionResetError, BrokenPipeError):
            status = 499
            telemetry.incr("watch.client_disconnects")
        except Exception as error:  # noqa: BLE001 - terminal error framing
            status = 500
            telemetry.incr("watch.stream_errors")
            try:
                line = json.dumps(
                    dict(error_result(error), kind="error", request_id=request_id),
                    sort_keys=True,
                )
                writer.write(line.encode("utf-8") + b"\n")
                await writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        finally:
            watch.close()
            self._account(status)


def make_async_server(
    host: str = "127.0.0.1",
    port: int = 0,
    workers: int = 1,
    max_workers: Optional[int] = None,
    solver_time_limit: Optional[float] = None,
    executor: Optional[BatchExecutor] = None,
    verbose: bool = False,
    jobs: Optional[object] = None,
    pending_limit: int = 64,
    concurrency: Optional[int] = None,
    retry_after_s: int = 1,
) -> AsyncServiceServer:
    """Build (but do not start) an async server; ``port=0`` is ephemeral.

    ``workers``/``max_workers`` size the executor exactly as
    :func:`repro.service.executor.create_executor` does: inline for 1,
    fixed pool for N, the elastic autoscaling pool when ``max_workers``
    exceeds ``workers``.  Call :meth:`AsyncServiceServer.start` (binds on
    a background thread, returns once listening) or
    :meth:`~AsyncServiceServer.serve_forever`.
    """
    if executor is None:
        executor = create_executor(
            workers=workers, solver_time_limit=solver_time_limit, jobs=jobs,
            max_workers=max_workers,
        )
    service = StructurednessService(executor=executor)
    return AsyncServiceServer(
        (host, port), service, verbose=verbose,
        pending_limit=pending_limit, concurrency=concurrency,
        retry_after_s=retry_after_s,
    )


def serve_async(
    host: str = "127.0.0.1",
    port: int = 8080,
    workers: int = 1,
    max_workers: Optional[int] = None,
    solver_time_limit: Optional[float] = None,
    verbose: bool = False,
    jobs: Optional[object] = None,
    pending_limit: int = 64,
    concurrency: Optional[int] = None,
) -> int:
    """Run the async HTTP service until interrupted (``repro serve --async``)."""
    server = make_async_server(
        host, port, workers=workers, max_workers=max_workers,
        solver_time_limit=solver_time_limit, verbose=verbose, jobs=jobs,
        pending_limit=pending_limit, concurrency=concurrency,
    )
    server.start()
    mode = (
        f"elastic {workers}..{max_workers} workers"
        if max_workers is not None and max_workers > workers
        else f"{workers} worker(s)"
    )
    print(
        f"repro service listening on {server.url} (async, {mode}, "
        f"pending_limit={server.pending_limit})",
        flush=True,
    )
    try:
        server.wait()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.close()
    return 0
