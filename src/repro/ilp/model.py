"""A small Integer Linear Programming modelling layer.

The paper solves the sort-refinement problem by handing an ILP instance
``A x ≤ b`` to a commercial solver (CPLEX).  This module provides the
modelling vocabulary the encoder needs — binary/integer/continuous
variables, linear expressions, and two-sided linear constraints — plus a
conversion to the dense/sparse arrays the backends consume.

The layer is deliberately tiny compared to a real modelling language, but
it is complete for our purposes and has no dependencies beyond NumPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ILPError

__all__ = ["Variable", "LinExpr", "Constraint", "Model", "MINIMIZE", "MAXIMIZE"]

MINIMIZE = "minimize"
MAXIMIZE = "maximize"

Number = Union[int, float]


class Variable:
    """A decision variable.

    Variables are identified by object identity; the ``name`` is only used
    for debugging and solution reporting.  Use :meth:`Model.add_variable`
    (or the ``add_binary``/``add_integer`` helpers) rather than creating
    instances directly, so the variable is registered with its model.
    """

    __slots__ = ("name", "lower", "upper", "is_integer", "index")

    def __init__(
        self,
        name: str,
        lower: Number = 0.0,
        upper: Number = math.inf,
        is_integer: bool = False,
        index: int = -1,
    ):
        if lower > upper:
            raise ILPError(f"variable {name!r} has empty bounds [{lower}, {upper}]")
        self.name = name
        self.lower = lower
        self.upper = upper
        self.is_integer = is_integer
        self.index = index

    # -- expression building ------------------------------------------------
    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0})

    def __add__(self, other: object) -> "LinExpr":
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other: object) -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: object) -> "LinExpr":
        return (-1 * self) + other

    def __mul__(self, factor: object) -> "LinExpr":
        return self._expr() * factor

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1

    def __le__(self, other: object) -> "Constraint":
        return self._expr() <= other

    def __ge__(self, other: object) -> "Constraint":
        return self._expr() >= other

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "int" if self.is_integer else "cont"
        return f"<Variable {self.name} [{self.lower}, {self.upper}] {kind}>"


class LinExpr:
    """A linear expression ``Σ coef_i · var_i + constant``."""

    __slots__ = ("coefficients", "constant")

    def __init__(self, coefficients: Optional[Mapping[Variable, float]] = None, constant: float = 0.0):
        self.coefficients: Dict[Variable, float] = dict(coefficients or {})
        self.constant = float(constant)

    @staticmethod
    def _coerce(value: object) -> "LinExpr":
        if isinstance(value, LinExpr):
            return LinExpr(value.coefficients, value.constant)
        if isinstance(value, Variable):
            return LinExpr({value: 1.0})
        if isinstance(value, (int, float)):
            return LinExpr({}, float(value))
        raise ILPError(f"cannot use {type(value).__name__} in a linear expression")

    @staticmethod
    def sum(terms: Iterable[object]) -> "LinExpr":
        """Sum variables/expressions/numbers into a single expression."""
        result = LinExpr()
        for term in terms:
            result = result + term
        return result

    def copy(self) -> "LinExpr":
        return LinExpr(self.coefficients, self.constant)

    def __add__(self, other: object) -> "LinExpr":
        other_expr = self._coerce(other)
        result = self.copy()
        for var, coef in other_expr.coefficients.items():
            result.coefficients[var] = result.coefficients.get(var, 0.0) + coef
        result.constant += other_expr.constant
        return result

    __radd__ = __add__

    def __sub__(self, other: object) -> "LinExpr":
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other: object) -> "LinExpr":
        return (self * -1) + other

    def __mul__(self, factor: object) -> "LinExpr":
        if isinstance(factor, (int, float)):
            return LinExpr(
                {var: coef * factor for var, coef in self.coefficients.items()},
                self.constant * factor,
            )
        raise ILPError("linear expressions can only be multiplied by numbers")

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1

    def __le__(self, other: object) -> "Constraint":
        diff = self - other
        return Constraint(diff, upper=0.0)

    def __ge__(self, other: object) -> "Constraint":
        diff = self - other
        return Constraint(diff, lower=0.0)

    def value(self, solution: Mapping[Variable, float]) -> float:
        """Evaluate the expression against a variable-value mapping."""
        return self.constant + sum(
            coef * solution.get(var, 0.0) for var, coef in self.coefficients.items()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.coefficients.items()]
        if self.constant:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts) if parts else "0"


@dataclass
class Constraint:
    """A two-sided linear constraint ``lower ≤ expression ≤ upper``.

    Constraints produced by ``expr <= rhs`` / ``expr >= rhs`` store the
    moved-over right-hand side inside the expression's constant; the
    ``lower``/``upper`` bounds then apply to the whole expression.
    """

    expression: LinExpr
    lower: float = -math.inf
    upper: float = math.inf
    name: str = ""

    def __post_init__(self) -> None:
        if self.lower > self.upper:
            raise ILPError(f"constraint {self.name!r} has empty bounds")

    def normalised(self) -> Tuple[Dict[Variable, float], float, float]:
        """Return (coefficients, lower, upper) with the constant folded into bounds."""
        constant = self.expression.constant
        return (
            dict(self.expression.coefficients),
            self.lower - constant if math.isfinite(self.lower) else self.lower,
            self.upper - constant if math.isfinite(self.upper) else self.upper,
        )

    def satisfied_by(self, solution: Mapping[Variable, float], tolerance: float = 1e-6) -> bool:
        """Check whether a candidate solution satisfies the constraint."""
        value = self.expression.value(solution)
        return self.lower - tolerance <= value <= self.upper + tolerance


class Model:
    """An ILP model: variables, constraints and an optional linear objective."""

    def __init__(self, name: str = ""):
        self.name = name
        self.variables: List[Variable] = []
        self.constraints: List[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self.sense: str = MINIMIZE

    # -- building ------------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: Number = 0.0,
        upper: Number = math.inf,
        is_integer: bool = False,
    ) -> Variable:
        """Create a variable, register it and return it."""
        variable = Variable(name, lower, upper, is_integer, index=len(self.variables))
        self.variables.append(variable)
        return variable

    def add_binary(self, name: str) -> Variable:
        """Create a 0/1 integer variable."""
        return self.add_variable(name, 0, 1, is_integer=True)

    def add_integer(self, name: str, lower: Number = 0, upper: Number = math.inf) -> Variable:
        """Create a general integer variable."""
        return self.add_variable(name, lower, upper, is_integer=True)

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (optionally renaming it) and return it."""
        if name:
            constraint.name = name
        for var in constraint.expression.coefficients:
            if not isinstance(var, Variable):
                raise ILPError("constraints may only mention Variable objects")
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expression: object, sense: str = MINIMIZE) -> None:
        """Set the linear objective and optimisation sense."""
        if sense not in (MINIMIZE, MAXIMIZE):
            raise ILPError(f"unknown optimisation sense {sense!r}")
        self.objective = LinExpr._coerce(expression)
        self.sense = sense

    # -- inspection ------------------------------------------------------------
    @property
    def n_variables(self) -> int:
        """Number of registered variables."""
        return len(self.variables)

    @property
    def n_constraints(self) -> int:
        """Number of registered constraints."""
        return len(self.constraints)

    @property
    def n_integer_variables(self) -> int:
        """Number of integer (including binary) variables."""
        return sum(1 for v in self.variables if v.is_integer)

    def statistics(self) -> Dict[str, int]:
        """Return size statistics (useful for the scalability experiments)."""
        nonzeros = sum(len(c.expression.coefficients) for c in self.constraints)
        return {
            "variables": self.n_variables,
            "integer_variables": self.n_integer_variables,
            "constraints": self.n_constraints,
            "nonzeros": nonzeros,
        }

    def check_solution(self, values: Mapping[Variable, float], tolerance: float = 1e-6) -> bool:
        """Verify bounds, integrality and every constraint for a candidate solution."""
        for variable in self.variables:
            value = values.get(variable, 0.0)
            if value < variable.lower - tolerance or value > variable.upper + tolerance:
                return False
            if variable.is_integer and abs(value - round(value)) > tolerance:
                return False
        return all(c.satisfied_by(values, tolerance) for c in self.constraints)

    # -- matrix form -----------------------------------------------------------
    def to_arrays(self, sparse: bool = True) -> Dict[str, object]:
        """Convert the model to the arrays used by the SciPy backends.

        Returns a dict with objective vector ``c`` (sign-adjusted so the
        problem is always a minimisation), constraint matrix ``A`` (a sparse
        CSR matrix by default — the sort-refinement encodings can have tens
        of thousands of rows and columns), constraint bounds ``cl``/``cu``,
        variable bounds ``xl``/``xu`` and the integrality vector.
        """
        from scipy import sparse as sp

        n = self.n_variables
        c = np.zeros(n)
        for var, coef in self.objective.coefficients.items():
            c[var.index] = coef
        if self.sense == MAXIMIZE:
            c = -c
        m = self.n_constraints
        rows: List[int] = []
        cols: List[int] = []
        values: List[float] = []
        cl = np.full(m, -np.inf)
        cu = np.full(m, np.inf)
        for row, constraint in enumerate(self.constraints):
            coefficients, lower, upper = constraint.normalised()
            for var, coef in coefficients.items():
                rows.append(row)
                cols.append(var.index)
                values.append(coef)
            cl[row] = lower
            cu[row] = upper
        matrix = sp.csr_matrix((values, (rows, cols)), shape=(m, n))
        A: object = matrix if sparse else matrix.toarray()
        xl = np.array([v.lower for v in self.variables], dtype=float)
        xu = np.array([v.upper for v in self.variables], dtype=float)
        integrality = np.array([1 if v.is_integer else 0 for v in self.variables])
        return {
            "c": c,
            "A": A,
            "cl": cl,
            "cu": cu,
            "xl": xl,
            "xu": xu,
            "integrality": integrality,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<Model{label}: {self.n_variables} variables "
            f"({self.n_integer_variables} integer), {self.n_constraints} constraints>"
        )
