"""A small ILP modelling layer with HiGHS and pure-Python backends.

Backends are looked up through a pluggable registry (``"highs"`` and
``"branch-and-bound"`` ship built in); see :mod:`repro.ilp.registry`.
"""

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.model import MAXIMIZE, MINIMIZE, Constraint, LinExpr, Model, Variable
from repro.ilp.registry import (
    DEFAULT_SOLVER,
    get_solver,
    register_solver,
    resolve_solver,
    solver_names,
    unregister_solver,
)
from repro.ilp.scipy_backend import ScipyMilpSolver, solve_with_scipy
from repro.ilp.solution import Solution, SolveStatus

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "MINIMIZE",
    "MAXIMIZE",
    "Solution",
    "SolveStatus",
    "ScipyMilpSolver",
    "solve_with_scipy",
    "BranchAndBoundSolver",
    "DEFAULT_SOLVER",
    "register_solver",
    "unregister_solver",
    "solver_names",
    "get_solver",
    "resolve_solver",
]
