"""A small ILP modelling layer with HiGHS and pure-Python backends."""

from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.model import MAXIMIZE, MINIMIZE, Constraint, LinExpr, Model, Variable
from repro.ilp.scipy_backend import ScipyMilpSolver, solve_with_scipy
from repro.ilp.solution import Solution, SolveStatus

__all__ = [
    "Model",
    "Variable",
    "LinExpr",
    "Constraint",
    "MINIMIZE",
    "MAXIMIZE",
    "Solution",
    "SolveStatus",
    "ScipyMilpSolver",
    "solve_with_scipy",
    "BranchAndBoundSolver",
]
