"""A pluggable registry of MILP solver backends.

The refinement searches historically hard-wired
:class:`~repro.ilp.scipy_backend.ScipyMilpSolver`; the registry decouples
the core algorithm from any particular backend.  A *solver factory* is any
callable returning an object with a ``solve(model) -> Solution`` method;
factories are registered under a short name and instantiated on demand:

>>> from repro.ilp import get_solver, register_solver
>>> solver = get_solver("highs", time_limit=30.0)
>>> solver.solve(model)                                   # doctest: +SKIP

Search entry points (and the :mod:`repro.api` session layer) accept either
a registered name or a ready-made solver instance; use
:func:`resolve_solver` to normalise the two spellings.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.exceptions import ILPError
from repro.ilp.branch_and_bound import BranchAndBoundSolver
from repro.ilp.scipy_backend import ScipyMilpSolver

__all__ = [
    "DEFAULT_SOLVER",
    "register_solver",
    "unregister_solver",
    "solver_names",
    "get_solver",
    "resolve_solver",
]

#: The backend used when no solver is specified anywhere.
DEFAULT_SOLVER = "highs"

#: name -> factory; a factory is called with the keyword options passed to
#: :func:`get_solver` and must return an object with ``solve(model)``.
_SOLVER_FACTORIES: Dict[str, Callable[..., object]] = {}


def register_solver(name: str, factory: Callable[..., object]) -> None:
    """Register ``factory`` under ``name`` (overwriting any previous entry).

    The factory is instantiated lazily by :func:`get_solver`; its keyword
    arguments are backend-specific (e.g. ``time_limit``).
    """
    if not name or not isinstance(name, str):
        raise ILPError(f"a solver name must be a non-empty string, got {name!r}")
    if not callable(factory):
        raise ILPError(f"the solver factory for {name!r} must be callable")
    _SOLVER_FACTORIES[name] = factory


def unregister_solver(name: str) -> None:
    """Remove a registered backend (missing names are ignored)."""
    _SOLVER_FACTORIES.pop(name, None)


def solver_names() -> tuple:
    """The registered backend names, sorted."""
    return tuple(sorted(_SOLVER_FACTORIES))


def get_solver(name: str = DEFAULT_SOLVER, **options) -> object:
    """Instantiate the backend registered under ``name`` with ``options``."""
    try:
        factory = _SOLVER_FACTORIES[name]
    except KeyError:
        import difflib

        known = ", ".join(solver_names()) or "(none)"
        close = difflib.get_close_matches(str(name), solver_names(), n=1)
        hint = f" (did you mean {close[0]!r}?)" if close else ""
        raise ILPError(
            f"unknown solver {name!r}; registered solvers: {known}{hint}"
        ) from None
    return factory(**options)


def resolve_solver(
    solver: object = None,
    time_limit: Optional[float] = None,
    **options,
) -> object:
    """Normalise a solver *spec* into a solver instance.

    ``solver`` may be ``None`` (use :data:`DEFAULT_SOLVER`), a registered
    name, or an already-constructed instance (anything with a ``solve``
    method), which is returned unchanged — ``time_limit``/``options`` then
    apply only to the name-based spellings.
    """
    if solver is None:
        solver = DEFAULT_SOLVER
    if isinstance(solver, str):
        if time_limit is not None:
            options.setdefault("time_limit", time_limit)
        return get_solver(solver, **options)
    if not hasattr(solver, "solve"):
        raise ILPError(
            f"a solver must be a registered name or expose solve(model); got {type(solver).__name__}"
        )
    return solver


register_solver("highs", ScipyMilpSolver)
register_solver("scipy-highs", ScipyMilpSolver)  # alias matching ScipyMilpSolver.name
register_solver("branch-and-bound", BranchAndBoundSolver)
