"""MILP backend built on ``scipy.optimize.milp`` (the HiGHS solver).

The paper uses IBM ILOG CPLEX 12.5; HiGHS plays the same role here: an
exact branch-and-cut MILP solver.  See DESIGN.md for the substitution
rationale.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.exceptions import ILPError
from repro.ilp.model import Model
from repro.ilp.solution import Solution, SolveStatus

__all__ = ["ScipyMilpSolver", "solve_with_scipy"]


class ScipyMilpSolver:
    """Solve :class:`~repro.ilp.model.Model` instances with HiGHS via SciPy.

    Parameters
    ----------
    time_limit:
        Optional wall-clock limit in seconds passed to HiGHS.
    mip_rel_gap:
        Relative optimality gap; 0 (the default) asks for proven optimality.
    verbose:
        Print HiGHS output (useful when debugging big encodings).
    """

    name = "scipy-highs"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        mip_rel_gap: float = 0.0,
        verbose: bool = False,
    ):
        self.time_limit = time_limit
        self.mip_rel_gap = mip_rel_gap
        self.verbose = verbose

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` and return a :class:`Solution`."""
        if model.n_variables == 0:
            # Degenerate but legal: an empty model is trivially optimal.
            return Solution(status=SolveStatus.OPTIMAL, objective=0.0, backend=self.name)
        arrays = model.to_arrays(sparse=True)
        constraints = []
        if model.n_constraints > 0:
            constraints.append(LinearConstraint(arrays["A"], arrays["cl"], arrays["cu"]))
        bounds = Bounds(arrays["xl"], arrays["xu"])
        options = {"disp": self.verbose, "mip_rel_gap": self.mip_rel_gap}
        if self.time_limit is not None:
            options["time_limit"] = float(self.time_limit)
        started = time.perf_counter()
        try:
            result = milp(
                c=arrays["c"],
                constraints=constraints,
                integrality=arrays["integrality"],
                bounds=bounds,
                options=options,
            )
        except Exception as error:  # pragma: no cover - defensive
            raise ILPError(f"scipy.optimize.milp failed: {error}") from error
        elapsed = time.perf_counter() - started

        status = _translate_status(result)
        values = {}
        objective = None
        if result.x is not None:
            values = {var: float(result.x[var.index]) for var in model.variables}
            objective = float(model.objective.value(values))
        return Solution(
            status=status,
            values=values,
            objective=objective,
            solve_time=elapsed,
            backend=self.name,
            message=str(getattr(result, "message", "")),
        )


def _translate_status(result) -> str:
    """Map the SciPy/HiGHS status codes onto :class:`SolveStatus`."""
    # scipy.optimize.milp: status 0 = optimal, 1 = iteration/time limit,
    # 2 = infeasible, 3 = unbounded, 4 = other.
    status_code = int(getattr(result, "status", 4))
    if status_code == 0:
        return SolveStatus.OPTIMAL
    if status_code == 1:
        return SolveStatus.FEASIBLE if result.x is not None else SolveStatus.TIME_LIMIT
    if status_code == 2:
        return SolveStatus.INFEASIBLE
    if status_code == 3:
        return SolveStatus.UNBOUNDED
    return SolveStatus.ERROR


def solve_with_scipy(model: Model, **kwargs) -> Solution:
    """Convenience wrapper: build a :class:`ScipyMilpSolver` and solve ``model``."""
    return ScipyMilpSolver(**kwargs).solve(model)
