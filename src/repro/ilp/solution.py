"""Solver-independent representation of ILP solve results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.exceptions import InfeasibleError
from repro.ilp.model import Variable

__all__ = ["SolveStatus", "Solution"]


class SolveStatus:
    """String constants describing the outcome of a solve."""

    OPTIMAL = "optimal"
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    TIME_LIMIT = "time_limit"
    ERROR = "error"


@dataclass
class Solution:
    """The result of solving an ILP model.

    Attributes
    ----------
    status:
        One of the :class:`SolveStatus` constants.
    values:
        Mapping from variable to its value (empty when infeasible).
    objective:
        Objective value in the model's own sense (``None`` when unavailable).
    solve_time:
        Wall-clock seconds spent inside the backend.
    backend:
        Name of the backend that produced the solution.
    message:
        Free-form diagnostic from the backend.
    """

    status: str
    values: Dict[Variable, float] = field(default_factory=dict)
    objective: Optional[float] = None
    solve_time: float = 0.0
    backend: str = ""
    message: str = ""

    @property
    def is_feasible(self) -> bool:
        """Whether the backend produced a (possibly sub-optimal) feasible point."""
        return self.status in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)

    def value(self, variable: Variable, default: float = 0.0) -> float:
        """Return the value of ``variable`` (``default`` when missing)."""
        return self.values.get(variable, default)

    def int_value(self, variable: Variable, default: int = 0) -> int:
        """Return the value of ``variable`` rounded to the nearest integer."""
        if variable not in self.values:
            return default
        return int(round(self.values[variable]))

    def require_feasible(self) -> "Solution":
        """Return ``self`` or raise :class:`InfeasibleError` if not feasible."""
        if not self.is_feasible:
            raise InfeasibleError(
                f"model is {self.status}" + (f": {self.message}" if self.message else "")
            )
        return self

    def restricted_to(self, variables: Mapping[str, Variable]) -> Dict[str, float]:
        """Return a name -> value mapping for the given named variables."""
        return {name: self.value(var) for name, var in variables.items()}
