"""A pure-Python branch-and-bound MILP solver.

This backend exists for three reasons:

* it removes the hard dependency of the *core algorithm* on any particular
  external solver (the paper's contribution is the encoding, not CPLEX);
* it is a readable reference implementation against which the HiGHS
  backend can be cross-checked on small instances;
* it powers the backend ablation benchmark in ``benchmarks/``.

It solves LP relaxations with ``scipy.optimize.linprog`` (HiGHS LP) and
branches on the most fractional integer variable.  It is only intended for
small models (tens to a few hundred integer variables); the default
backend for real refinement runs is :class:`repro.ilp.scipy_backend.ScipyMilpSolver`.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ILPError
from repro.ilp.model import MAXIMIZE, Model
from repro.ilp.solution import Solution, SolveStatus

__all__ = ["BranchAndBoundSolver"]

_INTEGRALITY_TOLERANCE = 1e-6


class BranchAndBoundSolver:
    """Depth-first branch and bound over LP relaxations.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (the best incumbent found so far is
        returned with status ``feasible``/``time_limit`` when exceeded).
    max_nodes:
        Hard cap on the number of explored nodes.
    """

    name = "branch-and-bound"

    def __init__(self, time_limit: Optional[float] = None, max_nodes: int = 200_000):
        self.time_limit = time_limit
        self.max_nodes = max_nodes

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` exactly (within the node/time limits)."""
        if model.n_variables == 0:
            return Solution(status=SolveStatus.OPTIMAL, objective=0.0, backend=self.name)
        arrays = model.to_arrays(sparse=True)
        started = time.perf_counter()

        c = arrays["c"]
        A = arrays["A"]
        cl, cu = arrays["cl"], arrays["cu"]
        integer_indexes = [i for i, flag in enumerate(arrays["integrality"]) if flag]

        # linprog wants one-sided rows: stack A x <= cu and -A x <= -cl.
        finite_upper = np.isfinite(cu)
        finite_lower = np.isfinite(cl)
        from scipy import sparse as sp

        blocks = []
        rhs_parts = []
        if finite_upper.any():
            blocks.append(A[finite_upper])
            rhs_parts.append(cu[finite_upper])
        if finite_lower.any():
            blocks.append(-A[finite_lower])
            rhs_parts.append(-cl[finite_lower])
        if blocks:
            A_ub = sp.vstack(blocks, format="csr")
            b_ub = np.concatenate(rhs_parts)
        else:
            A_ub, b_ub = None, None

        best_value = math.inf
        best_solution: Optional[np.ndarray] = None
        nodes_explored = 0
        hit_limit = False

        initial_bounds = [(float(lo), float(hi)) for lo, hi in zip(arrays["xl"], arrays["xu"])]
        stack: List[List[Tuple[float, float]]] = [initial_bounds]

        while stack:
            if nodes_explored >= self.max_nodes:
                hit_limit = True
                break
            if self.time_limit is not None and time.perf_counter() - started > self.time_limit:
                hit_limit = True
                break
            bounds = stack.pop()
            nodes_explored += 1
            relaxation = linprog(
                c, A_ub=A_ub, b_ub=b_ub, bounds=bounds, method="highs"
            )
            if relaxation.status != 0 or relaxation.x is None:
                continue  # infeasible or numerically bad node: prune
            if relaxation.fun >= best_value - 1e-9:
                continue  # bound: cannot improve the incumbent
            x = relaxation.x
            fractional = _most_fractional(x, integer_indexes)
            if fractional is None:
                best_value = float(relaxation.fun)
                best_solution = x.copy()
                continue
            index, value = fractional
            floor_bounds = [list(b) for b in bounds]
            ceil_bounds = [list(b) for b in bounds]
            floor_bounds[index][1] = math.floor(value)
            ceil_bounds[index][0] = math.ceil(value)
            if floor_bounds[index][0] <= floor_bounds[index][1]:
                stack.append([tuple(b) for b in floor_bounds])
            if ceil_bounds[index][0] <= ceil_bounds[index][1]:
                stack.append([tuple(b) for b in ceil_bounds])

        elapsed = time.perf_counter() - started
        if best_solution is None:
            status = SolveStatus.TIME_LIMIT if hit_limit else SolveStatus.INFEASIBLE
            return Solution(
                status=status,
                solve_time=elapsed,
                backend=self.name,
                message=f"explored {nodes_explored} nodes",
            )
        values = {
            var: float(round(best_solution[var.index]))
            if var.is_integer
            else float(best_solution[var.index])
            for var in model.variables
        }
        objective = float(model.objective.value(values))
        status = SolveStatus.FEASIBLE if hit_limit else SolveStatus.OPTIMAL
        return Solution(
            status=status,
            values=values,
            objective=objective,
            solve_time=elapsed,
            backend=self.name,
            message=f"explored {nodes_explored} nodes",
        )


def _most_fractional(x: np.ndarray, integer_indexes: List[int]) -> Optional[Tuple[int, float]]:
    """Return the integer-constrained index whose value is farthest from integral."""
    best_index = None
    best_distance = _INTEGRALITY_TOLERANCE
    for index in integer_indexes:
        value = x[index]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best_index = index
    if best_index is None:
        return None
    return best_index, float(x[best_index])
