"""A pure-Python branch-and-bound MILP solver.

This backend exists for three reasons:

* it removes the hard dependency of the *core algorithm* on any particular
  external solver (the paper's contribution is the encoding, not CPLEX);
* it is a readable reference implementation against which the HiGHS
  backend can be cross-checked on small instances;
* it powers the backend ablation benchmark in ``benchmarks/``.

It solves LP relaxations with ``scipy.optimize.linprog`` (HiGHS LP) and
branches on the most fractional integer variable.  Nodes store only the
*bound overrides* accumulated along their branch (a small dict shared
copy-on-branch), never a full copy of all variable bounds, and the search
can run depth-first (default, lowest memory) or best-first (pop the node
with the smallest parent LP bound, which tends to prove optimality with
fewer nodes on optimisation instances).  It is only intended for small
models (tens to a few hundred integer variables); the default backend for
real refinement runs is :class:`repro.ilp.scipy_backend.ScipyMilpSolver`.
"""

from __future__ import annotations

import heapq
import math
import time
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.exceptions import ILPError
from repro.ilp.model import MAXIMIZE, Model
from repro.ilp.solution import Solution, SolveStatus

__all__ = ["BranchAndBoundSolver"]

_INTEGRALITY_TOLERANCE = 1e-6

#: A node's branching decisions: variable index -> (lower, upper) override.
_Overrides = Dict[int, Tuple[float, float]]


class BranchAndBoundSolver:
    """Branch and bound over LP relaxations.

    Parameters
    ----------
    time_limit:
        Wall-clock budget in seconds (the best incumbent found so far is
        returned with status ``feasible``/``time_limit`` when exceeded).
    max_nodes:
        Hard cap on the number of explored nodes.
    node_order:
        ``"dfs"`` (default) explores depth-first — constant memory per
        branch, finds incumbents quickly.  ``"best"`` explores the open
        node with the smallest parent LP relaxation value first, which
        usually closes the optimality gap in fewer nodes when a meaningful
        objective is present.
    """

    name = "branch-and-bound"

    def __init__(
        self,
        time_limit: Optional[float] = None,
        max_nodes: int = 200_000,
        node_order: str = "dfs",
    ):
        if node_order not in ("dfs", "best"):
            raise ILPError(f"node_order must be 'dfs' or 'best', got {node_order!r}")
        self.time_limit = time_limit
        self.max_nodes = max_nodes
        self.node_order = node_order

    def solve(self, model: Model) -> Solution:
        """Solve ``model`` exactly (within the node/time limits)."""
        if model.n_variables == 0:
            return Solution(status=SolveStatus.OPTIMAL, objective=0.0, backend=self.name)
        arrays = model.to_arrays(sparse=True)
        started = time.perf_counter()

        c = arrays["c"]
        A = arrays["A"]
        cl, cu = arrays["cl"], arrays["cu"]
        integer_indexes = [i for i, flag in enumerate(arrays["integrality"]) if flag]

        # linprog wants one-sided rows: stack A x <= cu and -A x <= -cl.
        finite_upper = np.isfinite(cu)
        finite_lower = np.isfinite(cl)
        from scipy import sparse as sp

        blocks = []
        rhs_parts = []
        if finite_upper.any():
            blocks.append(A[finite_upper])
            rhs_parts.append(cu[finite_upper])
        if finite_lower.any():
            blocks.append(-A[finite_lower])
            rhs_parts.append(-cl[finite_lower])
        if blocks:
            A_ub = sp.vstack(blocks, format="csr")
            b_ub = np.concatenate(rhs_parts)
        else:
            A_ub, b_ub = None, None

        base_lower = arrays["xl"].astype(float)
        base_upper = arrays["xu"].astype(float)

        best_value = math.inf
        best_solution: Optional[np.ndarray] = None
        nodes_explored = 0
        hit_limit = False

        # A node is (parent LP bound, tie-break, overrides).  The root has
        # no overrides; children share the parent dict copy-on-branch, so
        # memory per node is O(depth) decisions, not O(n) bounds.
        root = (-math.inf, 0, {})
        if self.node_order == "best":
            heap: List[Tuple[float, int, _Overrides]] = [root]
            pop = lambda: heapq.heappop(heap)
            push = lambda node: heapq.heappush(heap, node)
            pending = heap
        else:
            stack: List[Tuple[float, int, _Overrides]] = [root]
            pop = stack.pop
            push = stack.append
            pending = stack
        tiebreak = 0

        while pending:
            if nodes_explored >= self.max_nodes:
                hit_limit = True
                break
            if self.time_limit is not None and time.perf_counter() - started > self.time_limit:
                hit_limit = True
                break
            parent_bound, _, overrides = pop()
            if parent_bound >= best_value - 1e-9:
                continue  # bound became stale after the incumbent improved
            nodes_explored += 1
            lower = base_lower.copy()
            upper = base_upper.copy()
            for index, (lo, hi) in overrides.items():
                lower[index] = lo
                upper[index] = hi
            relaxation = linprog(
                c, A_ub=A_ub, b_ub=b_ub, bounds=np.column_stack((lower, upper)), method="highs"
            )
            if relaxation.status != 0 or relaxation.x is None:
                continue  # infeasible or numerically bad node: prune
            if relaxation.fun >= best_value - 1e-9:
                continue  # bound: cannot improve the incumbent
            x = relaxation.x
            fractional = _most_fractional(x, integer_indexes)
            if fractional is None:
                best_value = float(relaxation.fun)
                best_solution = x.copy()
                continue
            index, value = fractional
            node_lower = float(lower[index])
            node_upper = float(upper[index])
            floor_value = math.floor(value)
            ceil_value = math.ceil(value)
            bound = float(relaxation.fun)
            if node_lower <= floor_value:
                tiebreak += 1
                floor_overrides = dict(overrides)
                floor_overrides[index] = (node_lower, float(floor_value))
                push((bound, tiebreak, floor_overrides))
            if ceil_value <= node_upper:
                tiebreak += 1
                ceil_overrides = dict(overrides)
                ceil_overrides[index] = (float(ceil_value), node_upper)
                push((bound, tiebreak, ceil_overrides))

        elapsed = time.perf_counter() - started
        if best_solution is None:
            status = SolveStatus.TIME_LIMIT if hit_limit else SolveStatus.INFEASIBLE
            return Solution(
                status=status,
                solve_time=elapsed,
                backend=self.name,
                message=f"explored {nodes_explored} nodes",
            )
        values = {
            var: float(round(best_solution[var.index]))
            if var.is_integer
            else float(best_solution[var.index])
            for var in model.variables
        }
        objective = float(model.objective.value(values))
        status = SolveStatus.FEASIBLE if hit_limit else SolveStatus.OPTIMAL
        return Solution(
            status=status,
            values=values,
            objective=objective,
            solve_time=elapsed,
            backend=self.name,
            message=f"explored {nodes_explored} nodes",
        )


def _most_fractional(x: np.ndarray, integer_indexes: List[int]) -> Optional[Tuple[int, float]]:
    """Return the integer-constrained index whose value is farthest from integral."""
    best_index = None
    best_distance = _INTEGRALITY_TOLERANCE
    for index in integer_indexes:
        value = x[index]
        distance = abs(value - round(value))
        if distance > best_distance:
            best_distance = distance
            best_index = index
    if best_index is None:
        return None
    return best_index, float(x[best_index])
