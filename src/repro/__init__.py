"""repro — a reproduction of *A Principled Approach to Bridging the Gap
between Graph Data and their Schemas* (Arenas, Díaz, Fokoue,
Kementsietsidis, Srinivas — VLDB 2014).

The package provides:

* an RDF substrate (:mod:`repro.rdf`): triples, an indexed in-memory graph,
  N-Triples I/O and sort extraction;
* the property-structure view and signature tables (:mod:`repro.matrix`);
* the structuredness rule language (:mod:`repro.rules`) with a parser, a
  reference semantics, a constraint-propagation evaluator and
  signature-level counting;
* closed-form structuredness functions (:mod:`repro.functions`):
  σCov, σSim, σDep, σSymDep;
* an ILP modelling layer with HiGHS and branch-and-bound backends
  (:mod:`repro.ilp`);
* the sort-refinement core (:mod:`repro.core`): the ILP encoding, the
  decision procedure, highest-θ / lowest-k searches and a greedy baseline;
* the NP-hardness reduction from 3-coloring (:mod:`repro.reduction`);
* synthetic stand-ins for the paper's datasets (:mod:`repro.datasets`) and
  an experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro.datasets import dbpedia_persons_table
>>> from repro.functions import coverage, similarity
>>> from repro.rules import coverage as coverage_rule
>>> from repro.core import highest_theta_refinement
>>> persons = dbpedia_persons_table(n_subjects=5_000)
>>> coverage(persons), similarity(persons)      # doctest: +SKIP
(0.54, 0.78)
>>> result = highest_theta_refinement(persons, coverage_rule(), k=2)  # doctest: +SKIP
>>> result.refinement.sizes                     # doctest: +SKIP
(3301, 1699)
"""

from repro.exceptions import (
    DatasetError,
    EvaluationError,
    ILPError,
    InfeasibleError,
    ParseError,
    RDFError,
    RefinementError,
    ReproError,
    RuleError,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "RDFError",
    "ParseError",
    "RuleError",
    "EvaluationError",
    "ILPError",
    "InfeasibleError",
    "RefinementError",
    "DatasetError",
]
