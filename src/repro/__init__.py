"""repro — a reproduction of *A Principled Approach to Bridging the Gap
between Graph Data and their Schemas* (Arenas, Díaz, Fokoue,
Kementsietsidis, Srinivas — VLDB 2014).

The package provides:

* the session-oriented public API (:mod:`repro.api`): a :class:`Dataset`
  handle owning the cached graph → matrix → signature-table chain and a
  :class:`StructurednessSession` answering evaluate/refine/lowest-k/sweep
  queries against it — the entry point every frontend (CLI, experiments,
  examples) is built on;
* an RDF substrate (:mod:`repro.rdf`): triples, an indexed in-memory graph,
  N-Triples I/O and sort extraction;
* the property-structure view and signature tables (:mod:`repro.matrix`);
* the structuredness rule language (:mod:`repro.rules`) with a parser, a
  reference semantics, a constraint-propagation evaluator and
  signature-level counting;
* closed-form structuredness functions (:mod:`repro.functions`):
  σCov, σSim, σDep, σSymDep;
* an ILP modelling layer with a pluggable solver registry — HiGHS and
  branch-and-bound backends ship built in (:mod:`repro.ilp`);
* the sort-refinement core (:mod:`repro.core`): the ILP encoding, the
  decision procedure, highest-θ / lowest-k searches and a greedy baseline;
* a batch/HTTP service layer (:mod:`repro.service`): a JSONL wire codec,
  a dependency-aware batch executor with a multiprocess worker pool, and
  a stdlib HTTP front-end (``repro serve`` / ``repro batch``);
* a persistence layer (:mod:`repro.storage`): relational property tables
  and versioned binary dataset snapshots for zero-rebuild warm starts
  (``Dataset.save``/``Dataset.load``, ``repro snapshot build/inspect``);
* the NP-hardness reduction from 3-coloring (:mod:`repro.reduction`);
* synthetic stand-ins for the paper's datasets (:mod:`repro.datasets`) and
  an experiment harness regenerating every table and figure
  (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro.api import Dataset
>>> dataset = Dataset.builtin("dbpedia-persons", n_subjects=5_000)
>>> session = dataset.session(solver="highs")
>>> session.evaluate("Cov").value, session.evaluate("Sim").value  # doctest: +SKIP
(0.54, 0.78)
>>> result = session.refine("Cov", k=2)                           # doctest: +SKIP
>>> result.theta, [s.n_subjects for s in result.sorts]            # doctest: +SKIP
(0.75, (3301, 1699))
>>> session.lowest_k("Cov", theta="3/4").k                        # doctest: +SKIP
2
>>> result.to_json()                                              # doctest: +SKIP
'{"dataset": ..., "rule": "Cov", "kind": "highest_theta", ...}'

The lower-level free functions (:func:`repro.core.highest_theta_refinement`,
:func:`repro.functions.coverage`, ...) remain available underneath the
facade.
"""

from repro.exceptions import (
    DatasetError,
    EvaluationError,
    ILPError,
    InfeasibleError,
    ParseError,
    RDFError,
    RefinementError,
    ReproError,
    RequestError,
    RuleError,
    SnapshotError,
)

__version__ = "1.8.0"

#: Top-level conveniences resolved lazily so that ``import repro`` stays
#: lightweight (the api package pulls in numpy/scipy-backed layers).
_LAZY_EXPORTS = {
    "Dataset": "repro.api",
    "StructurednessSession": "repro.api",
    "WatchSession": "repro.api",
    "WatchEvent": "repro.api",
    "InlineExecutor": "repro.service",
    "PooledExecutor": "repro.service",
    "Telemetry": "repro.telemetry",
}

__all__ = [
    "__version__",
    "ReproError",
    "RDFError",
    "ParseError",
    "RuleError",
    "EvaluationError",
    "ILPError",
    "InfeasibleError",
    "RefinementError",
    "DatasetError",
    "RequestError",
    "SnapshotError",
    "Dataset",
    "StructurednessSession",
    "WatchSession",
    "WatchEvent",
    "InlineExecutor",
    "PooledExecutor",
    "Telemetry",
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
