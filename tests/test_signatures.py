"""Unit tests for signatures and signature tables."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import RDFError
from repro.functions.structuredness import coverage, similarity
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable
from repro.rdf.namespaces import EX


class TestConstruction:
    def test_from_matrix_groups_identical_rows(self, tracked_matrix):
        table = SignatureTable.from_matrix(tracked_matrix)
        assert table.n_signatures == 3
        assert table.n_subjects == 6
        assert table.count([EX.p]) == 3
        assert table.count([EX.p, EX.q]) == 2
        assert table.count([EX.q, EX.r]) == 1

    def test_from_matrix_tracks_members(self, tracked_matrix):
        table = SignatureTable.from_matrix(tracked_matrix)
        assert table.has_members
        assert set(table.members_of([EX.p])) == {EX.b1, EX.b2, EX.b3}
        assert table.signature_of(EX.c1) == frozenset({EX.q, EX.r})

    def test_from_counts_without_members(self, toy_persons_table):
        assert not toy_persons_table.has_members
        with pytest.raises(RDFError):
            toy_persons_table.members_of([EX.name])

    def test_zero_count_signatures_are_dropped(self):
        table = SignatureTable.from_counts([EX.p], {frozenset([EX.p]): 3, frozenset(): 0})
        assert table.n_signatures == 1

    def test_unknown_property_in_signature_raises(self):
        with pytest.raises(RDFError):
            SignatureTable.from_counts([EX.p], {frozenset([EX.q]): 1})

    def test_negative_count_raises(self):
        with pytest.raises(RDFError):
            SignatureTable.from_counts([EX.p], {frozenset([EX.p]): -1})

    def test_ordering_is_by_decreasing_size(self, toy_persons_table):
        counts = [toy_persons_table.count(sig) for sig in toy_persons_table.signatures]
        assert counts == sorted(counts, reverse=True)


class TestAggregates:
    def test_subject_and_cell_counts(self, toy_persons_table):
        assert toy_persons_table.n_subjects == 115
        assert toy_persons_table.n_cells() == 115 * 4

    def test_n_ones_matches_matrix_expansion(self, toy_persons_table):
        matrix = toy_persons_table.to_matrix()
        assert toy_persons_table.n_ones() == matrix.n_ones

    def test_property_counts(self, toy_persons_table):
        counts = toy_persons_table.property_counts()
        assert counts[EX.name] == 115
        assert counts[EX.deathDate] == 30
        assert counts[EX.description] == 15

    def test_both_and_either_counts(self, toy_persons_table):
        assert toy_persons_table.both_count(EX.deathDate, EX.description) == 10
        assert toy_persons_table.either_count(EX.deathDate, EX.description) == 35

    def test_support_matrix_and_count_vector(self, toy_persons_table):
        support = toy_persons_table.support_matrix()
        counts = toy_persons_table.count_vector()
        assert support.shape == (5, 4)
        assert counts.sum() == 115


class TestDerivedTables:
    def test_select_restricts_property_universe(self, toy_persons_table):
        alive = [
            frozenset([EX.name, EX.birthDate]),
            frozenset([EX.name]),
        ]
        sub = toy_persons_table.select(alive)
        assert sub.n_subjects == 80
        assert EX.deathDate not in sub.properties
        assert set(sub.properties) == {EX.name, EX.birthDate}

    def test_select_unknown_signature_raises(self, toy_persons_table):
        with pytest.raises(RDFError):
            toy_persons_table.select([frozenset([EX.deathDate])])

    def test_restrict_properties_merges_signatures(self, toy_persons_table):
        projected = toy_persons_table.restrict_properties([EX.name, EX.birthDate])
        # alive-with-birth and dead-with-birth collapse onto {name, birthDate}
        assert projected.count([EX.name, EX.birthDate]) == 80
        assert projected.n_subjects == toy_persons_table.n_subjects

    def test_merge_sums_counts(self, toy_persons_table):
        merged = toy_persons_table.merge(toy_persons_table)
        assert merged.n_subjects == 2 * toy_persons_table.n_subjects
        assert merged.n_signatures == toy_persons_table.n_signatures

    def test_scale_preserves_structuredness_approximately(self, toy_persons_table):
        scaled = toy_persons_table.scale(10)
        assert scaled.n_subjects == pytest.approx(10 * toy_persons_table.n_subjects, rel=0.01)
        assert coverage(scaled) == pytest.approx(coverage(toy_persons_table), abs=0.01)
        assert similarity(scaled) == pytest.approx(similarity(toy_persons_table), abs=0.01)

    def test_scale_rejects_non_positive_factor(self, toy_persons_table):
        with pytest.raises(RDFError):
            toy_persons_table.scale(0)

    def test_to_matrix_round_trip(self, tracked_matrix):
        table = SignatureTable.from_matrix(tracked_matrix)
        rebuilt = SignatureTable.from_matrix(table.to_matrix())
        assert rebuilt == table

    def test_to_graph_expansion(self, toy_persons_table):
        graph = toy_persons_table.to_graph()
        assert len(graph.subjects()) == toy_persons_table.n_subjects


class TestDunder:
    def test_len_iter_contains(self, toy_persons_table):
        assert len(toy_persons_table) == 5
        assert frozenset([EX.name]) in toy_persons_table
        assert frozenset([EX.deathDate]) not in toy_persons_table
        assert "not a signature" not in toy_persons_table
        assert list(toy_persons_table) == list(toy_persons_table.signatures)

    def test_equality(self, toy_persons_table):
        clone = SignatureTable(
            toy_persons_table.properties, toy_persons_table.counts(), name="other name"
        )
        assert clone == toy_persons_table


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.lists(st.booleans(), min_size=3, max_size=3),
        min_size=1,
        max_size=12,
    )
)
def test_signature_table_is_a_lossless_summary_of_row_multisets(data):
    """Property: the signature table only depends on (and determines) the row multiset."""
    properties = [EX.p, EX.q, EX.r]
    rows = {EX[f"s{i}"]: [p for p, keep in zip(properties, row) if keep] for i, row in enumerate(data)}
    matrix = PropertyMatrix.from_rows(rows, properties=properties)
    table = SignatureTable.from_matrix(matrix)
    assert table.n_subjects == len(data)
    assert table.n_ones() == matrix.n_ones
    # Permuting the rows does not change the table.
    shuffled = {EX[f"t{i}"]: rows[s] for i, s in enumerate(reversed(list(rows)))}
    shuffled_table = SignatureTable.from_matrix(
        PropertyMatrix.from_rows(shuffled, properties=properties)
    )
    assert shuffled_table.counts() == table.counts()
