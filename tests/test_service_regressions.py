"""Regression tests for the service-tier hardening fixes.

Each class pins one bug the server used to ship:

* a mid-stream ``watch.poll()`` failure crashed the handler *after* the
  status line went out, making ``do_POST`` send a second response on the
  same connection (and counting the wreck as ``ok``);
* ``float("nan")`` timings slipped past the ``<= 0`` validation and a
  negative ``max_events`` terminated the stream after the first event;
* a ``Transfer-Encoding: chunked`` body was silently read as empty and
  surfaced as a misleading "needs a 'dataset' spec" 400;
* ``PooledExecutor.close()`` called ``terminate()`` outright, killing
  in-flight jobs an orderly shutdown should have drained.

The HTTP tests run against both front-ends (threaded and asyncio) —
the fixes are part of the shared route contract.
"""

from __future__ import annotations

import http.client
import json
import math
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.exceptions import RequestError
from repro.service import make_async_server, make_server
from repro.service.pool import PooledExecutor
from repro.service.server import StructurednessService

WATCH_DATASET = {
    "ntriples": '<http://r/a> <http://r/p> "1" .\n'
                '<http://r/b> <http://r/p> "1" .\n',
    "name": "regression-watch",
}


@pytest.fixture(params=["threaded", "async"])
def live_server(request):
    """A fresh (function-scoped) server: these tests patch and break it."""
    if request.param == "threaded":
        server = make_server(host="127.0.0.1", port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server
        server.close()
        thread.join(timeout=5)
    else:
        server = make_async_server(host="127.0.0.1", port=0).start()
        yield server
        server.close()


def _post(server, path, body, headers=None):
    data = json.dumps(body).encode()
    request = urllib.request.Request(
        server.url + path, data=data,
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _counters(server):
    with urllib.request.urlopen(server.url + "/v1/metrics", timeout=10) as response:
        return json.loads(response.read())


class TestWatchValidation:
    """NaN/inf timings and negative max_events are caller errors, not modes."""

    @pytest.mark.parametrize("field", ["duration_s", "poll_interval_s", "heartbeat_s"])
    @pytest.mark.parametrize("value", [float("nan"), float("inf"), -1.0, 0])
    def test_nonfinite_and_nonpositive_timings_400(self, live_server, field, value):
        status, payload = _post(
            live_server, "/v1/watch", {"dataset": WATCH_DATASET, field: value}
        )
        assert status == 400 and payload["ok"] is False
        assert "positive finite" in payload["error"]["message"] or (
            # int/float coercion failures keep the older message shape
            "timing" in payload["error"]["message"]
        )

    def test_negative_max_events_400(self, live_server):
        status, payload = _post(
            live_server, "/v1/watch", {"dataset": WATCH_DATASET, "max_events": -1}
        )
        assert status == 400
        assert "max_events must be >= 0" in payload["error"]["message"]

    def test_service_level_rejects_nan_directly(self):
        # The validation lives in the service (shared by both transports).
        service = StructurednessService()
        try:
            with pytest.raises(RequestError, match="positive finite"):
                service.watch_session(
                    {"dataset": WATCH_DATASET, "duration_s": float("nan")}
                )
            assert math.isnan(float("nan"))  # the value under test really is NaN
        finally:
            service.close()


class TestChunkedBodies:
    """Chunked uploads get a clear 411 naming the encoding, not a bogus 400."""

    def test_chunked_transfer_encoding_is_named_in_a_411(self, live_server):
        host, port = live_server.url[len("http://"):].split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            body = json.dumps({"dataset": WATCH_DATASET})
            connection.putrequest("POST", "/v1/evaluate")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Transfer-Encoding", "chunked")
            connection.endheaders()
            chunk = body.encode()
            connection.send(b"%x\r\n%s\r\n0\r\n\r\n" % (len(chunk), chunk))
            response = connection.getresponse()
            payload = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 411
        assert payload["ok"] is False
        assert "Transfer-Encoding 'chunked' is not supported" in payload["error"]["message"]
        assert "Content-Length" in payload["error"]["message"]


class _ExplodingWatch:
    """A watch whose poll dies after the stream is already on the wire."""

    def __init__(self):
        self.closed = False

    def poll(self):
        raise RuntimeError("shard table evaporated")

    def heartbeat(self):  # pragma: no cover - poll raises first
        raise AssertionError("heartbeat should not be reached")

    def close(self):
        self.closed = True


class TestWatchMidStreamFailure:
    """A poll failure after the headers frames a terminal error line."""

    def test_error_is_framed_as_terminal_jsonl_line(self, live_server):
        exploding = _ExplodingWatch()
        service = live_server.service
        original = service.watch_session
        params = {
            "max_events": 0, "duration_s": 10.0,
            "poll_interval_s": 0.01, "heartbeat_s": 2.0,
        }
        service.watch_session = lambda body: (exploding, params)
        try:
            request = urllib.request.Request(
                live_server.url + "/v1/watch",
                data=json.dumps({"dataset": WATCH_DATASET}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                status = response.status
                lines = [json.loads(l) for l in response.read().decode().splitlines() if l]
        finally:
            service.watch_session = original
        # The status line was already committed as 200; the failure rides
        # inside the stream as its terminal line, then EOF — never a
        # second HTTP response on the same connection.
        assert status == 200
        assert len(lines) == 1
        [line] = lines
        assert line["kind"] == "error" and line["ok"] is False
        assert line["error"]["type"] == "RuntimeError"
        assert "shard table evaporated" in line["error"]["message"]
        assert exploding.closed  # the session is released even on failure

    def test_stream_failure_is_counted_as_an_error_response(self, live_server):
        service = live_server.service
        before_errors = service.counters["error_responses"]
        exploding = _ExplodingWatch()
        original = service.watch_session
        params = {
            "max_events": 0, "duration_s": 10.0,
            "poll_interval_s": 0.01, "heartbeat_s": 2.0,
        }
        service.watch_session = lambda body: (exploding, params)
        try:
            request = urllib.request.Request(
                live_server.url + "/v1/watch",
                data=json.dumps({"dataset": WATCH_DATASET}).encode(),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                response.read()
        finally:
            service.watch_session = original
        assert service.counters["error_responses"] == before_errors + 1
        assert service.telemetry.snapshot()["counters"]["watch.stream_errors"] >= 1


class TestWatchClientDisconnect:
    """A client hangup is a disconnect, not a successful response."""

    def test_disconnect_counts_as_error_not_ok(self, live_server):
        service = live_server.service
        before_ok = service.counters["ok_responses"]
        host, port = live_server.url[len("http://"):].split(":")
        body = json.dumps({
            "dataset": WATCH_DATASET, "duration_s": 20.0,
            "poll_interval_s": 0.02, "heartbeat_s": 0.05,
        }).encode()
        # A raw socket keeps the hangup under our control (http.client
        # detaches the fd once it sees Connection: close).
        sock = socket.create_connection((host, int(port)), timeout=10)
        try:
            sock.sendall(
                b"POST /v1/watch HTTP/1.1\r\n"
                b"Host: %s\r\nContent-Type: application/json\r\n"
                b"Content-Length: %d\r\n\r\n%s" % (host.encode(), len(body), body)
            )
            first = sock.recv(4096)
            assert first.startswith(b"HTTP/1.1 200")
            # Hang up mid-stream: shutdown() sends the FIN immediately, so
            # the server's next heartbeat write hits a dead connection.
            sock.shutdown(socket.SHUT_RDWR)
        finally:
            sock.close()
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            counters = service.telemetry.snapshot()["counters"]
            if counters.get("watch.client_disconnects", 0) >= 1:
                break
            time.sleep(0.05)
        counters = service.telemetry.snapshot()["counters"]
        assert counters.get("watch.client_disconnects", 0) >= 1
        # The aborted stream never lands in ok_responses.
        assert service.counters["ok_responses"] == before_ok


class _FakePool:
    """Records the close/join/terminate order; join can be made to hang."""

    def __init__(self, hang_in_join=False):
        self.calls = []
        self.hang_in_join = hang_in_join

    def close(self):
        self.calls.append("close")

    def join(self):
        self.calls.append("join")
        if self.hang_in_join:
            time.sleep(60)

    def terminate(self):
        self.calls.append("terminate")
        self.hang_in_join = False  # a terminated pool's join returns


class TestPooledExecutorShutdown:
    """close() drains in-flight work; terminate() is the last resort."""

    def test_graceful_close_never_terminates(self):
        executor = PooledExecutor(workers=1, drain_timeout=5.0)
        fake = _FakePool()
        executor._pool = fake
        executor.close()
        assert fake.calls == ["close", "join"]

    def test_hung_drain_escalates_to_terminate(self):
        executor = PooledExecutor(workers=1, drain_timeout=0.2)
        fake = _FakePool(hang_in_join=True)
        executor._pool = fake
        started = time.monotonic()
        executor.close()
        elapsed = time.monotonic() - started
        assert fake.calls[:2] == ["close", "join"]
        assert "terminate" in fake.calls
        assert elapsed < 5  # bounded by drain_timeout, not join()'s hang

    def test_real_pool_drains_in_flight_jobs(self):
        executor = PooledExecutor(workers=1, drain_timeout=30.0)
        results = executor.execute([{
            "op": "evaluate",
            "dataset": {"builtin": "dbpedia-persons", "params": {"n_subjects": 80}},
            "request": {"rule": "Cov"},
        }])
        assert results[0]["ok"]
        executor.close()  # graceful: no forced_terminations counter bump
        from repro.telemetry import current as current_telemetry

        counters = current_telemetry().snapshot()["counters"]
        assert counters.get("pool.forced_terminations", 0) == 0
