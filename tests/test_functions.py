"""Tests for the closed-form structuredness functions.

These tie the closed forms to the rule semantics (which other test modules
tie to the naive reference), and check the σ = 1 conventions for missing
columns that the paper's Section 7.1 analysis relies on.
"""

from __future__ import annotations

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EvaluationError
from repro.functions.structuredness import (
    as_signature_table,
    conditional_dependency,
    coverage,
    coverage_function,
    dependency,
    dependency_function,
    function_from_rule,
    similarity,
    similarity_function,
    symmetric_dependency,
    symmetric_dependency_function,
)
from repro.matrix.property_matrix import PropertyMatrix
from repro.matrix.signatures import SignatureTable
from repro.rdf.namespaces import EX
from repro.rules import library
from repro.rules.semantics import sigma_naive_fraction


def small_matrix(data) -> PropertyMatrix:
    array = np.asarray(data, dtype=bool)
    subjects = [EX[f"s{i}"] for i in range(array.shape[0])]
    properties = [EX[f"p{j}"] for j in range(array.shape[1])]
    return PropertyMatrix(array, subjects, properties)


class TestInputNormalisation:
    def test_accepts_graph_matrix_and_table(self, tiny_graph):
        matrix = PropertyMatrix.from_graph(tiny_graph)
        table = SignatureTable.from_matrix(matrix)
        assert coverage(tiny_graph) == coverage(matrix) == coverage(table)

    def test_rejects_other_inputs(self):
        with pytest.raises(EvaluationError):
            as_signature_table([1, 2, 3])  # type: ignore[arg-type]


class TestClosedFormsAgainstRules:
    def test_coverage_matches_rule(self, paper_d2_matrix):
        assert coverage(paper_d2_matrix, exact=True) == sigma_naive_fraction(
            library.coverage(), paper_d2_matrix
        )

    def test_similarity_matches_rule(self, paper_d2_matrix):
        assert similarity(paper_d2_matrix, exact=True) == sigma_naive_fraction(
            library.similarity(), paper_d2_matrix
        )

    def test_dependency_matches_rule(self, paper_d2_matrix):
        assert dependency(paper_d2_matrix, EX.p, EX.q, exact=True) == sigma_naive_fraction(
            library.dependency(EX.p, EX.q), paper_d2_matrix
        )

    def test_symmetric_dependency_matches_rule(self, paper_d2_matrix):
        assert symmetric_dependency(
            paper_d2_matrix, EX.p, EX.q, exact=True
        ) == sigma_naive_fraction(library.symmetric_dependency(EX.p, EX.q), paper_d2_matrix)

    def test_conditional_dependency_matches_rule(self, paper_d2_matrix):
        assert conditional_dependency(
            paper_d2_matrix, EX.p, EX.q, exact=True
        ) == sigma_naive_fraction(library.conditional_dependency(EX.p, EX.q), paper_d2_matrix)


class TestMissingColumnConventions:
    def test_dependency_is_one_when_either_column_is_missing(self, toy_persons_table):
        assert dependency(toy_persons_table, EX.unknown, EX.name) == 1.0
        assert dependency(toy_persons_table, EX.name, EX.unknown) == 1.0

    def test_symmetric_dependency_is_one_when_a_column_is_missing(self, toy_persons_table):
        # This is exactly the situation of Figure 4c: a sort without the
        # deathPlace column trivially satisfies SymDep[deathPlace, deathDate].
        alive_only = toy_persons_table.select(
            [frozenset([EX.name, EX.birthDate]), frozenset([EX.name])]
        )
        assert EX.deathDate not in alive_only.properties
        assert symmetric_dependency(alive_only, EX.deathDate, EX.description) == 1.0

    def test_conditional_dependency_is_one_when_a_column_is_missing(self, toy_persons_table):
        assert conditional_dependency(toy_persons_table, EX.unknown, EX.name) == 1.0

    def test_coverage_of_empty_table_is_one(self):
        table = SignatureTable.from_counts([], {})
        assert coverage(table) == 1.0
        assert similarity(table) == 1.0


class TestFunctionObjects:
    def test_function_objects_match_plain_functions(self, toy_persons_table):
        assert coverage_function()(toy_persons_table) == coverage(toy_persons_table)
        assert similarity_function()(toy_persons_table) == similarity(toy_persons_table)
        assert dependency_function(EX.deathDate, EX.description)(toy_persons_table) == dependency(
            toy_persons_table, EX.deathDate, EX.description
        )
        assert symmetric_dependency_function(EX.deathDate, EX.description)(
            toy_persons_table
        ) == symmetric_dependency(toy_persons_table, EX.deathDate, EX.description)

    def test_function_from_rule_uses_signature_level_evaluation(self, toy_persons_table):
        function = function_from_rule(library.coverage(), name="custom Cov")
        assert function(toy_persons_table) == pytest.approx(coverage(toy_persons_table))
        assert function.name == "custom Cov"

    def test_exact_fraction_api(self, toy_persons_table):
        value = coverage_function().evaluate_fraction(toy_persons_table)
        assert isinstance(value, Fraction)
        assert 0 <= value <= 1


@st.composite
def matrices(draw):
    n_rows = draw(st.integers(min_value=1, max_value=6))
    n_cols = draw(st.integers(min_value=1, max_value=4))
    cells = draw(
        st.lists(
            st.lists(st.booleans(), min_size=n_cols, max_size=n_cols),
            min_size=n_rows,
            max_size=n_rows,
        )
    )
    return small_matrix(cells)


@settings(max_examples=40, deadline=None)
@given(matrix=matrices())
def test_all_functions_stay_in_unit_interval(matrix):
    values = [
        coverage(matrix),
        similarity(matrix),
        dependency(matrix, matrix.properties[0], matrix.properties[-1]),
        symmetric_dependency(matrix, matrix.properties[0], matrix.properties[-1]),
        conditional_dependency(matrix, matrix.properties[0], matrix.properties[-1]),
    ]
    assert all(0.0 <= value <= 1.0 for value in values)


@settings(max_examples=25, deadline=None)
@given(matrix=matrices())
def test_coverage_and_similarity_closed_forms_match_naive(matrix):
    assert coverage(matrix, exact=True) == sigma_naive_fraction(library.coverage(), matrix)
    assert similarity(matrix, exact=True) == sigma_naive_fraction(library.similarity(), matrix)


@settings(max_examples=25, deadline=None)
@given(matrix=matrices())
def test_full_column_makes_dependency_one(matrix):
    # If every subject has p_last, then Dep[p, p_last] = 1 for every p.
    data = np.array(matrix.data, copy=True)
    data[:, -1] = True
    full = PropertyMatrix(data, matrix.subjects, matrix.properties)
    assert dependency(full, full.properties[0], full.properties[-1]) == 1.0
