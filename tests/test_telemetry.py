"""The telemetry spine: counters, spans, histograms, and the on/off contract.

The load-bearing property is *opt-in and free when off*: the library is
instrumented at every expensive boundary, so a disabled spine must be a
shared no-op object whose methods record nothing, and the process-wide
accessor must honour ``REPRO_TRACE`` until an explicit enable/disable
pins a choice.
"""

from __future__ import annotations

import json
import threading

import pytest

import repro.telemetry as telemetry_module
from repro.telemetry import (
    NULL_TELEMETRY,
    REPRO_TRACE_ENV,
    Telemetry,
    current,
    disable,
    enable,
)


@pytest.fixture(autouse=True)
def _reset_process_spine(monkeypatch):
    """Leave the process-wide spine in its default env-driven state."""
    monkeypatch.delenv(REPRO_TRACE_ENV, raising=False)
    monkeypatch.setattr(telemetry_module, "_active", None)
    yield
    monkeypatch.setattr(telemetry_module, "_active", None)


class TestTelemetryInstance:
    def test_counters_accumulate_and_snapshot_sorted(self):
        telemetry = Telemetry()
        telemetry.incr("b.second")
        telemetry.incr("a.first", 3)
        telemetry.incr("b.second", 2)
        assert telemetry.counters() == {"a.first": 3, "b.second": 3}
        snapshot = telemetry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "b.second"]
        assert snapshot["enabled"] is True

    def test_observe_tracks_count_total_min_max(self):
        telemetry = Telemetry()
        telemetry.observe("stage", 0.010)
        telemetry.observe("stage", 0.030)
        span = telemetry.snapshot()["spans"]["stage"]
        assert span["count"] == 2
        assert span["total_ms"] == pytest.approx(40.0)
        assert span["min_ms"] == pytest.approx(10.0)
        assert span["max_ms"] == pytest.approx(30.0)

    def test_histogram_buckets_partition_observations(self):
        telemetry = Telemetry()
        telemetry.observe("stage", 0.0004)   # 0.4ms  -> le_000001ms
        telemetry.observe("stage", 0.004)    # 4ms    -> le_000005ms
        telemetry.observe("stage", 0.080)    # 80ms   -> le_000100ms
        telemetry.observe("stage", 9.0)      # 9000ms -> le_inf
        buckets = telemetry.snapshot()["spans"]["stage"]["buckets"]
        assert buckets["le_000001ms"] == 1
        assert buckets["le_000005ms"] == 1
        assert buckets["le_000100ms"] == 1
        assert buckets["le_inf"] == 1
        # Every observation lands in exactly one bucket.
        assert sum(buckets.values()) == 4

    def test_span_context_manager_records_wall_time(self):
        telemetry = Telemetry()
        with telemetry.span("timed"):
            pass
        span = telemetry.snapshot()["spans"]["timed"]
        assert span["count"] == 1
        assert span["total_ms"] >= 0.0

    def test_snapshot_is_json_ready_and_deterministic_schema(self):
        telemetry = Telemetry()
        telemetry.incr("hits")
        with telemetry.span("work"):
            pass
        snapshot = telemetry.snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert set(snapshot) == {"enabled", "counters", "spans"}
        assert set(snapshot["spans"]["work"]) == {
            "count", "total_ms", "min_ms", "max_ms", "buckets",
        }

    def test_reset_drops_everything_but_stays_enabled(self):
        telemetry = Telemetry()
        telemetry.incr("hits")
        telemetry.observe("work", 0.001)
        telemetry.reset()
        assert telemetry.counters() == {}
        assert telemetry.snapshot()["spans"] == {}
        telemetry.incr("hits")
        assert telemetry.counters() == {"hits": 1}

    def test_concurrent_increments_lose_nothing(self):
        telemetry = Telemetry()
        barrier = threading.Barrier(8)

        def bump():
            barrier.wait()
            for _ in range(500):
                telemetry.incr("races")
                telemetry.observe("races.span", 0.0001)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert telemetry.counters()["races"] == 4000
        assert telemetry.snapshot()["spans"]["races.span"]["count"] == 4000


class TestDisabledSpine:
    def test_null_telemetry_records_nothing(self):
        NULL_TELEMETRY.incr("ignored")
        NULL_TELEMETRY.observe("ignored", 1.0)
        with NULL_TELEMETRY.span("ignored"):
            pass
        snapshot = NULL_TELEMETRY.snapshot()
        assert snapshot["enabled"] is False
        assert snapshot["counters"] == {} and snapshot["spans"] == {}

    def test_disabled_span_is_one_shared_object(self):
        # The zero-overhead claim: a disabled span() allocates nothing.
        assert NULL_TELEMETRY.span("a") is NULL_TELEMETRY.span("b")
        disabled = Telemetry(enabled=False)
        assert disabled.span("a") is NULL_TELEMETRY.span("a")

    def test_disabled_instance_ignores_recordings(self):
        disabled = Telemetry(enabled=False)
        disabled.incr("ignored")
        disabled.observe("ignored", 1.0)
        assert disabled.counters() == {}


class TestProcessWideAccessor:
    def test_default_is_the_shared_null_instance(self):
        assert current() is NULL_TELEMETRY

    def test_env_var_switches_the_spine_on(self, monkeypatch):
        monkeypatch.setenv(REPRO_TRACE_ENV, "1")
        active = current()
        assert active.enabled and active is not NULL_TELEMETRY
        # Sticky: subsequent calls return the same instance.
        assert current() is active

    def test_falsy_env_values_stay_off(self, monkeypatch):
        for value in ("", "0", "false", "no", "off", "False", "OFF"):
            monkeypatch.setattr(telemetry_module, "_active", None)
            monkeypatch.setenv(REPRO_TRACE_ENV, value)
            assert current() is NULL_TELEMETRY

    def test_enable_returns_a_live_instance(self):
        active = enable()
        assert current() is active and active.enabled
        active.incr("seen")
        assert current().counters() == {"seen": 1}

    def test_enable_accepts_an_explicit_instance(self):
        mine = Telemetry()
        assert enable(mine) is mine
        assert current() is mine

    def test_disable_overrides_the_environment(self, monkeypatch):
        monkeypatch.setenv(REPRO_TRACE_ENV, "1")
        disable()
        # The env says on, the explicit disable wins.
        assert current() is NULL_TELEMETRY


class TestInstrumentedPaths:
    def test_dataset_chain_and_mutation_spans_recorded(self):
        from repro.api import Dataset

        telemetry = Telemetry()
        dataset = Dataset.from_ntriples_text(
            '<http://x/a> <http://x/p> "1" .\n'
            '<http://x/a> <http://x/q> "1" .\n'
            '<http://x/b> <http://x/p> "1" .\n',
            name="spine",
            telemetry=telemetry,
        )
        dataset.table
        spans = telemetry.snapshot()["spans"]
        for name in ("dataset.graph_build", "dataset.matrix_build", "dataset.table_build"):
            assert spans[name]["count"] == 1, name
        dataset.mutate(add=[("http://x/c", "http://x/p", '"1"')])
        spans = telemetry.snapshot()["spans"]
        assert spans["dataset.mutate"]["count"] == 1
        assert spans["dataset.matrix_patch"]["count"] == 1
        assert spans["dataset.table_patch"]["count"] == 1

    def test_disabled_spine_leaves_dataset_behaviour_untouched(self):
        from repro.api import Dataset

        dataset = Dataset.from_ntriples_text(
            '<http://x/a> <http://x/p> "1" .\n', name="quiet"
        )
        assert dataset.table.n_subjects == 1
        assert current() is NULL_TELEMETRY

    def test_solver_calls_record_ilp_spans_when_enabled(self):
        from repro.api import Dataset
        from repro.matrix.signatures import SignatureTable

        telemetry = enable()
        table = SignatureTable.from_counts(
            ["http://x/p", "http://x/q"],
            {
                frozenset(["http://x/p"]): 2,
                frozenset(["http://x/p", "http://x/q"]): 1,
                frozenset(["http://x/q"]): 2,
            },
            name="probe",
        )
        session = Dataset.from_table(table).session()
        result = session.refine("Cov", k=2, step=0.25)
        assert result.n_solver_probes > 0
        spans = telemetry.snapshot()["spans"]
        assert spans["ilp.solve"]["count"] >= result.n_solver_probes
