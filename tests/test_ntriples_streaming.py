"""Chunk-boundary properties of the streaming N-Triples reader.

``iter_ntriples_buffered`` reads fixed-size byte buffers and must parse
exactly what the in-memory ``iter_ntriples`` parses — for every buffer
size down to one byte, whatever the newline convention (``\\n``,
``\\r\\n``, lone ``\\r``), wherever the buffer boundary lands: inside a
multi-byte UTF-8 character, between the ``\\r`` and ``\\n`` of a CRLF
pair, in the middle of a BOM, right before a missing trailing newline.
Property-based tests generate documents and buffer sizes; the directed
tests pin the boundary cases by hand.
"""

from __future__ import annotations

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParseError
from repro.rdf.ntriples import (
    iter_ntriples,
    iter_ntriples_buffered,
    iter_ntriples_chunks,
)

_LINES = st.lists(
    st.sampled_from(
        [
            "<http://ex/s> <http://ex/p> <http://ex/o> .",
            "<http://ex/s> <http://ex/p> \"lit with \\\"quote\\\" and \\n\" .",
            "<http://ex/sé> <http://ex/p> \"héllo wörld ✓\" .",
            "  <http://ex/s2>\t<http://ex/p2> <http://ex/o2> .  # trailing",
            "# a comment line",
            "",
            "   ",
            '<http://ex/s> <http://ex/p> "typed"^^<http://ex/int> .',
            '<http://ex/s> <http://ex/p> "tagged"@en .',
        ]
    ),
    max_size=12,
)


def _reference(text: str):
    return list(iter_ntriples(text))


def _buffered(data: bytes, buffer_bytes: int):
    return list(iter_ntriples_buffered(io.BytesIO(data), buffer_bytes=buffer_bytes))


@settings(max_examples=120, deadline=None)
@given(
    lines=_LINES,
    newline=st.sampled_from(["\n", "\r\n", "\r"]),
    bom=st.booleans(),
    trailing=st.booleans(),
    buffer_bytes=st.integers(min_value=1, max_value=24),
)
def test_buffered_equals_reference(lines, newline, bom, trailing, buffer_bytes):
    """Any document, any newline convention, any buffer size: same triples."""
    text = newline.join(lines) + (newline if trailing and lines else "")
    data = ("\ufeff" if bom else "") + text
    assert _buffered(data.encode("utf-8"), buffer_bytes) == _reference(text)


@settings(max_examples=60, deadline=None)
@given(
    lines=_LINES,
    newlines=st.lists(st.sampled_from(["\n", "\r\n", "\r"]), min_size=12, max_size=12),
    buffer_bytes=st.integers(min_value=1, max_value=8),
)
def test_mixed_newlines_within_one_document(lines, newlines, buffer_bytes):
    """Line terminators may vary line by line without confusing the reader."""
    text = "".join(line + newlines[i] for i, line in enumerate(lines))
    assert _buffered(text.encode("utf-8"), buffer_bytes) == _reference(text)


@settings(max_examples=60, deadline=None)
@given(
    lines=_LINES,
    buffer_bytes=st.integers(min_value=1, max_value=16),
    chunk_triples=st.integers(min_value=1, max_value=5),
)
def test_chunks_concatenate_to_full_parse(lines, buffer_bytes, chunk_triples):
    """iter_ntriples_chunks partitions the triple stream without loss."""
    text = "\n".join(lines) + "\n" if lines else ""
    chunks = list(
        iter_ntriples_chunks(
            io.BytesIO(text.encode("utf-8")),
            chunk_triples,
            buffer_bytes=buffer_bytes,
        )
    )
    flat = [triple for chunk in chunks for triple in chunk]
    assert flat == _reference(text)
    assert all(len(chunk) <= chunk_triples for chunk in chunks)
    assert all(len(chunk) == chunk_triples for chunk in chunks[:-1])


# --------------------------------------------------------------------- #
# Directed boundary cases
# --------------------------------------------------------------------- #
TRIPLE = "<http://ex/s> <http://ex/p> <http://ex/o> ."


def test_crlf_split_across_buffer_boundary():
    """A buffer ending on the CR of a CRLF pair must not double-count lines."""
    data = (TRIPLE + "\r\n" + TRIPLE + "\r\n").encode("utf-8")
    cr_index = data.index(b"\r")
    triples = _buffered(data, cr_index + 1)  # first buffer ends exactly on \r
    assert len(triples) == 2
    for size in range(1, len(data) + 1):
        assert _buffered(data, size) == triples


def test_lone_cr_terminates_lines():
    data = (TRIPLE + "\r" + TRIPLE).encode("utf-8")
    for size in (1, 2, 3, len(data), 10_000):
        assert len(_buffered(data, size)) == 2


def test_lone_cr_in_string_input_matches_file_input(tmp_path):
    """String sources get universal newlines, like file sources always did."""
    text = TRIPLE + "\r" + TRIPLE + "\r\n" + TRIPLE
    path = tmp_path / "data.nt"
    path.write_bytes(text.encode("utf-8"))
    from_text = list(iter_ntriples(text))
    from_file = list(iter_ntriples_buffered(path))
    assert from_text == from_file
    assert len(from_text) == 3


def test_missing_trailing_newline():
    data = TRIPLE.encode("utf-8")
    for size in (1, 7, len(data), 10_000):
        assert len(_buffered(data, size)) == 1


def test_bom_stripped_even_when_split_across_buffers():
    """The 3-byte UTF-8 BOM survives 1-byte buffers (carried as a partial line)."""
    data = "\ufeff".encode("utf-8") + (TRIPLE + "\n").encode("utf-8")
    for size in (1, 2, 3, 4, 10_000):
        assert len(_buffered(data, size)) == 1


def test_bom_only_stripped_on_first_line():
    data = (TRIPLE + "\n\ufeff" + TRIPLE + "\n").encode("utf-8")
    with pytest.raises(ParseError):
        _buffered(data, 10_000)


def test_multibyte_character_split_across_buffers():
    """Buffer boundaries inside a multi-byte character never corrupt it."""
    text = '<http://ex/s> <http://ex/p> "日本語 ✓ émoji 🎉" .\n'
    data = text.encode("utf-8")
    expected = _reference(text)
    assert expected[0].object == "日本語 ✓ émoji 🎉"
    for size in range(1, 8):
        assert _buffered(data, size) == expected


def test_comment_and_blank_lines_at_chunk_edges():
    data = ("#c\n\n" + TRIPLE + "\n#c2\r\n\r\n" + TRIPLE + "\n").encode("utf-8")
    for size in range(1, 6):
        assert len(_buffered(data, size)) == 2


def test_error_line_numbers_match_reference():
    """Both paths report the same line number for the same bad line."""
    text = TRIPLE + "\n" + TRIPLE + "\nnot a triple\n" + TRIPLE + "\n"
    with pytest.raises(ParseError) as reference:
        _reference(text)
    for size in (1, 5, 10_000):
        with pytest.raises(ParseError) as buffered:
            _buffered(text.encode("utf-8"), size)
        assert buffered.value.line == reference.value.line == 3


def test_undecodable_bytes_raise_parse_error():
    with pytest.raises(ParseError):
        _buffered(b"<http://ex/s> \xff\xfe <http://ex/o> .\n", 10_000)


def test_invalid_buffer_and_chunk_sizes_rejected():
    with pytest.raises(ParseError):
        list(iter_ntriples_buffered(io.BytesIO(b""), buffer_bytes=0))
    with pytest.raises(ParseError):
        list(iter_ntriples_chunks(io.BytesIO(b""), 0))


def test_path_and_stream_sources_agree(tmp_path):
    path = tmp_path / "data.nt"
    path.write_bytes((TRIPLE + "\r\n").encode("utf-8"))
    assert list(iter_ntriples_buffered(path)) == list(
        iter_ntriples_buffered(io.BytesIO(path.read_bytes()))
    )
    assert list(iter_ntriples_buffered(str(path))) == list(iter_ntriples_buffered(path))
