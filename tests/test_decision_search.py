"""Tests for the decision procedure and the two search strategies."""

from __future__ import annotations

import pytest

from repro.core.decision import decide_sort_refinement, exists_sort_refinement
from repro.core.encoder import SortRefinementEncoder
from repro.core.search import highest_theta_refinement, lowest_k_refinement
from repro.exceptions import RefinementError
from repro.functions import coverage_function, similarity_function
from repro.ilp.scipy_backend import ScipyMilpSolver
from repro.matrix.signatures import SignatureTable
from repro.rdf.namespaces import EX
from repro.rules import coverage, similarity


class TestDecision:
    def test_trivial_threshold_is_always_feasible(self, toy_persons_table):
        base = coverage_function()(toy_persons_table)
        decision = decide_sort_refinement(toy_persons_table, coverage(), theta=base * 0.99, k=1)
        assert decision.feasible
        assert decision.refinement is not None
        assert decision.refinement.k == 1

    def test_impossible_threshold_is_infeasible(self, toy_persons_table):
        # theta = 1 with k = 1 requires the whole dataset to be perfectly covered.
        decision = decide_sort_refinement(toy_persons_table, coverage(), theta=1.0, k=1)
        assert not decision.feasible
        assert decision.refinement is None
        assert not bool(decision)

    def test_enough_sorts_make_theta_one_feasible(self, toy_persons_table):
        # One sort per signature: every sort is a single signature set, Cov = 1.
        k = toy_persons_table.n_signatures
        assert exists_sort_refinement(toy_persons_table, coverage(), theta=1.0, k=k)

    def test_feasibility_is_monotone_in_k(self, toy_persons_table):
        theta = 0.9
        answers = [
            exists_sort_refinement(toy_persons_table, coverage(), theta=theta, k=k)
            for k in range(1, toy_persons_table.n_signatures + 1)
        ]
        # once feasible, it stays feasible for larger k
        assert answers == sorted(answers)

    def test_refinement_satisfies_requested_threshold(self, toy_persons_table):
        decision = decide_sort_refinement(toy_persons_table, coverage(), theta=0.75, k=3)
        assert decision.feasible
        assert decision.refinement.min_structuredness(coverage_function()) >= 0.75 - 1e-9

    def test_timings_are_recorded(self, toy_persons_table):
        decision = decide_sort_refinement(toy_persons_table, coverage(), theta=0.7, k=2)
        assert decision.solve_time >= 0
        assert decision.total_time >= decision.solve_time

    def test_custom_encoder_and_solver_are_used(self, toy_persons_table):
        encoder = SortRefinementEncoder(coverage(), symmetry_breaking=False)
        solver = ScipyMilpSolver(time_limit=30)
        decision = decide_sort_refinement(
            toy_persons_table, coverage(), theta=0.7, k=2, solver=solver, encoder=encoder
        )
        assert decision.feasible
        assert decision.solution.backend == "scipy-highs"


class TestHighestThetaSearch:
    def test_search_improves_over_baseline(self, toy_persons_table):
        cov = coverage_function()
        baseline = cov(toy_persons_table)
        result = highest_theta_refinement(toy_persons_table, coverage(), k=2)
        assert result.theta >= baseline
        assert result.refinement.min_structuredness(cov) >= result.theta - 1e-9
        assert result.refinement.k <= 2

    def test_search_trace_is_recorded(self, toy_persons_table):
        result = highest_theta_refinement(toy_persons_table, coverage(), k=2, step=0.05)
        assert result.n_probes == len(result.steps)
        assert result.steps[-1].feasible in (True, False)
        # all but (possibly) the last probe are feasible
        assert all(step.feasible for step in result.steps[:-1])

    def test_bigger_step_means_fewer_probes(self, toy_persons_table):
        fine = highest_theta_refinement(toy_persons_table, coverage(), k=2, step=0.01)
        coarse = highest_theta_refinement(toy_persons_table, coverage(), k=2, step=0.05)
        assert coarse.n_probes <= fine.n_probes
        assert coarse.theta <= fine.theta + 1e-9

    def test_explicit_initial_theta(self, toy_persons_table):
        result = highest_theta_refinement(
            toy_persons_table, coverage(), k=2, initial_theta=0.7, step=0.05
        )
        assert result.theta >= 0.7

    def test_infeasible_initial_theta_raises(self, toy_persons_table):
        with pytest.raises(RefinementError):
            highest_theta_refinement(toy_persons_table, coverage(), k=1, initial_theta=0.99)

    def test_invalid_step_raises(self, toy_persons_table):
        with pytest.raises(RefinementError):
            highest_theta_refinement(toy_persons_table, coverage(), k=2, step=0)

    def test_callback_sees_every_probe(self, toy_persons_table):
        seen = []
        result = highest_theta_refinement(
            toy_persons_table, coverage(), k=2, step=0.05, callback=seen.append
        )
        assert len(seen) == result.n_probes

    def test_k_one_returns_the_trivial_refinement(self, toy_persons_table):
        result = highest_theta_refinement(toy_persons_table, coverage(), k=1, step=0.05)
        assert result.refinement.k == 1
        assert result.theta <= coverage_function()(toy_persons_table) + 1e-9


class TestLowestKSearch:
    def test_upward_search_finds_minimum_k(self, toy_persons_table):
        result = lowest_k_refinement(toy_persons_table, coverage(), theta=0.9, direction="up")
        assert result.k >= 2
        # k - 1 sorts must be infeasible (that is what "lowest" means)
        assert not exists_sort_refinement(toy_persons_table, coverage(), theta=0.9, k=result.k - 1)

    def test_downward_search_agrees_with_upward(self, toy_persons_table):
        up = lowest_k_refinement(toy_persons_table, coverage(), theta=0.9, direction="up")
        down = lowest_k_refinement(toy_persons_table, coverage(), theta=0.9, direction="down")
        assert up.k == down.k

    def test_threshold_is_met_by_result(self, toy_persons_table):
        result = lowest_k_refinement(toy_persons_table, coverage(), theta=0.85)
        assert result.refinement.min_structuredness(coverage_function()) >= 0.85 - 1e-9

    def test_similarity_rule_search(self, toy_persons_table):
        result = lowest_k_refinement(toy_persons_table, similarity(), theta=0.9)
        assert result.refinement.min_structuredness(similarity_function()) >= 0.9 - 1e-9

    def test_impossible_range_raises(self, toy_persons_table):
        with pytest.raises(RefinementError):
            lowest_k_refinement(toy_persons_table, coverage(), theta=0.99, k_min=1, k_max=1)

    def test_invalid_direction_raises(self, toy_persons_table):
        with pytest.raises(RefinementError):
            lowest_k_refinement(toy_persons_table, coverage(), theta=0.9, direction="sideways")

    def test_invalid_k_range_raises(self, toy_persons_table):
        with pytest.raises(RefinementError):
            lowest_k_refinement(toy_persons_table, coverage(), theta=0.9, k_min=5, k_max=2)
